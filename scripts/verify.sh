#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, release build, full tests.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
