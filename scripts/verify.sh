#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, release build, full tests.
# Run from the repository root: scripts/verify.sh
# Optional: --coverage (or EDGELLM_COVERAGE=1) appends a line-coverage
# run; it fails loudly if no coverage tool is installed.
set -euo pipefail
cd "$(dirname "$0")/.."

WITH_COVERAGE="${EDGELLM_COVERAGE:-0}"
COVERAGE_MODE=check
for arg in "$@"; do
    case "$arg" in
        --coverage) WITH_COVERAGE=1 ;;
        --update-baseline)
            WITH_COVERAGE=1
            COVERAGE_MODE=update
            ;;
        *)
            echo "error: unknown argument '$arg' (supported: --coverage, --update-baseline)" >&2
            exit 2
            ;;
    esac
done

# A bench gate that "passes" because its output file vanished or turned
# to garbage is worse than one that fails: every gate JSON must exist,
# parse, and carry its marker key, or verification stops here. The
# checker is shared with the lab artifact gates (scripts/check_bench.py)
# and self-tests before first use so a broken checker cannot wave
# broken artifacts through.
python3 scripts/check_bench.py selftest
check_bench_json() {
    python3 scripts/check_bench.py validate --key bench "$1"
}

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# The kernel backend guarantees bit-identical results for every thread
# count; re-run the suite with two workers to hold it to that, and run
# the serving differential suite explicitly — it is the proof that
# continuous batching never changes a single token. The fleet suite
# extends that proof one level up: sharding across workers, rerouting,
# and crash-replay never change a token either.
EDGELLM_THREADS=2 cargo test -q
EDGELLM_THREADS=2 cargo test -q --test serving_equivalence
EDGELLM_THREADS=2 cargo test -q -p edge-llm-fleet --test fleet_equivalence

# Multi-tenant serving promises every tenant the exact tokens a solo run
# with its adapter merged would produce — across mixed batches, packed
# bases, cache evictions, and adapter re-loads. Run the differential
# oracle explicitly with two workers.
EDGELLM_THREADS=2 cargo test -q -p edge-llm --test tenant_equivalence

# Self-speculative decoding promises bit-identity with greedy decode at
# every thread count: run its oracle and property suites explicitly with
# two workers (they also run inside the full suites above).
EDGELLM_THREADS=2 cargo test -q -p edge-llm-model --test decode_equivalence
EDGELLM_THREADS=2 cargo test -q -p edge-llm-model --test spec_properties

# The packed integer GEMM promises bit-identical results scalar-vs-SIMD
# and serial-vs-parallel at every thread count; run its oracle and
# word-boundary property suites explicitly with two workers.
EDGELLM_THREADS=2 cargo test -q -p edge-llm-quant --test parallel_oracle
EDGELLM_THREADS=2 cargo test -q -p edge-llm-quant --test packed_props

# The compressed-weight cache must never serve stale bits: run the
# staleness suite explicitly — it mutates through every invalidation
# path (optimizer, masks, schemes, LoRA merge, checkpoint restore) and
# asserts bit-equality with a fresh recompute after each.
cargo test -q -p edge-llm-model --test weight_cache

# Record the cache's measured wins (adaptation s/iter, decode tokens/s,
# resident weight bytes) as machine-readable JSON; the binary exits
# nonzero if either speedup regresses below 1.5x.
cargo run --release -q --bin bench_cache -- BENCH_4.json
check_bench_json BENCH_4.json

# Telemetry must be free when off: the binary exits nonzero if the
# disabled instrumentation points cost 1% or more of an adaptation step.
cargo run --release -q --bin bench_telemetry -- BENCH_5.json
check_bench_json BENCH_5.json

# Fleet scaling: the sharded serving fleet must beat a single worker by
# >=1.3x tokens/s on a multi-core box (the binary exits nonzero below
# the bar; on one core it records "gated": false instead — threads
# cannot beat one core and a fake bar only teaches people to ignore red).
cargo run --release -q --bin bench_fleet -- BENCH_6.json
check_bench_json BENCH_6.json

# Self-speculative decoding must beat sequential greedy decode on
# wall-clock tokens/s at the default (depth 1, k 4) point — the binary
# exits nonzero otherwise, and records acceptance-rate counters.
cargo run --release -q --bin bench_spec -- BENCH_7.json
check_bench_json BENCH_7.json

# Multi-tenant adapter serving must share the packed base, not fork it:
# 8 tenants from one base must stay within 1.2x of the single-tenant
# resident weight bytes (the binary exits nonzero above the bar).
cargo run --release -q --bin bench_tenants -- BENCH_8.json
check_bench_json BENCH_8.json

# The packed integer GEMM must keep paying for itself on the decode hot
# path: the integer datapath must beat the f32 row-dequantizing path by
# >=1.2x at W4, and W2 decode (the i16 lane kernel) must be at least as
# fast as W4 — the binary exits nonzero below either bar.
cargo run --release -q --bin bench_igemm -- BENCH_9.json
check_bench_json BENCH_9.json

# Declarative experiment gate: run the quick-tier smoke spec through the
# lab runner with two workers, then hold the run to the committed
# generated baseline (experiments/baselines/smoke.json). The run itself
# fails on any differential-oracle miss (repeat identity, A/B variant
# equality); the check additionally fails if any deterministic metric
# drifted from the baseline (exact digest + per-row count/p50) or a
# spec-declared gate regressed. Refresh after an intentional change with:
#   cargo run --release -q --bin edgellm -- lab check \
#     --run .lab/runs/smoke --baseline experiments/baselines/smoke.json --update
EDGELLM_THREADS=2 cargo run --release -q --bin edgellm -- \
    lab run --spec experiments/smoke.jsonl --run-id smoke
python3 scripts/check_bench.py validate --key schema \
    .lab/runs/smoke/run.json \
    .lab/runs/smoke/trials/*/trial_input.json \
    .lab/runs/smoke/trials/*/trial_output.json \
    .lab/runs/smoke/trials/*/timing.json
python3 scripts/check_bench.py validate --key schema --jsonl \
    .lab/runs/smoke/analysis/*.jsonl
cargo run --release -q --bin edgellm -- \
    lab check --run .lab/runs/smoke --baseline experiments/baselines/smoke.json

# Budget check: the quick report tier exists so a laptop can regenerate
# the headline tables in well under a coffee break. Hold it to a
# generous multiple of its measured runtime so a quadratic regression
# in the pipeline or serving engine fails loudly here.
QUICK_BUDGET_S=600
start=$(date +%s)
cargo run --release -q --bin report -- --quick >/dev/null
elapsed=$(( $(date +%s) - start ))
echo "quick report tier: ${elapsed}s (budget ${QUICK_BUDGET_S}s)"
if [ "$elapsed" -gt "$QUICK_BUDGET_S" ]; then
    echo "error: quick report tier exceeded its ${QUICK_BUDGET_S}s budget" >&2
    exit 1
fi

# Opt-in coverage (scripts/verify.sh --coverage, or EDGELLM_COVERAGE=1).
# The tier-1 gate stays coverage-free so the default flow never depends
# on extra tooling; when requested, the measured numbers are gated
# against the per-crate floors in scripts/coverage_baseline.json
# (scripts/check_coverage.py), so a coverage regression fails loudly
# instead of scrolling by. Backend order: cargo-llvm-cov, then
# cargo-tarpaulin (both line coverage), then the in-repo profraw parser
# (scripts/profraw_coverage.py, function coverage) which needs nothing
# beyond rustc + python3 — so --coverage always has a working backend.
# The baseline records which metric seeded it; the checker refuses to
# compare floors across metrics. Refresh the floors with
# --update-baseline and commit the diff.
if [ "$WITH_COVERAGE" = "1" ]; then
    if cargo llvm-cov --version >/dev/null 2>&1; then
        cargo llvm-cov --workspace --json --output-path COVERAGE.json >/dev/null
    elif command -v cargo-tarpaulin >/dev/null 2>&1; then
        cargo tarpaulin --workspace --out Json --output-dir .
        mv tarpaulin-report.json COVERAGE.json
    else
        echo "coverage: no cargo-llvm-cov/tarpaulin; using the profraw fallback" >&2
        rm -rf target/coverage/profraw
        mkdir -p target/coverage/profraw
        RUSTFLAGS="-C instrument-coverage" \
            LLVM_PROFILE_FILE="$PWD/target/coverage/profraw/edgellm-%p-%m.profraw" \
            CARGO_TARGET_DIR=target/coverage cargo test -q --workspace
        python3 scripts/profraw_coverage.py target/coverage/profraw \
            --out COVERAGE.json
    fi
    python3 scripts/check_coverage.py "$COVERAGE_MODE" \
        --report COVERAGE.json --baseline scripts/coverage_baseline.json
fi
