#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, release build, full tests.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# The kernel backend guarantees bit-identical results for every thread
# count; re-run the suite with two workers to hold it to that.
EDGELLM_THREADS=2 cargo test -q
