#!/usr/bin/env bash
# Tier-1 verification gate: formatting, lints, release build, full tests.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# The kernel backend guarantees bit-identical results for every thread
# count; re-run the suite with two workers to hold it to that, and run
# the serving differential suite explicitly — it is the proof that
# continuous batching never changes a single token.
EDGELLM_THREADS=2 cargo test -q
EDGELLM_THREADS=2 cargo test -q --test serving_equivalence

# The compressed-weight cache must never serve stale bits: run the
# staleness suite explicitly — it mutates through every invalidation
# path (optimizer, masks, schemes, LoRA merge, checkpoint restore) and
# asserts bit-equality with a fresh recompute after each.
cargo test -q -p edge-llm-model --test weight_cache

# Record the cache's measured wins (adaptation s/iter, decode tokens/s,
# resident weight bytes) as machine-readable JSON; the binary exits
# nonzero if either speedup regresses below 1.5x.
cargo run --release -q --bin bench_cache -- BENCH_4.json

# Budget check: the quick report tier exists so a laptop can regenerate
# the headline tables in well under a coffee break. Hold it to a
# generous multiple of its measured runtime so a quadratic regression
# in the pipeline or serving engine fails loudly here.
QUICK_BUDGET_S=600
start=$(date +%s)
cargo run --release -q --bin report -- --quick >/dev/null
elapsed=$(( $(date +%s) - start ))
echo "quick report tier: ${elapsed}s (budget ${QUICK_BUDGET_S}s)"
if [ "$elapsed" -gt "$QUICK_BUDGET_S" ]; then
    echo "error: quick report tier exceeded its ${QUICK_BUDGET_S}s budget" >&2
    exit 1
fi
