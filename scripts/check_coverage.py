#!/usr/bin/env python3
"""Per-crate coverage floor gate for scripts/verify.sh --coverage.

Modes:
  check   compare a coverage report against scripts/coverage_baseline.json
          and exit nonzero if any crate regressed below its floor (minus
          the baseline's margin), if a crate is missing from the report,
          or if the baseline has never been seeded.
  update  rewrite the baseline floors from the measured report.

Supported report formats (auto-detected):
  * cargo llvm-cov JSON export   (`cargo llvm-cov --json ...`)
  * cargo tarpaulin JSON report  (`cargo tarpaulin --out Json ...`)
  * scripts/profraw_coverage.py  (per-crate *function* coverage parsed
                                  straight from .profraw files; needs no
                                  tool beyond rustc + python3)

Line coverage and function coverage are different rulers, so the
baseline records which metric seeded its floors ("metric") and check
mode refuses to compare a report measured with the other one — re-seed
with --update-baseline instead of silently comparing percentages that
mean different things.

The update flow (documented in README.md): run

    scripts/verify.sh --coverage --update-baseline

review the diff of scripts/coverage_baseline.json, and commit it. The
check is offline-first: the baseline lives in-repo so a regression shows
up as a failing gate plus a reviewable diff, never as a silent drop.
"""

import argparse
import json
import math
import re
import sys

CRATE_RE = re.compile(r"(?:^|/)crates/([^/]+)/src/")


def crate_of(path):
    """Maps a source-file path to its crate name, or None for non-crate
    files (the workspace-root tests directory, benches, etc.)."""
    m = CRATE_RE.search(path.replace("\\", "/"))
    return m.group(1) if m else None


def parse_llvm_cov(report):
    """Yields (crate, covered, coverable) from a cargo llvm-cov JSON
    export."""
    per_crate = {}
    for datum in report.get("data", []):
        for f in datum.get("files", []):
            crate = crate_of(f.get("filename", ""))
            if crate is None:
                continue
            lines = f.get("summary", {}).get("lines", {})
            cov, tot = per_crate.get(crate, (0, 0))
            per_crate[crate] = (
                cov + int(lines.get("covered", 0)),
                tot + int(lines.get("count", 0)),
            )
    return per_crate


def parse_tarpaulin(report):
    """Yields (crate, covered, coverable) from a cargo tarpaulin JSON
    report."""
    per_crate = {}
    for f in report.get("files", []):
        path = f.get("path", [])
        path = "/".join(path) if isinstance(path, list) else str(path)
        crate = crate_of(path)
        if crate is None:
            continue
        traces = f.get("traces", [])
        if traces:
            coverable = len(traces)
            covered = sum(1 for t in traces if t.get("stats", {}).get("Line", 0) > 0)
        else:
            covered = int(f.get("covered", 0))
            coverable = int(f.get("coverable", 0))
        cov, tot = per_crate.get(crate, (0, 0))
        per_crate[crate] = (cov + covered, tot + coverable)
    return per_crate


def parse_functions(report):
    """Yields (crate, covered, coverable) from a profraw_coverage.py
    function-coverage report."""
    return {
        crate: (int(c.get("covered", 0)), int(c.get("count", 0)))
        for crate, c in report.get("crates", {}).items()
    }


def measure(report_path):
    """Returns (per-crate percentages, metric name)."""
    with open(report_path) as fh:
        report = json.load(fh)
    if "data" in report:
        per_crate, metric = parse_llvm_cov(report), "lines"
    elif "files" in report:
        per_crate, metric = parse_tarpaulin(report), "lines"
    elif "crates" in report:
        per_crate, metric = parse_functions(report), report.get("metric", "functions")
    else:
        sys.exit(
            f"error: {report_path} is not a cargo llvm-cov JSON export, a "
            "cargo tarpaulin JSON report, or a profraw_coverage.py report"
        )
    if not per_crate:
        sys.exit(f"error: {report_path} contains no files under crates/*/src/")
    return {
        crate: 100.0 * cov / tot
        for crate, (cov, tot) in sorted(per_crate.items())
        if tot > 0
    }, metric


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", choices=["check", "update"])
    ap.add_argument("--report", required=True, help="coverage report JSON")
    ap.add_argument(
        "--baseline",
        default="scripts/coverage_baseline.json",
        help="per-crate floor file (default: scripts/coverage_baseline.json)",
    )
    args = ap.parse_args()

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    margin = float(baseline.get("margin_pct", 0.0))
    floors = baseline.get("floors") or {}
    measured, metric = measure(args.report)

    if args.mode == "update":
        baseline["floors"] = {
            crate: math.floor(pct * 10) / 10 for crate, pct in measured.items()
        }
        baseline["metric"] = metric
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(
            f"check_coverage: wrote {len(measured)} crate {metric}-coverage "
            f"floors to {args.baseline}"
        )
        for crate, pct in measured.items():
            print(f"  {crate}: {pct:.1f}%")
        return

    if not floors:
        sys.exit(
            "error: the coverage baseline has never been seeded "
            f"({args.baseline} has no floors).\n"
            "       A coverage run with nothing to compare against is not a "
            "gate; seed it once with:\n"
            "         scripts/verify.sh --coverage --update-baseline\n"
            "       and commit the resulting baseline diff."
        )
    baseline_metric = baseline.get("metric", "lines")
    if baseline_metric != metric:
        sys.exit(
            f"error: the baseline floors measure {baseline_metric} coverage "
            f"but the report measures {metric} coverage.\n"
            "       Those are different rulers; comparing them would let a "
            "real regression hide.\n"
            "       Re-seed with the backend you are gating on:\n"
            "         scripts/verify.sh --coverage --update-baseline\n"
            "       and commit the resulting baseline diff."
        )

    failures = []
    for crate, floor in sorted(floors.items()):
        if crate not in measured:
            failures.append(
                f"{crate}: in the baseline but absent from the report "
                "(crate renamed/removed? run --update-baseline)"
            )
            continue
        got = measured[crate]
        if got < floor - margin:
            failures.append(
                f"{crate}: {metric} coverage {got:.1f}% fell below its floor "
                f"{floor:.1f}% (margin {margin:.1f}%)"
            )
    for crate, pct in measured.items():
        status = "" if crate in floors else "  [no floor yet — run --update-baseline]"
        print(f"  {crate}: {pct:.1f}% (floor {floors.get(crate, '—')}){status}")
    new_crates = sorted(set(measured) - set(floors))
    if new_crates:
        failures.append(
            "crates without a recorded floor: "
            + ", ".join(new_crates)
            + " (run --update-baseline and commit the diff)"
        )

    if failures:
        print("check_coverage: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_coverage: all {len(floors)} crate floors hold (margin {margin:.1f}%)")


if __name__ == "__main__":
    main()
