#!/usr/bin/env python3
"""Extract one experiment's table block from a report output file.

Usage: python3 scripts/extract_tables.py full_report.txt T1
Prints the ``== ... ==`` block (table only, no timing footer) for splicing
into EXPERIMENTS.md.
"""
import sys


def extract(path: str, tag: str) -> str:
    lines = open(path).read().splitlines()
    out = []
    grab = False
    for line in lines:
        if line.startswith(f"== {tag}"):
            grab = True
        if grab:
            if line.startswith("[") and "regenerated" in line:
                break
            out.append(line)
    return "\n".join(out).rstrip()


if __name__ == "__main__":
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    print(extract(sys.argv[1], sys.argv[2]))
