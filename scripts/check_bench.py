#!/usr/bin/env python3
"""Gate-artifact validator shared by every verify.sh JSON gate.

A bench or lab gate that "passes" because its output file vanished or
turned to garbage is worse than one that fails, so every gate artifact
must exist, be non-empty, parse as JSON, and carry the top-level key
that marks it as the artifact it claims to be (BENCH_*.json files carry
"bench"; lab artifacts carry "schema"). This one checker serves both
the legacy BENCH_*.json gates and the lab run/baseline artifacts, so
the validation logic cannot drift between them.

Modes:
  validate FILE...      validate each artifact (default --key bench)
    --key KEY           required top-level key (e.g. bench, schema)
    --jsonl             treat each file as JSON lines: every non-empty,
                        non-comment line must parse, and the first must
                        carry the key
  selftest              exercise the validator against synthetic good
                        and bad artifacts in a temp dir, exit nonzero on
                        any miss

Exit status: 0 = all artifacts valid, 1 = a validation failed,
2 = bad usage.
"""

import argparse
import json
import os
import sys
import tempfile


def fail(path, why):
    print(f"error: gate artifact {path}: {why}.", file=sys.stderr)
    print(
        "       Its producer exited without writing a sound artifact; re-run it"
        " and inspect its stderr instead of trusting a stale green.",
        file=sys.stderr,
    )
    return False


def validate_file(path, key, jsonl=False):
    """True iff `path` is a non-empty, parseable artifact carrying `key`
    at the top level (of every object for --jsonl, where comment lines
    starting with '#' are allowed and the key is required on the first
    object only)."""
    try:
        if os.path.getsize(path) == 0:
            return fail(path, "is empty")
    except OSError:
        return fail(path, "is missing")
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if jsonl:
        first = None
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                return fail(path, f"line {lineno} is not valid JSON ({e.msg})")
            if first is None:
                first = obj
        if first is None:
            return fail(path, "has no JSON lines")
        if not isinstance(first, dict) or key not in first:
            return fail(path, f"first object lacks the {key!r} key")
        return True
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"is not valid JSON ({e.msg}; truncated write?)")
    if not isinstance(obj, dict) or key not in obj:
        return fail(path, f"lacks the top-level {key!r} key")
    return True


def selftest():
    """Validates known-good and known-bad artifacts; returns the number
    of misclassifications."""
    cases = [
        # (contents, key, jsonl, expect_valid)
        ('{"bench": "x", "v": 1}', "bench", False, True),
        ('{"schema": "lab.run.v1"}', "schema", False, True),
        ("", "bench", False, False),  # empty
        ('{"bench": "x"', "bench", False, False),  # truncated
        ('{"v": 1}', "bench", False, False),  # missing key
        ("[1, 2]", "bench", False, False),  # not an object
        ('# c\n{"schema": "s"}\n{"a": 1}\n', "schema", True, True),
        ('{"schema": "s"}\nnot json\n', "schema", True, False),
        ('{"nope": "s"}\n{"a": 1}\n', "schema", True, False),
        ("# only comments\n", "schema", True, False),
    ]
    misses = 0
    with tempfile.TemporaryDirectory() as tmp:
        devnull = open(os.devnull, "w")
        real_stderr, sys.stderr = sys.stderr, devnull
        try:
            for i, (contents, key, jsonl, expect) in enumerate(cases):
                path = os.path.join(tmp, f"case{i}.json")
                with open(path, "w", encoding="utf-8") as f:
                    f.write(contents)
                got = validate_file(path, key, jsonl)
                if got != expect:
                    sys.stderr = real_stderr
                    print(
                        f"selftest: case {i} ({contents!r}, key={key!r}, "
                        f"jsonl={jsonl}): expected valid={expect}, got {got}",
                        file=sys.stderr,
                    )
                    sys.stderr = devnull
                    misses += 1
            missing = os.path.join(tmp, "never-written.json")
            if validate_file(missing, "bench"):
                sys.stderr = real_stderr
                print("selftest: missing file validated", file=sys.stderr)
                sys.stderr = devnull
                misses += 1
        finally:
            sys.stderr = real_stderr
            devnull.close()
    print(f"check_bench selftest: {11 - misses}/11 cases correct")
    return misses


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode", required=True)
    v = sub.add_parser("validate", help="validate gate artifacts")
    v.add_argument("files", nargs="+", help="artifact paths")
    v.add_argument("--key", default="bench", help="required top-level key")
    v.add_argument("--jsonl", action="store_true", help="JSON-lines artifact")
    sub.add_parser("selftest", help="exercise the validator")
    args = parser.parse_args(argv)

    if args.mode == "selftest":
        return 1 if selftest() else 0
    ok = all(validate_file(p, args.key, args.jsonl) for p in args.files)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
