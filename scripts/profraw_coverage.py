#!/usr/bin/env python3
"""Pure-Python per-crate *function* coverage from LLVM .profraw files.

Fallback coverage backend for scripts/verify.sh --coverage on machines
with neither cargo-llvm-cov nor cargo-tarpaulin installed (and no
llvm-profdata new enough for the toolchain's profraw version). It needs
nothing beyond rustc itself:

    RUSTFLAGS="-C instrument-coverage" \
    LLVM_PROFILE_FILE="$PWD/target/coverage/profraw/edgellm-%p-%m.profraw" \
    CARGO_TARGET_DIR=target/coverage cargo test --workspace
    python3 scripts/profraw_coverage.py target/coverage/profraw --out COVERAGE.json

It parses the raw profile format (version 10) directly: a function is
*covered* when its first counter — the function-entry region counter —
is nonzero in any profile. Counts are aggregated per workspace crate by
demangling each profiled symbol just far enough to read its crate name,
then mapping `package-name` -> `crates/<dir>` via the workspace's
Cargo.toml files. Third-party dependencies compiled into the test
binaries are ignored.

The emitted report is intentionally tiny:

    {"metric": "functions",
     "crates": {"model": {"covered": 812, "count": 900}, ...}}

scripts/check_coverage.py auto-detects this shape next to the
cargo-llvm-cov and tarpaulin formats. Function coverage and line
coverage are different rulers, so the baseline records which metric
seeded it and the checker refuses to compare floors across metrics.

Raw-profile layout (little-endian, version 10), validated against
rustc-emitted profiles:

    header       16 x u64: magic, version, BinaryIdsSize, NumData,
                 PaddingBytesBeforeCounters, NumCounters,
                 PaddingBytesAfterCounters, NumBitmapBytes,
                 PaddingBytesAfterBitmapBytes, NamesSize, CountersDelta,
                 BitmapDelta, NamesDelta, NumValueKinds, (reserved x2)
    binary ids   BinaryIdsSize bytes
    data         NumData x 64-byte records: NameRef u64 @0, FuncHash u64
                 @8, NumCounters u32 @48; records consume the counter
                 array sequentially in record order
    counters     NumCounters x u64, 8-aligned
    bitmap       NumBitmapBytes bytes, 8-aligned
    names        ULEB128 uncompressed-size, ULEB128 compressed-size,
                 zlib blob (raw bytes when compressed-size is 0);
                 decompressed names are '\\x01'-separated
    NameRef      first 8 bytes of md5(name), little-endian
"""

import argparse
import glob
import hashlib
import json
import os
import re
import struct
import sys
import zlib

MAGIC_64 = 0xFF6C70726F667281  # "\xfflprofr\x81" read as little-endian u64
SUPPORTED_VERSION = 10
HEADER_U64S = 16
DATA_RECORD_BYTES = 64


def align8(n):
    return (n + 7) & ~7


def read_uleb128(buf, pos):
    value = shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def name_ref(name):
    """LLVM's IndexedInstrProf hash of a function name: truncated MD5."""
    return int.from_bytes(hashlib.md5(name).digest()[:8], "little")


def parse_names_blob(blob):
    """Decodes a __llvm_prf_names payload into a list of symbol names."""
    out, pos = [], 0
    while pos < len(blob):
        uncompressed, pos = read_uleb128(blob, pos)
        compressed, pos = read_uleb128(blob, pos)
        if compressed:
            chunk = zlib.decompress(blob[pos : pos + compressed])
            pos += compressed
        else:
            chunk = blob[pos : pos + uncompressed]
            pos += uncompressed
        out.extend(n for n in chunk.split(b"\x01") if n)
    return out


def parse_profraw(path):
    """Returns {name_ref: entry_count_sum} and [names] for one profile."""
    with open(path, "rb") as fh:
        buf = fh.read()
    if len(buf) < HEADER_U64S * 8:
        raise ValueError(f"{path}: truncated header")
    hdr = struct.unpack_from(f"<{HEADER_U64S}Q", buf, 0)
    if hdr[0] != MAGIC_64:
        raise ValueError(f"{path}: bad magic {hdr[0]:#x} (not a 64-bit profraw)")
    if hdr[1] != SUPPORTED_VERSION:
        raise ValueError(
            f"{path}: profraw version {hdr[1]} (this parser handles "
            f"{SUPPORTED_VERSION}; teach it the new layout before trusting it)"
        )
    binary_ids_size, num_data = hdr[2], hdr[3]
    pad_before_counters, num_counters = hdr[4], hdr[5]
    pad_after_counters, num_bitmap_bytes = hdr[6], hdr[7]
    pad_after_bitmap, names_size = hdr[8], hdr[9]

    data_off = HEADER_U64S * 8 + align8(binary_ids_size)
    counters_off = data_off + num_data * DATA_RECORD_BYTES + pad_before_counters
    bitmap_off = counters_off + num_counters * 8 + pad_after_counters
    names_off = bitmap_off + num_bitmap_bytes + pad_after_bitmap
    if names_off + names_size > len(buf):
        raise ValueError(f"{path}: sections overrun the file (corrupt write?)")

    entry_counts, cursor = {}, 0
    for i in range(num_data):
        rec = data_off + i * DATA_RECORD_BYTES
        (ref,) = struct.unpack_from("<Q", buf, rec)
        (n_counters,) = struct.unpack_from("<I", buf, rec + 48)
        if n_counters:
            (entry,) = struct.unpack_from("<Q", buf, counters_off + cursor * 8)
            entry_counts[ref] = entry_counts.get(ref, 0) + entry
        cursor += n_counters
    if cursor != num_counters:
        raise ValueError(
            f"{path}: data records claim {cursor} counters, header says "
            f"{num_counters} — layout drift, refusing to guess"
        )
    names = parse_names_blob(buf[names_off : names_off + names_size])
    return entry_counts, names


# --- crate attribution ------------------------------------------------------

V0_CRATE_RE = re.compile(rb"_R[a-zA-Z0-9]*?C(?:s[0-9a-zA-Z]+_)?(\d+)")


def crate_of_symbol(sym):
    """Best-effort crate name from a mangled Rust symbol (bytes)."""
    if sym.startswith(b"_ZN"):  # legacy mangling: _ZN<len><seg>...E
        pos = 3
        m = re.match(rb"(\d+)", sym[pos:])
        if not m:
            return None
        seg_len = int(m.group(1))
        pos += len(m.group(1))
        return sym[pos : pos + seg_len].decode("utf-8", "replace")
    m = V0_CRATE_RE.match(sym)  # v0 mangling: crate root is C<ident>
    if m:
        start = m.end()
        return sym[start : start + int(m.group(1))].decode("utf-8", "replace")
    return None


def workspace_crates(repo_root):
    """Maps symbol-level crate names (underscored package names) to the
    crate directory names used by the coverage baseline."""
    mapping = {}
    for cargo_toml in glob.glob(os.path.join(repo_root, "crates", "*", "Cargo.toml")):
        crate_dir = os.path.basename(os.path.dirname(cargo_toml))
        with open(cargo_toml) as fh:
            m = re.search(r'^name\s*=\s*"([^"]+)"', fh.read(), re.MULTILINE)
        if m:
            mapping[m.group(1).replace("-", "_")] = crate_dir
    return mapping


def collect(profraw_dir, repo_root):
    paths = sorted(glob.glob(os.path.join(profraw_dir, "*.profraw")))
    if not paths:
        sys.exit(
            f"error: no .profraw files under {profraw_dir}.\n"
            "       Run the instrumented test suite first (see this script's "
            "docstring or scripts/verify.sh --coverage)."
        )
    merged_counts, all_names = {}, set()
    for path in paths:
        counts, names = parse_profraw(path)
        for ref, entry in counts.items():
            merged_counts[ref] = merged_counts.get(ref, 0) + entry
        all_names.update(names)

    crate_dirs = workspace_crates(repo_root)
    per_crate = {}
    unattributed = 0
    for name in all_names:
        crate = crate_of_symbol(name)
        crate_dir = crate_dirs.get(crate) if crate else None
        if crate_dir is None:
            unattributed += 1
            continue
        covered, count = per_crate.get(crate_dir, (0, 0))
        hit = merged_counts.get(name_ref(name), 0) > 0
        per_crate[crate_dir] = (covered + (1 if hit else 0), count + 1)
    return per_crate, len(paths), unattributed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("profraw_dir", help="directory holding *.profraw files")
    ap.add_argument("--out", required=True, help="report JSON to write")
    ap.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="workspace root (default: this script's parent's parent)",
    )
    args = ap.parse_args()

    per_crate, n_files, unattributed = collect(args.profraw_dir, args.repo_root)
    if not per_crate:
        sys.exit(
            "error: parsed the profiles but attributed zero functions to "
            "workspace crates — symbol mangling drift? Inspect a profile with "
            "this script's parse_profraw() before trusting any number."
        )
    report = {
        "metric": "functions",
        "crates": {
            crate: {"covered": covered, "count": count}
            for crate, (covered, count) in sorted(per_crate.items())
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"profraw_coverage: {n_files} profile(s), "
        f"{sum(c for _, (_, c) in per_crate.items())} workspace functions "
        f"({unattributed} foreign symbols ignored) -> {args.out}"
    )
    for crate, (covered, count) in sorted(per_crate.items()):
        print(f"  {crate}: {covered}/{count} functions ({100.0 * covered / count:.1f}%)")


if __name__ == "__main__":
    main()
