//! Robustness and failure-injection tests: the system must fail loudly and
//! cleanly at its boundaries — bad budgets, exhausted capacity, divergent
//! training, degenerate tasks — rather than panicking or silently
//! corrupting state.

use edge_llm::compress::apply_policy;
use edge_llm::oracle::ModelOracle;
use edge_llm::pipeline::{run_method, ExperimentConfig, Method, TaskKind};
use edge_llm_luc::{profile, search_policy, CompressionPolicy, LucError, SearchAlgorithm};
use edge_llm_model::{
    AdaptiveTuner, EdgeModel, InferenceSession, ModelConfig, Sgd, WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;

#[test]
fn infeasible_budget_propagates_cleanly_through_pipeline() {
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.budget = 0.01; // below the cheapest 2-bit/75% combo
    let err = run_method(Method::EdgeLlm, &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("budget"), "unexpected error: {msg}");
}

#[test]
fn divergent_training_stays_finite_or_fails_loudly() {
    // an absurd learning rate must not panic; losses may grow but the
    // training loop and evaluation keep returning values
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.lr = 50.0;
    let out = run_method(Method::Vanilla, &cfg).unwrap();
    // the run completes and the outcome struct is intact even if the
    // numbers are degenerate
    assert_eq!(out.method, "vanilla-ft");
    assert!(out.mean_iter_ms > 0.0);
}

#[test]
fn session_capacity_errors_are_recoverable() {
    let mut rng = TensorRng::seed_from(1);
    let model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let mut session = InferenceSession::new(&model);
    for _ in 0..model.config().seq_len {
        session.push_token(0).unwrap();
    }
    for _ in 0..3 {
        assert!(
            session.push_token(0).is_err(),
            "capacity errors must repeat, not panic"
        );
    }
    session.reset();
    assert!(session.push_token(0).is_ok());
}

#[test]
fn tuner_survives_single_token_vocabulary_tasks() {
    // degenerate mod-arith modulus=2 -> tiny vocabulary, still trains
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.task = TaskKind::ModArith { modulus: 2 };
    let out = run_method(Method::Vanilla, &cfg).unwrap();
    assert!(out.final_loss.is_finite());
}

#[test]
fn oracle_survives_compressed_probe_failures() {
    // profiling with a ratio choice of ~1.0 is invalid per-layer policy;
    // profile() must surface it as a non-panicking outcome
    let mut rng = TensorRng::seed_from(2);
    let model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let tokens: Vec<usize> = (0..8).collect();
    let mut oracle = ModelOracle::new(&model, &tokens, &tokens, 1);
    let prof = profile(&mut oracle, &[BitWidth::W4], &[1.0]).unwrap();
    // the invalid ratio produced an infinite-loss measurement, which the
    // profile clamps into a (large) delta rather than crashing
    assert_eq!(prof.prune_delta[0].len(), 1);
}

#[test]
fn search_rejects_corrupt_profiles() {
    let mut rng = TensorRng::seed_from(3);
    let model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let tokens: Vec<usize> = (0..8).collect();
    let mut oracle = ModelOracle::new(&model, &tokens, &tokens, 1);
    let mut prof = profile(&mut oracle, &[BitWidth::W4, BitWidth::W16], &[0.0, 0.5]).unwrap();
    prof.quant_delta[0].pop(); // corrupt
    assert!(matches!(
        search_policy(&prof, 0.5, SearchAlgorithm::DynamicProgramming),
        Err(LucError::ProfileMismatch { .. })
    ));
}

#[test]
fn double_compression_is_idempotent_in_shape() {
    // applying a policy twice must not stack masks destructively beyond
    // the first application's sparsity
    let mut rng = TensorRng::seed_from(4);
    let mut model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let policy = CompressionPolicy::uniform(2, BitWidth::W4, 0.5);
    apply_policy(&mut model, &policy).unwrap();
    let zeros_once = count_zeros(&model);
    apply_policy(&mut model, &policy).unwrap();
    let zeros_twice = count_zeros(&model);
    assert_eq!(
        zeros_once, zeros_twice,
        "re-applying the same policy must be stable"
    );
}

fn count_zeros(model: &EdgeModel) -> usize {
    let mut zeros = 0;
    for l in 0..model.n_layers() {
        let (qkv, proj) = model.block(l).attn().linears();
        let (fc1, fc2) = model.block(l).mlp().linears();
        for lin in [qkv, proj, fc1, fc2] {
            zeros += lin
                .weight()
                .as_slice()
                .iter()
                .filter(|&&v| v == 0.0)
                .count();
        }
    }
    zeros
}

#[test]
fn windowed_tuning_with_batch_larger_than_dataset_wraps() {
    let mut rng = TensorRng::seed_from(5);
    let task = edge_llm_data::ClozeQaTask::new(4, 2);
    use edge_llm_data::TaskGenerator;
    let cfg = ModelConfig::tiny().with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = task.dataset(2, cfg.seq_len, &mut rng);
    // batch of 6 over a dataset of 2 samples wraps without panicking
    let b = ds.batch_at(0, 6);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    let mut opt = Sgd::new(0.05);
    let rep = tuner
        .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
        .unwrap();
    assert!(rep.loss.is_finite());
}
