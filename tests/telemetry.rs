//! End-to-end contract of the telemetry layer.
//!
//! Three guarantees, each proven directly:
//!
//! 1. **Exact span trees** — under the deterministic fake clock, a 2-step
//!    adaptation run produces a fully predictable event stream: two
//!    `tune.step` roots, each with `tune.forward` / `tune.backward` /
//!    `tune.optimizer` children, at exactly the timestamps the tick clock
//!    dictates.
//! 2. **Phase accounting** — the per-phase breakdown in each step report
//!    sums to within 5% of the step's reported wall clock.
//! 3. **Observation never perturbs** — the same adaptation and serving
//!    runs produce byte-identical parameters, checkpoints, and outcomes
//!    with tracing on and off.
//!
//! Telemetry state is process-global, so every test here runs under a
//! shared lock and leaves recording disabled.

use edge_llm::resilience::{resilient_adapt, ResilienceConfig};
use edge_llm_data::{Dataset, ModArithTask, TaskGenerator};
use edge_llm_model::{
    save_model, AdaptiveTuner, EdgeModel, ModelConfig, Sgd, TrainingCheckpoint, WindowSchedule,
};
use edge_llm_serve::{BatchedInferenceEngine, ServeOutcome, ServeRequest};
use edge_llm_telemetry::{
    counter_totals, span_tree, write_jsonl, Event, FakeClock, MonotonicClock,
};
use edge_llm_tensor::{set_configured_threads, TensorRng};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests: telemetry recording and the thread knob are both
/// process-wide.
static SESSION: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup(seed: u64) -> (EdgeModel, Sgd, TensorRng, Dataset) {
    let task = ModArithTask::new(7);
    let mut rng = TensorRng::seed_from(seed);
    let cfg = ModelConfig::tiny().with_vocab(task.vocab_size());
    let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = Dataset::from_samples((0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect());
    (model, Sgd::new(0.05), rng, ds)
}

fn two_step_adaptation() -> Vec<Event> {
    let (mut model, mut opt, _rng, ds) = setup(11);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    for it in 0..2 {
        let b = ds.batch_at(it * 2, 2);
        tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap();
    }
    edge_llm_telemetry::disable()
}

#[test]
fn two_step_adaptation_produces_the_exact_span_tree() {
    let _guard = lock();
    // one worker: no pool counters, so the event stream is fully
    // determined by the instrumentation points
    set_configured_threads(1);
    edge_llm_telemetry::enable(Arc::new(FakeClock::with_tick(10)));
    let events = two_step_adaptation();
    set_configured_threads(0);

    let roots = span_tree(&events);
    assert_eq!(roots.len(), 2, "one root span per adaptation step");
    let expected = vec![
        (0, "tune.step"),
        (1, "tune.forward"),
        (1, "tune.backward"),
        (1, "tune.optimizer"),
    ];
    for (i, root) in roots.iter().enumerate() {
        assert_eq!(root.flatten(), expected, "step {i} span shape");
        // children tile the parent in order, strictly nested
        for c in &root.children {
            assert!(c.start_ns > root.start_ns && c.end_ns < root.end_ns);
            assert!(c.start_ns < c.end_ns);
        }
    }

    // the tick clock makes every timestamp exact: each step performs ten
    // clock reads (4 span starts/ends interleaved with 2 counters)
    assert_eq!((roots[0].start_ns, roots[0].end_ns), (0, 90));
    assert_eq!((roots[1].start_ns, roots[1].end_ns), (100, 190));

    // per-step counters are always emitted, even when zero, so the trace
    // shape does not depend on cache state
    let totals = counter_totals(&events);
    assert!(totals.contains_key("tune.requant_layers"));
    assert!(totals.contains_key("tune.cache_invalidations"));

    // and the whole stream serializes to one JSON object per line
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &events).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), events.len());
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
}

#[test]
fn phase_timings_sum_to_the_step_wall_clock() {
    let _guard = lock();
    let (mut model, mut opt, _rng, ds) = setup(13);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    let (mut phase_sum, mut wall_sum) = (0u64, 0u64);
    for it in 0..10 {
        let b = ds.batch_at(it * 2, 2);
        let report = tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap();
        let p = report.phases;
        assert!(p.total_ns > 0);
        let sum = p.forward_ns + p.backward_ns + p.optimizer_ns;
        assert!(sum <= p.total_ns, "phases cannot exceed the step clock");
        phase_sum += sum;
        wall_sum += p.total_ns;
    }
    let covered = phase_sum as f64 / wall_sum as f64;
    assert!(
        covered > 0.95,
        "phases must account for >=95% of step wall clock, got {:.1}%",
        covered * 100.0
    );
}

fn adapt_bytes() -> (Vec<u8>, Vec<u8>) {
    const ITERS: usize = 6;
    let (mut model, mut opt, mut rng, ds) = setup(17);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    let run = resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        ITERS,
        Vec::new(),
        &ResilienceConfig::default(),
    )
    .unwrap();
    assert_eq!(run.steps_executed, ITERS);
    let mut params = Vec::new();
    save_model(&model, &mut params).unwrap();
    let ckpt = TrainingCheckpoint::capture(&model, &opt, ITERS as u64, &rng, Vec::new());
    let mut ckpt_bytes = Vec::new();
    ckpt.write_to(&mut ckpt_bytes).unwrap();
    (params, ckpt_bytes)
}

#[test]
fn adaptation_is_byte_identical_with_tracing_on() {
    let _guard = lock();
    let (ref_params, ref_ckpt) = adapt_bytes();

    edge_llm_telemetry::enable(Arc::new(MonotonicClock::default()));
    let (traced_params, traced_ckpt) = adapt_bytes();
    let events = edge_llm_telemetry::disable();

    assert!(!events.is_empty(), "tracing was on, events must exist");
    assert_eq!(ref_params, traced_params, "params drifted under tracing");
    assert_eq!(ref_ckpt, traced_ckpt, "checkpoint drifted under tracing");

    // the fake clock must not change results either (timestamps are
    // never fed back into computation)
    edge_llm_telemetry::enable(Arc::new(FakeClock::with_tick(3)));
    let (fake_params, fake_ckpt) = adapt_bytes();
    edge_llm_telemetry::disable();
    assert_eq!(ref_params, fake_params);
    assert_eq!(ref_ckpt, fake_ckpt);
}

fn serve_outcomes(model: &EdgeModel) -> Vec<ServeOutcome> {
    let mut engine = BatchedInferenceEngine::new(model, 2).unwrap();
    for i in 0..4u64 {
        engine.submit(ServeRequest {
            id: format!("r{i}"),
            prompt: vec![1, 2, 3],
            max_new_tokens: 3,
            decoding: edge_llm_model::Decoding::TopK {
                k: 3,
                temperature: 0.9,
            },
            voting: edge_llm_model::VotingPolicy::final_only(model.n_layers()),
            seed: i,
            deadline_steps: None,
            tenant: None,
        });
    }
    engine.run_to_completion().unwrap()
}

#[test]
fn serving_is_byte_identical_with_tracing_on() {
    let _guard = lock();
    let mut rng = TensorRng::seed_from(19);
    let model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();

    let reference = serve_outcomes(&model);
    edge_llm_telemetry::enable(Arc::new(MonotonicClock::default()));
    let traced = serve_outcomes(&model);
    let events = edge_llm_telemetry::disable();

    assert!(!events.is_empty());
    assert_eq!(reference.len(), traced.len());
    for (a, b) in reference.iter().zip(&traced) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.tokens, b.tokens, "{}: tokens drifted under tracing", a.id);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.steps, b.steps);
        let bits = |p: &Option<Vec<f32>>| {
            p.as_ref()
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
        };
        assert_eq!(bits(&a.final_probs), bits(&b.final_probs));
    }
}
