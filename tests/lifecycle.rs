//! Lifecycle integration tests: checkpointing adapted models, generating
//! from them, activation quantization end-to-end, and text-corpus
//! adaptation — the deployment loop around the core pipeline.

use edge_llm::compress::apply_policy;
use edge_llm::eval::evaluate;
use edge_llm_data::{MarkovTextTask, TaskGenerator, TextLmTask};
use edge_llm_luc::CompressionPolicy;
use edge_llm_model::{
    generate, load_model, save_model, AdaptiveTuner, Decoding, EdgeModel, LrSchedule, ModelConfig,
    Sgd, VotingPolicy, WindowSchedule,
};
use edge_llm_quant::{BitWidth, QuantScheme};
use edge_llm_tensor::TensorRng;

fn adapt(
    model: &mut EdgeModel,
    task: &dyn TaskGenerator,
    iters: usize,
    lr: f32,
    rng: &mut TensorRng,
) -> f32 {
    let cfg = model.config().clone();
    let ds = edge_llm_data::Dataset::from_samples(
        (0..16).map(|_| task.sample(cfg.seq_len, rng)).collect(),
    );
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 2 });
    let mut opt = Sgd::new(lr);
    let mut last = f32::NAN;
    for it in 0..iters {
        let b = ds.batch_at(it * 2, 2);
        last = tuner
            .step(model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap()
            .loss;
    }
    last
}

#[test]
fn adapted_checkpoint_roundtrips_with_policy() {
    let mut rng = TensorRng::seed_from(31);
    let task = MarkovTextTask::new(24, 2, 5);
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let policy = CompressionPolicy::uniform(4, BitWidth::W8, 0.25);
    apply_policy(&mut model, &policy).unwrap();
    adapt(&mut model, &task, 60, 0.1, &mut rng);

    let mut bytes = Vec::new();
    save_model(&model, &mut bytes).unwrap();
    let mut restored = load_model(&mut bytes.as_slice()).unwrap();
    apply_policy(&mut restored, &policy).unwrap();

    let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| i % task.vocab_size()).collect();
    let a = model.logits(&tokens, 1).unwrap();
    let b = restored.logits(&tokens, 1).unwrap();
    assert!(a.approx_eq(&b, 1e-6));
}

#[test]
fn generation_respects_learned_markov_structure() {
    let mut rng = TensorRng::seed_from(32);
    let task = MarkovTextTask::new(12, 2, 9);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_d_model(32, 4)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    adapt(&mut model, &task, 200, 0.15, &mut rng);
    // greedy continuations should mostly follow chain edges
    let policy = VotingPolicy::final_only(model.n_layers());
    let mut gen_rng = TensorRng::seed_from(33);
    let sample = task.sample(cfg.seq_len, &mut gen_rng);
    let out = generate(
        &model,
        &policy,
        &sample.tokens[..4],
        20,
        Decoding::Greedy,
        &mut gen_rng,
    )
    .unwrap();
    assert_eq!(out.len(), 24);
    assert!(out.iter().all(|&t| t < task.vocab_size()));
}

#[test]
fn activation_quant_model_still_learns() {
    let mut rng = TensorRng::seed_from(34);
    let task = MarkovTextTask::new(16, 2, 3);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    // 8-bit activations on every projection
    for l in 0..model.n_layers() {
        let scheme = Some(QuantScheme::asymmetric(BitWidth::W8));
        let block = model.block_mut(l);
        block.attn_mut().qkv_mut().set_activation_quant(scheme);
        block.attn_mut().proj_mut().set_activation_quant(scheme);
        block.mlp_mut().fc1_mut().set_activation_quant(scheme);
        block.mlp_mut().fc2_mut().set_activation_quant(scheme);
    }
    let ds = edge_llm_data::Dataset::from_samples(
        (0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect(),
    );
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    let mut opt = Sgd::new(0.1);
    let b0 = ds.batch_at(0, 2);
    let first = tuner
        .step(&mut model, &mut opt, &b0.tokens, &b0.targets, 2)
        .unwrap()
        .loss;
    let mut last = first;
    for it in 1..60 {
        let b = ds.batch_at(it * 2, 2);
        last = tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, 2)
            .unwrap()
            .loss;
    }
    assert!(
        last < first,
        "8-bit activations must not block learning: {first} -> {last}"
    );
}

#[test]
fn text_corpus_adaptation_reduces_perplexity() {
    let corpus = "the quick brown fox jumps over the lazy dog. the lazy dog sleeps. \
                  the quick fox runs. the brown dog jumps over the quick fox.";
    let task = TextLmTask::new(corpus).unwrap();
    let mut rng = TensorRng::seed_from(35);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_d_model(32, 4)
        .with_seq_len(24)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let eval_set = task.dataset(8, cfg.seq_len, &mut rng);
    let policy = VotingPolicy::final_only(model.n_layers());
    let before = evaluate(&model, &policy, &eval_set, 4).unwrap();
    adapt(&mut model, &task, 150, 0.15, &mut rng);
    let after = evaluate(&model, &policy, &eval_set, 4).unwrap();
    assert!(
        after.perplexity < before.perplexity / 2.0,
        "perplexity should at least halve: {} -> {}",
        before.perplexity,
        after.perplexity
    );
}

#[test]
fn lr_schedule_drives_optimizer() {
    // cosine schedule through the tuner: loss still decreases and the
    // final lr is the floor
    let mut rng = TensorRng::seed_from(36);
    let task = MarkovTextTask::new(16, 2, 4);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = edge_llm_data::Dataset::from_samples(
        (0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect(),
    );
    let schedule = LrSchedule::CosineWithWarmup {
        lr: 0.15,
        min_lr: 0.01,
        warmup: 5,
        total: 80,
    };
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    let mut opt = Sgd::new(schedule.lr_at(0));
    let b0 = ds.batch_at(0, 2);
    let first = tuner
        .step(&mut model, &mut opt, &b0.tokens, &b0.targets, 2)
        .unwrap()
        .loss;
    let mut last = first;
    for it in 1..80 {
        opt.set_lr(schedule.lr_at(it));
        let b = ds.batch_at(it * 2, 2);
        last = tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, 2)
            .unwrap()
            .loss;
    }
    assert!(last < first);
    assert!((opt.lr() - 0.01).abs() < 0.01);
}

#[test]
fn policy_compact_string_survives_pipeline() {
    let policy = CompressionPolicy::uniform(3, BitWidth::W4, 0.5);
    let s = policy.to_compact_string();
    let parsed = CompressionPolicy::parse_compact(&s).unwrap();
    assert_eq!(parsed, policy);
    let mut rng = TensorRng::seed_from(37);
    let mut model = EdgeModel::new(ModelConfig::tiny().with_layers(3), &mut rng).unwrap();
    apply_policy(&mut model, &parsed).unwrap();
    let (qkv, _) = model.block(0).attn().linears();
    assert!(qkv.quant().is_some());
    assert!(qkv.mask().is_some());
}
