//! Integration tests for the fault-tolerant adaptation runtime:
//! kill-and-resume equivalence, per-fault-class recovery, and corrupt
//! checkpoint handling.

use edge_llm::baselines::uniform_policy_for_budget;
use edge_llm::compress::apply_policy;
use edge_llm::pipeline::{run_method_with, ExperimentConfig, Method};
use edge_llm::resilience::{
    policy_extra, resilient_adapt, restore_run, FaultKind, PlannedFault, RecoveryEvent,
    ResilienceConfig,
};
use edge_llm::EdgeLlmError;
use edge_llm_data::{Dataset, ModArithTask, TaskGenerator};
use edge_llm_luc::CompressionPolicy;
use edge_llm_model::{
    save_model, AdaptiveTuner, EdgeModel, ModelConfig, Sgd, TrainingCheckpoint, WindowSchedule,
};
use edge_llm_tensor::{set_configured_threads, TensorRng};

fn setup(seed: u64) -> (EdgeModel, Sgd, TensorRng, Dataset) {
    let task = ModArithTask::new(7);
    let mut rng = TensorRng::seed_from(seed);
    let cfg = ModelConfig::tiny().with_vocab(task.vocab_size());
    let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = Dataset::from_samples((0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect());
    (model, Sgd::new(0.05), rng, ds)
}

fn model_bytes(model: &EdgeModel) -> Vec<u8> {
    let mut buf = Vec::new();
    save_model(model, &mut buf).unwrap();
    buf
}

/// Runs `total` iterations straight through, then replays the same run
/// interrupted at `cut` — serialized to checkpoint bytes, reloaded in a
/// fresh "process", and resumed — and requires bit-identical parameters.
fn assert_kill_and_resume_identical(policy: &CompressionPolicy, schedule: WindowSchedule) {
    const TOTAL: usize = 10;
    const CUT: usize = 4;
    let res = ResilienceConfig::default();

    let (mut model, mut opt, mut rng, ds) = setup(11);
    apply_policy(&mut model, policy).unwrap();
    let mut tuner = AdaptiveTuner::new(schedule.clone());
    resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        TOTAL,
        policy_extra(policy),
        &res,
    )
    .unwrap();
    let straight = model_bytes(&model);

    let (mut model, mut opt, mut rng, ds) = setup(11);
    apply_policy(&mut model, policy).unwrap();
    let mut tuner = AdaptiveTuner::new(schedule.clone());
    resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        CUT,
        policy_extra(policy),
        &res,
    )
    .unwrap();
    let ckpt = TrainingCheckpoint::capture(&model, &opt, CUT as u64, &rng, policy_extra(policy));
    let mut bytes = Vec::new();
    ckpt.write_to(&mut bytes).unwrap();

    // everything below uses only the serialized bytes — a fresh process
    let loaded = TrainingCheckpoint::read_from(&mut bytes.as_slice()).unwrap();
    let (mut model2, mut opt2, mut rng2, policy2) = restore_run(&loaded).unwrap();
    assert_eq!(policy2.to_compact_string(), policy.to_compact_string());
    let mut tuner2 = AdaptiveTuner::new(schedule);
    tuner2.set_iteration(loaded.iteration as usize);
    resilient_adapt(
        &mut model2,
        &mut opt2,
        &mut tuner2,
        &mut rng2,
        &ds,
        2,
        TOTAL,
        policy_extra(&policy2),
        &res,
    )
    .unwrap();
    assert_eq!(
        straight,
        model_bytes(&model2),
        "resumed run drifted from straight run"
    );
}

#[test]
fn kill_and_resume_is_bit_identical_vanilla() {
    let policy = CompressionPolicy::identity(ModelConfig::tiny().n_layers);
    assert_kill_and_resume_identical(&policy, WindowSchedule::FullDepth);
}

#[test]
fn kill_and_resume_is_bit_identical_edge_llm() {
    // compressed model (masks + fake-quant hooks) with windowed backprop
    let policy = uniform_policy_for_budget(ModelConfig::tiny().n_layers, 0.5);
    assert_kill_and_resume_identical(&policy, WindowSchedule::RoundRobin { depth: 1 });
}

/// A run killed under one thread count and resumed under a *different*
/// one must still match the straight run bit-for-bit: the checkpoint
/// carries no threading state because none exists — the worker count is
/// pure wall-clock configuration.
#[test]
fn kill_and_resume_with_different_thread_count_is_bit_identical() {
    const TOTAL: usize = 10;
    const CUT: usize = 4;
    let res = ResilienceConfig::default();
    let policy = uniform_policy_for_budget(ModelConfig::tiny().n_layers, 0.5);
    let schedule = WindowSchedule::RoundRobin { depth: 1 };

    // straight run, serial
    set_configured_threads(1);
    let (mut model, mut opt, mut rng, ds) = setup(17);
    apply_policy(&mut model, &policy).unwrap();
    let mut tuner = AdaptiveTuner::new(schedule.clone());
    resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        TOTAL,
        policy_extra(&policy),
        &res,
    )
    .unwrap();
    let straight = model_bytes(&model);

    // the same run killed at CUT under 2 threads...
    set_configured_threads(2);
    let (mut model, mut opt, mut rng, ds) = setup(17);
    apply_policy(&mut model, &policy).unwrap();
    let mut tuner = AdaptiveTuner::new(schedule.clone());
    resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        CUT,
        policy_extra(&policy),
        &res,
    )
    .unwrap();
    let ckpt = TrainingCheckpoint::capture(&model, &opt, CUT as u64, &rng, policy_extra(&policy));
    let mut bytes = Vec::new();
    ckpt.write_to(&mut bytes).unwrap();

    // ...and resumed from the serialized bytes under 4 threads
    set_configured_threads(4);
    let loaded = TrainingCheckpoint::read_from(&mut bytes.as_slice()).unwrap();
    let (mut model2, mut opt2, mut rng2, policy2) = restore_run(&loaded).unwrap();
    let mut tuner2 = AdaptiveTuner::new(schedule);
    tuner2.set_iteration(loaded.iteration as usize);
    resilient_adapt(
        &mut model2,
        &mut opt2,
        &mut tuner2,
        &mut rng2,
        &ds,
        2,
        TOTAL,
        policy_extra(&policy2),
        &res,
    )
    .unwrap();
    let resumed = model_bytes(&model2);
    set_configured_threads(1);
    assert_eq!(
        straight, resumed,
        "resume under a different thread count drifted"
    );
}

fn fault_plan(kind: FaultKind) -> ResilienceConfig {
    ResilienceConfig {
        faults: vec![PlannedFault {
            at_iteration: 2,
            kind,
        }],
        ..ResilienceConfig::default()
    }
}

#[test]
fn every_fault_class_recovers_or_degrades() {
    let cfg = ExperimentConfig::smoke_test();
    for kind in [
        FaultKind::FlipGradBit { bit: 30 },
        FaultKind::NanGrad,
        FaultKind::NanParam,
        FaultKind::CorruptCheckpoint,
        FaultKind::Preempt,
        FaultKind::MemoryPressure,
    ] {
        let out = run_method_with(Method::Vanilla, &cfg, &fault_plan(kind)).unwrap();
        let events = out.journal.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::FaultInjected { .. })),
            "{kind:?}: no fault recorded in {events:?}"
        );
        assert!((0.0..=1.0).contains(&out.accuracy), "{kind:?}");
        match kind {
            FaultKind::NanGrad | FaultKind::NanParam => {
                assert!(
                    out.journal.rollbacks() >= 1,
                    "{kind:?}: no rollback in {events:?}"
                );
                assert!(
                    events
                        .iter()
                        .any(|e| matches!(e, RecoveryEvent::DivergenceDetected { .. })),
                    "{kind:?}: divergence not detected in {events:?}"
                );
            }
            FaultKind::CorruptCheckpoint => {
                assert!(
                    events
                        .iter()
                        .any(|e| matches!(e, RecoveryEvent::CheckpointRejected { .. })),
                    "corrupt checkpoint not rejected in {events:?}"
                );
            }
            FaultKind::Preempt => {
                assert!(
                    events
                        .iter()
                        .any(|e| matches!(e, RecoveryEvent::Preempted { .. }))
                        && events
                            .iter()
                            .any(|e| matches!(e, RecoveryEvent::Resumed { .. })),
                    "preemption not journaled in {events:?}"
                );
            }
            FaultKind::MemoryPressure => {
                assert!(
                    events
                        .iter()
                        .any(|e| matches!(e, RecoveryEvent::WindowDegraded { .. })),
                    "window not degraded in {events:?}"
                );
            }
            FaultKind::FlipGradBit { .. } => {}
            // serving-side faults: no-ops in the adaptation loop (the
            // fleet router is what reacts to them)
            FaultKind::WorkerCrash { .. } | FaultKind::WorkerStall { .. } => {}
        }
    }
}

#[test]
fn edge_llm_method_survives_preemption() {
    let cfg = ExperimentConfig::smoke_test();
    let out = run_method_with(Method::EdgeLlm, &cfg, &fault_plan(FaultKind::Preempt)).unwrap();
    let events = out.journal.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Resumed { .. })));
    assert!(out.perplexity.is_finite());
}

#[test]
fn exhausted_rollback_budget_fails_typed() {
    let cfg = ExperimentConfig::smoke_test();
    let res = ResilienceConfig {
        max_rollbacks: 0,
        faults: vec![PlannedFault {
            at_iteration: 1,
            kind: FaultKind::NanParam,
        }],
        ..ResilienceConfig::default()
    };
    match run_method_with(Method::Vanilla, &cfg, &res) {
        Err(EdgeLlmError::Diverged { rollbacks, .. }) => assert_eq!(rollbacks, 0),
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn corrupted_checkpoint_bytes_are_rejected() {
    let (model, opt, rng, _ds) = setup(3);
    let ckpt = TrainingCheckpoint::capture(&model, &opt, 5, &rng, b"p=1".to_vec());
    let mut bytes = Vec::new();
    ckpt.write_to(&mut bytes).unwrap();

    assert!(TrainingCheckpoint::read_from(&mut &bytes[..bytes.len() - 3]).is_err());
    assert!(TrainingCheckpoint::read_from(&mut &bytes[..4]).is_err());
    for idx in [9usize, bytes.len() / 2, bytes.len() - 1] {
        let mut flipped = bytes.clone();
        flipped[idx] ^= 0x10;
        assert!(
            TrainingCheckpoint::read_from(&mut flipped.as_slice()).is_err(),
            "flip at {idx} accepted"
        );
    }
}
