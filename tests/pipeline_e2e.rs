//! End-to-end pipeline tests: the one-call `run_method` API at smoke-test
//! scale, exercising every method, reproducibility, and the qualitative
//! claims of the paper (memory savings, modeled speedup, comparable
//! accuracy trends).

use edge_llm::pipeline::{run_method, ExperimentConfig, Method, TaskKind};
use edge_llm_model::ModelConfig;

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        model: ModelConfig::tiny()
            .with_layers(4)
            .with_d_model(32, 4)
            .with_seq_len(16),
        task: TaskKind::ClozeQa {
            subjects: 10,
            relations: 2,
        },
        seed: 123,
        train_samples: 16,
        eval_samples: 8,
        batch: 4,
        iterations: 40,
        lr: 0.08,
        budget: 0.3,
        window_depth: 2,
        ..ExperimentConfig::smoke_test()
    }
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let cfg = quick_config();
    let a = run_method(Method::EdgeLlm, &cfg).unwrap();
    let b = run_method(Method::EdgeLlm, &cfg).unwrap();
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.final_loss, b.final_loss);
    assert_eq!(a.policy_bits, b.policy_bits);
    assert_eq!(a.peak_activation_bytes, b.peak_activation_bytes);
}

#[test]
fn different_seeds_differ() {
    let mut cfg = quick_config();
    let a = run_method(Method::Vanilla, &cfg).unwrap();
    cfg.seed = 456;
    let b = run_method(Method::Vanilla, &cfg).unwrap();
    assert_ne!(a.final_loss, b.final_loss);
}

#[test]
fn edge_llm_preserves_the_papers_efficiency_shape() {
    // The headline shape of T1/F1/F2: Edge-LLM cuts modeled per-iteration
    // latency by a large factor and peak activation memory substantially,
    // at a compressed policy cost.
    let cfg = quick_config();
    let vanilla = run_method(Method::Vanilla, &cfg).unwrap();
    let edge = run_method(Method::EdgeLlm, &cfg).unwrap();
    let modeled_speedup = vanilla.modeled_iter_us / edge.modeled_iter_us;
    assert!(
        modeled_speedup > 1.5,
        "modeled speedup only {modeled_speedup:.2}x"
    );
    assert!(edge.peak_activation_bytes < vanilla.peak_activation_bytes);
    assert!(edge.policy_cost < 0.5 * vanilla.policy_cost);
}

#[test]
fn adaptation_beats_chance_for_all_methods() {
    let mut cfg = quick_config();
    cfg.iterations = 120;
    cfg.lr = 0.15;
    let chance = 1.0 / 10.0; // objects pool == subjects pool (10)
    for method in [Method::Vanilla, Method::UniformCompressed, Method::EdgeLlm] {
        let out = run_method(method, &cfg).unwrap();
        assert!(
            out.accuracy > chance,
            "{method:?} accuracy {} not above chance {chance}",
            out.accuracy
        );
    }
}

#[test]
fn last_layer_baseline_trains_fewer_layers() {
    let cfg = quick_config();
    let out = run_method(Method::LastLayerOnly, &cfg).unwrap();
    let vanilla = run_method(Method::Vanilla, &cfg).unwrap();
    // head tuning holds less activation memory than full-depth tuning
    assert!(out.peak_activation_bytes < vanilla.peak_activation_bytes);
}

#[test]
fn markov_task_runs_through_pipeline() {
    let mut cfg = quick_config();
    cfg.task = TaskKind::Markov { branching: 3 };
    cfg.iterations = 150;
    cfg.lr = 0.1;
    let out = run_method(Method::EdgeLlm, &cfg).unwrap();
    // the 64-state chain has entropy ln(3); a briefly tuned compressed
    // model won't reach that, but must be far below a diverged model
    assert!(out.perplexity < 150.0, "perplexity {}", out.perplexity);
}

#[test]
fn greedy_and_dp_policies_both_meet_budget() {
    let cfg = quick_config();
    for method in [Method::EdgeLlm, Method::EdgeLlmGreedyLuc] {
        let out = run_method(method, &cfg).unwrap();
        assert!(
            out.policy_cost <= cfg.budget + 1e-4,
            "{method:?} cost {} exceeds budget {}",
            out.policy_cost,
            cfg.budget
        );
    }
}
