//! Golden-report regression test: runs the quick-scale T1 and T3
//! experiments through the library (the same code path as `report
//! --quick`), projects away wall-clock columns, and compares the
//! remaining cells against checked-in snapshots.
//!
//! Every number in the snapshot is produced by seeded, fixed-order
//! arithmetic, so any drift means an algorithmic change — a kernel
//! reorder, a schedule tweak, a quantizer edit — not noise. When a
//! change is intentional, regenerate with:
//!
//! ```text
//! EDGELLM_UPDATE_GOLDEN=1 cargo test -q --test golden_report
//! ```

use edge_llm::experiments::{t1_main, t3_adaptive, Scale};
use edge_llm::report::Table;
use std::fs;
use std::path::PathBuf;

/// Columns that measure host wall-clock time and therefore vary run to
/// run; everything else in the report is deterministic.
const NONDETERMINISTIC: &[&str] = &["iter ms"];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Renders the deterministic projection of a table: the title, the kept
/// headers, and each row's kept cells, pipe-separated.
fn deterministic_projection(table: &Table) -> String {
    let keep: Vec<usize> = table
        .headers()
        .iter()
        .enumerate()
        .filter(|(_, h)| !NONDETERMINISTIC.contains(&h.as_str()))
        .map(|(i, _)| i)
        .collect();
    assert!(
        keep.len() < table.headers().len(),
        "expected at least one wall-clock column in {:?}",
        table.headers()
    );
    let mut lines = Vec::with_capacity(table.n_rows() + 1);
    lines.push(
        keep.iter()
            .map(|&i| table.headers()[i].as_str())
            .collect::<Vec<_>>()
            .join(" | "),
    );
    for row in 0..table.n_rows() {
        lines.push(
            keep.iter()
                .map(|&i| table.cell(row, i).unwrap_or(""))
                .collect::<Vec<_>>()
                .join(" | "),
        );
    }
    lines.join("\n") + "\n"
}

fn assert_matches_golden(table: &Table, file: &str) {
    let projection = deterministic_projection(table);
    let path = golden_path(file);
    if std::env::var_os("EDGELLM_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &projection).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with EDGELLM_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        projection,
        golden,
        "deterministic report cells drifted from {}; if the change is \
         intentional, regenerate with EDGELLM_UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn t1_quick_matches_snapshot() {
    let table = t1_main(Scale::Quick).expect("t1 quick");
    assert_matches_golden(&table, "t1_quick.txt");
}

#[test]
fn t3_quick_matches_snapshot() {
    let table = t3_adaptive(Scale::Quick).expect("t3 quick");
    assert_matches_golden(&table, "t3_quick.txt");
}
