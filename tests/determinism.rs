//! Cross-thread-count determinism of the full adaptation stack.
//!
//! The kernel backend guarantees that the worker count changes wall-clock
//! only, never results. These tests hold the whole training loop to that
//! guarantee: the same short adaptation run under 1, 2, 4, and 8 threads
//! must produce **byte-identical** final parameters and byte-identical
//! training checkpoints, and the pipeline must report identical modeled
//! and measured-quality numbers.
//!
//! The thread knob is process-wide, so every test here drives the runs
//! sequentially under a shared lock and restores the serial default when
//! it finishes.

use edge_llm::baselines::uniform_policy_for_budget;
use edge_llm::compress::apply_policy;
use edge_llm::pipeline::{run_method_with, ExperimentConfig, Method};
use edge_llm::resilience::{policy_extra, resilient_adapt, ResilienceConfig};
use edge_llm_data::{Dataset, ModArithTask, TaskGenerator};
use edge_llm_model::{
    save_model, AdaptiveTuner, EdgeModel, ModelConfig, Sgd, TrainingCheckpoint, WindowSchedule,
};
use edge_llm_tensor::{set_configured_threads, TensorRng};
use std::sync::Mutex;

/// Serializes tests that touch the process-wide thread setting.
static KNOB: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn setup(seed: u64) -> (EdgeModel, Sgd, TensorRng, Dataset) {
    let task = ModArithTask::new(7);
    let mut rng = TensorRng::seed_from(seed);
    let cfg = ModelConfig::tiny().with_vocab(task.vocab_size());
    let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = Dataset::from_samples((0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect());
    (model, Sgd::new(0.05), rng, ds)
}

/// One short compressed windowed adaptation run under `threads` workers;
/// returns the serialized final model and the serialized training
/// checkpoint captured at the end.
fn adapt_under(threads: usize) -> (Vec<u8>, Vec<u8>) {
    const ITERS: usize = 8;
    set_configured_threads(threads);
    let (mut model, mut opt, mut rng, ds) = setup(23);
    let policy = uniform_policy_for_budget(model.n_layers(), 0.5);
    apply_policy(&mut model, &policy).unwrap();
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    resilient_adapt(
        &mut model,
        &mut opt,
        &mut tuner,
        &mut rng,
        &ds,
        2,
        ITERS,
        policy_extra(&policy),
        &ResilienceConfig::default(),
    )
    .unwrap();
    let mut params = Vec::new();
    save_model(&model, &mut params).unwrap();
    let ckpt = TrainingCheckpoint::capture(&model, &opt, ITERS as u64, &rng, policy_extra(&policy));
    let mut ckpt_bytes = Vec::new();
    ckpt.write_to(&mut ckpt_bytes).unwrap();
    (params, ckpt_bytes)
}

#[test]
fn adaptation_is_byte_identical_for_every_thread_count() {
    let _guard = KNOB.lock().unwrap();
    let (ref_params, ref_ckpt) = adapt_under(1);
    for t in &THREAD_COUNTS[1..] {
        let (params, ckpt) = adapt_under(*t);
        assert_eq!(ref_params, params, "parameters drifted at {t} threads");
        assert_eq!(ref_ckpt, ckpt, "checkpoint drifted at {t} threads");
    }
    set_configured_threads(1);
}

#[test]
fn pipeline_numbers_are_thread_count_invariant() {
    let _guard = KNOB.lock().unwrap();
    let cfg = ExperimentConfig::smoke_test();
    set_configured_threads(1);
    let reference = run_method_with(Method::EdgeLlm, &cfg, &ResilienceConfig::default()).unwrap();
    for t in [2usize, 4] {
        set_configured_threads(t);
        let out = run_method_with(Method::EdgeLlm, &cfg, &ResilienceConfig::default()).unwrap();
        assert_eq!(reference.accuracy, out.accuracy, "accuracy at {t} threads");
        assert_eq!(
            reference.perplexity, out.perplexity,
            "perplexity at {t} threads"
        );
        assert_eq!(
            reference.final_loss, out.final_loss,
            "final loss at {t} threads"
        );
        assert_eq!(
            reference.modeled_iter_us, out.modeled_iter_us,
            "modeled latency at {t} threads"
        );
        assert_eq!(out.threads, t, "outcome did not record the thread count");
    }
    set_configured_threads(1);
}
