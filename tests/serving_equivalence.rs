//! Differential proof of the serving engine's core invariant: for any
//! request mix, any arrival order, any batch size, and any kernel thread
//! count, every request's generated tokens — and the combined
//! distribution behind its final token — are **bit-identical** to running
//! that request alone through a single-sequence `InferenceSession`
//! (`run_solo`, an independently written reference decoder).
//!
//! The randomized-mix tests draw prompt lengths, decoding modes, voting
//! policies, deadlines, and scheduling shape from the in-repo property
//! harness, so every CI run explores fresh interleavings with a
//! reproducible per-case seed.

use edge_llm::compress::apply_activation_quant;
use edge_llm_model::{Decoding, EdgeModel, ModelConfig, VotingCombiner, VotingPolicy};
use edge_llm_quant::{BitWidth, Granularity, QuantScheme};
use edge_llm_serve::{run_solo, BatchedInferenceEngine, FinishReason, ServeOutcome, ServeRequest};
use edge_llm_tensor::check::{run_cases, Gen};
use edge_llm_tensor::{configured_threads, set_configured_threads, TensorRng};
use std::sync::Mutex;

/// Serializes tests that touch the process-wide thread setting.
static KNOB: Mutex<()> = Mutex::new(());

fn tiny_model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

/// Draws one random request against `model`'s shape.
fn random_request(g: &mut Gen, model: &EdgeModel, id: usize) -> ServeRequest {
    let cfg = model.config();
    let n_layers = model.n_layers();
    let prompt_len = g.usize_in(1, cfg.seq_len + 2); // may exceed capacity
    let prompt: Vec<usize> = (0..prompt_len)
        .map(|_| g.usize_in(0, cfg.vocab_size))
        .collect();
    let decoding = match g.usize_in(0, 4) {
        0 => Decoding::Greedy,
        1 => Decoding::Sample {
            temperature: g.f32_in(0.3, 2.0),
        },
        2 => Decoding::TopK {
            k: g.usize_in(1, cfg.vocab_size + 4),
            temperature: g.f32_in(0.3, 2.0),
        },
        _ => Decoding::SelfSpeculative {
            draft_depth: g.usize_in(0, n_layers),
            k: g.usize_in(1, 7),
        },
    };
    // speculative requests verify against the final exit, so they only
    // validate with a final-exit voting policy
    let voting = if matches!(decoding, Decoding::SelfSpeculative { .. }) {
        VotingPolicy::final_only(n_layers)
    } else {
        match g.usize_in(0, 4) {
            0 => VotingPolicy::final_only(n_layers),
            1 => VotingPolicy::all_exits(n_layers, VotingCombiner::Average),
            2 => VotingPolicy::all_exits(n_layers, VotingCombiner::LastExit),
            _ => VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::ConfidenceWeighted {
                    temperature: g.f32_in(0.5, 2.0),
                },
            ),
        }
    };
    ServeRequest {
        id: format!("r{id}"),
        prompt,
        max_new_tokens: g.usize_in(0, cfg.seq_len),
        decoding,
        voting,
        seed: g.u64(),
        deadline_steps: if g.bool() {
            Some(g.usize_in(0, 2 * cfg.seq_len))
        } else {
            None
        },
        tenant: None,
    }
}

fn assert_outcome_bit_equal(batched: &ServeOutcome, solo: &ServeOutcome, ctx: &str) {
    assert_eq!(batched.id, solo.id, "{ctx}: id");
    assert_eq!(batched.tokens, solo.tokens, "{ctx} {}: tokens", solo.id);
    assert_eq!(batched.finish, solo.finish, "{ctx} {}: finish", solo.id);
    assert_eq!(batched.steps, solo.steps, "{ctx} {}: steps", solo.id);
    let bits = |probs: &Option<Vec<f32>>| {
        probs
            .as_ref()
            .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
    };
    assert_eq!(
        bits(&batched.final_probs),
        bits(&solo.final_probs),
        "{ctx} {}: final distribution must be bit-identical",
        solo.id
    );
}

/// Serves `requests` at the given batch size and compares every outcome
/// against the solo reference, bitwise.
fn assert_engine_matches_solo(
    model: &EdgeModel,
    requests: &[ServeRequest],
    batch: usize,
    ctx: &str,
) {
    let mut engine = BatchedInferenceEngine::new(model, batch).unwrap();
    for r in requests {
        engine.submit(r.clone());
    }
    let outcomes = engine.run_to_completion().unwrap();
    assert_eq!(outcomes.len(), requests.len(), "{ctx}: outcome count");
    for req in requests {
        let solo = run_solo(model, req).unwrap();
        let batched = outcomes
            .iter()
            .find(|o| o.id == req.id)
            .unwrap_or_else(|| panic!("{ctx}: no outcome for {}", req.id));
        assert_outcome_bit_equal(batched, &solo, ctx);
    }
}

#[test]
fn randomized_mixes_match_solo_across_batch_sizes_and_threads() {
    let _guard = KNOB.lock().unwrap();
    let saved = configured_threads();
    let model = tiny_model(11);
    run_cases("serving_equivalence_mix", 12, |g| {
        let n_requests = g.usize_in(1, 9);
        let requests: Vec<ServeRequest> = (0..n_requests)
            .map(|i| random_request(g, &model, i))
            .collect();
        let batch = *g.choose(&[1usize, 2, 4, 8]);
        let threads = *g.choose(&[1usize, 2, 4]);
        set_configured_threads(threads);
        assert_engine_matches_solo(
            &model,
            &requests,
            batch,
            &format!("batch {batch} threads {threads}"),
        );
    });
    set_configured_threads(saved);
}

#[test]
fn every_batch_size_yields_the_same_stream_for_a_fixed_mix() {
    let _guard = KNOB.lock().unwrap();
    let saved = configured_threads();
    let model = tiny_model(12);
    let cfg = model.config();
    // a fixed heterogeneous mix: varied prompts, all decoding modes, a
    // deadline eviction, and a capacity eviction (prompt past seq_len)
    let requests = vec![
        ServeRequest {
            id: "greedy".into(),
            prompt: vec![1, 2, 3],
            max_new_tokens: 4,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 1,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "sample".into(),
            prompt: vec![4],
            max_new_tokens: 5,
            decoding: Decoding::Sample { temperature: 0.7 },
            voting: VotingPolicy::all_exits(model.n_layers(), VotingCombiner::Average),
            seed: 2,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "topk".into(),
            prompt: vec![5, 6, 7, 8],
            max_new_tokens: 3,
            decoding: Decoding::TopK {
                k: 3,
                temperature: 1.2,
            },
            voting: VotingPolicy::all_exits(
                model.n_layers(),
                VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            ),
            seed: 3,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "deadline".into(),
            prompt: vec![1; 4],
            max_new_tokens: cfg.seq_len,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 4,
            deadline_steps: Some(5),
            tenant: None,
        },
        ServeRequest {
            id: "capacity".into(),
            prompt: (0..cfg.seq_len + 2).map(|i| i % cfg.vocab_size).collect(),
            max_new_tokens: 2,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 5,
            deadline_steps: None,
            tenant: None,
        },
    ];
    for threads in [1usize, 2, 4] {
        set_configured_threads(threads);
        for batch in [1usize, 2, 4, 8] {
            assert_engine_matches_solo(
                &model,
                &requests,
                batch,
                &format!("fixed mix, batch {batch}, threads {threads}"),
            );
        }
    }
    set_configured_threads(saved);
}

#[test]
fn arrival_order_never_changes_any_request() {
    let model = tiny_model(13);
    run_cases("serving_equivalence_order", 6, |g| {
        let mut requests: Vec<ServeRequest> =
            (0..5).map(|i| random_request(g, &model, i)).collect();
        let batch = *g.choose(&[2usize, 4]);
        assert_engine_matches_solo(&model, &requests, batch, "original order");
        // reverse the arrival order: every per-request outcome must be
        // unchanged because solo references don't depend on order at all
        requests.reverse();
        assert_engine_matches_solo(&model, &requests, batch, "reversed order");
    });
}

/// A self-speculative request with a final-exit voting policy.
fn spec_request(
    id: &str,
    n_layers: usize,
    draft_depth: usize,
    k: usize,
    prompt: Vec<usize>,
    max_new_tokens: usize,
) -> ServeRequest {
    ServeRequest {
        id: id.into(),
        prompt,
        max_new_tokens,
        decoding: Decoding::SelfSpeculative { draft_depth, k },
        voting: VotingPolicy::final_only(n_layers),
        seed: 0,
        deadline_steps: None,
        tenant: None,
    }
}

#[test]
fn mixed_speculative_and_greedy_slots_match_solo_bitwise() {
    let _guard = KNOB.lock().unwrap();
    let saved = configured_threads();
    // 4 layers so the spec slots span shallow, mid, and final-exit drafts
    let mut rng = TensorRng::seed_from(21);
    let model = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
    let nl = model.n_layers();
    let requests = vec![
        spec_request("spec-shallow", nl, 1, 2, vec![1, 2, 3], 4),
        ServeRequest {
            id: "greedy-mate".into(),
            prompt: vec![3, 1],
            max_new_tokens: 5,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::all_exits(nl, VotingCombiner::Average),
            seed: 7,
            deadline_steps: None,
            tenant: None,
        },
        spec_request("spec-mid", nl, 2, 4, vec![4, 5], 5),
        ServeRequest {
            id: "sample-mate".into(),
            prompt: vec![6],
            max_new_tokens: 4,
            decoding: Decoding::Sample { temperature: 0.9 },
            voting: VotingPolicy::final_only(nl),
            seed: 8,
            deadline_steps: None,
            tenant: None,
        },
        spec_request("spec-deep", nl, nl - 1, 8, vec![7, 8, 9, 1], 3),
    ];
    for threads in [1usize, 2, 4] {
        set_configured_threads(threads);
        for batch in [1usize, 2, 3, 8] {
            assert_engine_matches_solo(
                &model,
                &requests,
                batch,
                &format!("spec mix, batch {batch}, threads {threads}"),
            );
        }
    }
    set_configured_threads(saved);
}

#[test]
fn eviction_mid_verify_leaves_surviving_slots_bit_identical() {
    let mut rng = TensorRng::seed_from(22);
    let model = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
    let nl = model.n_layers();
    let seq_len = model.config().seq_len;
    // a spec slot killed by its fed-token deadline partway through its
    // rounds, one killed by cache capacity, and batch-mates (one of them
    // speculative) that must retire unperturbed
    let mut deadline_victim = spec_request("deadline-victim", nl, 1, 8, vec![1, 2], seq_len);
    deadline_victim.deadline_steps = Some(4);
    let capacity_victim = spec_request(
        "capacity-victim",
        nl,
        2,
        4,
        (0..seq_len - 1)
            .map(|i| i % model.config().vocab_size)
            .collect(),
        seq_len,
    );
    let requests = vec![
        deadline_victim,
        capacity_victim,
        spec_request("spec-survivor", nl, 1, 3, vec![5, 6], 4),
        ServeRequest {
            id: "greedy-survivor".into(),
            prompt: vec![7, 8],
            max_new_tokens: 4,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(nl),
            seed: 9,
            deadline_steps: None,
            tenant: None,
        },
    ];
    for batch in [2usize, 4] {
        assert_engine_matches_solo(
            &model,
            &requests,
            batch,
            &format!("mid-verify evict, batch {batch}"),
        );
    }
    // and the victims really did evict for the reasons constructed above
    let mut engine = BatchedInferenceEngine::new(&model, 4).unwrap();
    for r in &requests {
        engine.submit(r.clone());
    }
    let outcomes = engine.run_to_completion().unwrap();
    let finish = |id: &str| outcomes.iter().find(|o| o.id == id).unwrap().finish.clone();
    assert_eq!(finish("deadline-victim"), FinishReason::DeadlineExceeded);
    assert_eq!(finish("capacity-victim"), FinishReason::CapacityExhausted);
    assert_eq!(finish("spec-survivor"), FinishReason::Completed);
    assert_eq!(finish("greedy-survivor"), FinishReason::Completed);
}

#[test]
fn activation_quantization_does_not_couple_batch_rows() {
    // per-tensor and grouped activation calibration are the schemes where
    // a naive batched implementation would couple rows (the quant range
    // would span all in-flight sequences); the engine must fit ranges per
    // row and stay bit-identical to solo
    let schemes = [
        QuantScheme::asymmetric(BitWidth::W8).with_granularity(Granularity::PerTensor),
        QuantScheme::asymmetric(BitWidth::W4).with_granularity(Granularity::PerTensor),
        QuantScheme::asymmetric(BitWidth::W8).with_granularity(Granularity::Group(8)),
    ];
    for (si, scheme) in schemes.into_iter().enumerate() {
        let mut model = tiny_model(14);
        apply_activation_quant(&mut model, Some(scheme)).unwrap();
        run_cases(&format!("serving_equivalence_quant_{si}"), 4, |g| {
            let requests: Vec<ServeRequest> =
                (0..4).map(|i| random_request(g, &model, i)).collect();
            let batch = *g.choose(&[2usize, 4, 8]);
            assert_engine_matches_solo(&model, &requests, batch, &format!("quant {scheme:?}"));
        });
    }
}

#[test]
fn rejected_and_evicted_requests_report_identically() {
    let model = tiny_model(15);
    let cfg = model.config();
    let requests = vec![
        ServeRequest {
            id: "empty-prompt".into(),
            prompt: vec![],
            max_new_tokens: 2,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 1,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "bad-token".into(),
            prompt: vec![cfg.vocab_size + 5],
            max_new_tokens: 2,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 2,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "bad-temp".into(),
            prompt: vec![1],
            max_new_tokens: 2,
            decoding: Decoding::Sample { temperature: -1.0 },
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 3,
            deadline_steps: None,
            tenant: None,
        },
        ServeRequest {
            id: "zero-deadline".into(),
            prompt: vec![1, 2],
            max_new_tokens: 2,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 4,
            deadline_steps: Some(0),
            tenant: None,
        },
        ServeRequest {
            id: "survivor".into(),
            prompt: vec![3, 4],
            max_new_tokens: 3,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 5,
            deadline_steps: None,
            tenant: None,
        },
    ];
    assert_engine_matches_solo(&model, &requests, 4, "degenerate requests");
    // and the reasons are the expected ones
    let mut engine = BatchedInferenceEngine::new(&model, 4).unwrap();
    for r in &requests {
        engine.submit(r.clone());
    }
    let outcomes = engine.run_to_completion().unwrap();
    let finish = |id: &str| outcomes.iter().find(|o| o.id == id).unwrap().finish.clone();
    assert!(matches!(
        finish("empty-prompt"),
        FinishReason::Rejected { .. }
    ));
    assert!(matches!(finish("bad-token"), FinishReason::Rejected { .. }));
    assert!(matches!(finish("bad-temp"), FinishReason::Rejected { .. }));
    assert_eq!(finish("zero-deadline"), FinishReason::DeadlineExceeded);
    assert_eq!(finish("survivor"), FinishReason::Completed);
}
