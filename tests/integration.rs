//! Cross-crate integration tests: compression machinery applied to live
//! models, oracle-driven LUC search, and schedule search on extracted
//! workloads.

use edge_llm::baselines::uniform_policy_for_budget;
use edge_llm::compress::{apply_policy, clear_compression};
use edge_llm::eval::evaluate;
use edge_llm::oracle::ModelOracle;
use edge_llm::schedule::{model_workloads, naive_latency_us, schedule_workloads, total_latency_us};
use edge_llm_data::{accuracy, ClozeQaTask, CopyTask, MarkovTextTask, TaskGenerator};
use edge_llm_hw::{DeviceModel, ScheduleSpace, SearchStrategy};
use edge_llm_luc::{profile, search_policy, CompressionPolicy, SearchAlgorithm};
use edge_llm_model::{
    gradient_check, AdaptiveTuner, EdgeModel, LayerWindow, ModelConfig, Sgd, VotingCombiner,
    VotingPolicy, WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;

fn tiny_model(layers: usize, seed: u64) -> (ModelConfig, EdgeModel) {
    let mut rng = TensorRng::seed_from(seed);
    let cfg = ModelConfig::tiny().with_layers(layers);
    let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    (cfg, model)
}

#[test]
fn gradients_stay_correct_under_compression() {
    // The STE + mask gradients must agree with finite differences even on
    // a compressed model — the property that makes compressed adaptation
    // trustworthy end to end.
    let (cfg, mut model) = tiny_model(2, 4);
    let policy = CompressionPolicy::uniform(2, BitWidth::W8, 0.25);
    apply_policy(&mut model, &policy).unwrap();
    let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 5) % cfg.vocab_size).collect();
    let report = gradient_check(
        &mut model,
        &tokens,
        &tokens,
        1,
        LayerWindow { start: 1, end: 2 },
        151,
    )
    .unwrap();
    assert!(report.probed > 5);
    assert!(
        report.max_abs_err < 5e-2,
        "grad err {} under compression",
        report.max_abs_err
    );
}

#[test]
fn compressed_windowed_adaptation_learns() {
    let mut rng = TensorRng::seed_from(7);
    let task = ClozeQaTask::new(8, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    apply_policy(
        &mut model,
        &CompressionPolicy::uniform(2, BitWidth::W8, 0.25),
    )
    .unwrap();
    let train = task.dataset(8, cfg.seq_len, &mut rng);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    let mut opt = Sgd::new(0.1);
    let before = evaluate(&model, &VotingPolicy::final_only(2), &train, 2).unwrap();
    for it in 0..80 {
        let b = train.batch_at(it * 2, 2);
        tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap();
    }
    let after = evaluate(&model, &VotingPolicy::final_only(2), &train, 2).unwrap();
    assert!(
        after.accuracy > before.accuracy,
        "adaptation must improve accuracy: {} -> {}",
        before.accuracy,
        after.accuracy
    );
    // pruned weights must still be pruned after 80 optimizer steps
    let (qkv, _) = model.block(0).attn().linears();
    let mask = qkv.mask().expect("mask installed");
    for r in 0..qkv.weight().rows() {
        for c in 0..qkv.weight().cols() {
            if !mask.is_kept(r, c) {
                assert_eq!(
                    qkv.weight().get(r, c),
                    0.0,
                    "pruned weight resurrected at ({r},{c})"
                );
            }
        }
    }
}

#[test]
fn luc_pipeline_profiles_and_searches_on_real_model() {
    let mut rng = TensorRng::seed_from(11);
    let task = ClozeQaTask::new(8, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(3)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    // brief adaptation so sensitivity is meaningful
    let train = task.dataset(8, cfg.seq_len, &mut rng);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    let mut opt = Sgd::new(0.1);
    for it in 0..40 {
        let b = train.batch_at(it * 2, 2);
        tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap();
    }
    let calib = train.batch_at(0, 2);
    let mut oracle = ModelOracle::new(&model, &calib.tokens, &calib.targets, 2);
    let prof = profile(
        &mut oracle,
        &[BitWidth::W2, BitWidth::W4, BitWidth::W16],
        &[0.0, 0.5],
    )
    .unwrap();
    prof.validate().unwrap();
    let out = search_policy(&prof, 0.3, SearchAlgorithm::DynamicProgramming).unwrap();
    assert_eq!(out.policy.n_layers(), 3);
    assert!(out.policy.mean_cost() <= 0.3 + 1e-5);
    // and the searched policy is applicable
    apply_policy(&mut model, &out.policy).unwrap();
    clear_compression(&mut model).unwrap();
}

#[test]
fn voting_recovers_windowed_accuracy() {
    // After round-robin windowed tuning, all exits are trained; voting
    // must not be (much) worse than the final exit, and usually helps.
    let mut rng = TensorRng::seed_from(13);
    let task = ClozeQaTask::new(8, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let train = task.dataset(12, cfg.seq_len, &mut rng);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    let mut opt = Sgd::new(0.1);
    for it in 0..120 {
        let b = train.batch_at(it * 2, 2);
        tuner
            .step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)
            .unwrap();
    }
    let last = evaluate(&model, &VotingPolicy::final_only(4), &train, 2).unwrap();
    let vote = evaluate(
        &model,
        &VotingPolicy::all_exits(4, VotingCombiner::ConfidenceWeighted { temperature: 1.0 }),
        &train,
        2,
    )
    .unwrap();
    assert!(
        vote.accuracy >= last.accuracy * 0.9,
        "voting {} should not collapse below last exit {}",
        vote.accuracy,
        last.accuracy
    );
}

#[test]
fn workload_extraction_and_scheduling_chain() {
    let cfg = ModelConfig::tiny().with_layers(2);
    let policy = uniform_policy_for_budget(2, 0.25);
    let workloads = model_workloads(&cfg, &policy, 2).unwrap();
    assert_eq!(workloads.len(), 12);
    let device = DeviceModel::tx2_class();
    let scheduled = schedule_workloads(
        &workloads,
        &device,
        &ScheduleSpace::default(),
        SearchStrategy::Exhaustive,
    )
    .unwrap();
    let searched = total_latency_us(&scheduled);
    let naive = naive_latency_us(&workloads, &device).unwrap();
    assert!(searched < naive);
    // every scheduled GEMM fits SRAM
    for s in &scheduled {
        assert!(s.cost.sram_bytes <= device.sram_bytes);
    }
}

#[test]
fn tasks_are_learnable_by_full_tuning() {
    // Every task generator must be learnable enough that a tiny model
    // improves measurably in 60 iterations — guards against generators
    // emitting inconsistent supervision.
    for (name, task) in [
        (
            "cloze",
            Box::new(ClozeQaTask::new(6, 2)) as Box<dyn TaskGenerator>,
        ),
        ("copy", Box::new(CopyTask::new(6))),
        ("markov", Box::new(MarkovTextTask::new(16, 2, 5))),
    ] {
        let mut rng = TensorRng::seed_from(17);
        let cfg = ModelConfig::tiny()
            .with_layers(2)
            .with_vocab(task.vocab_size());
        let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let samples: Vec<_> = (0..8).map(|_| task.sample(cfg.seq_len, &mut rng)).collect();
        let ds = edge_llm_data::Dataset::from_samples(samples);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
        let mut opt = Sgd::new(0.1);
        let b0 = ds.batch_at(0, 2);
        let first = tuner
            .step(&mut model, &mut opt, &b0.tokens, &b0.targets, 2)
            .unwrap()
            .loss;
        let mut last = first;
        for it in 1..60 {
            let b = ds.batch_at(it * 2, 2);
            last = tuner
                .step(&mut model, &mut opt, &b.tokens, &b.targets, 2)
                .unwrap()
                .loss;
        }
        assert!(last < first, "{name}: loss should drop ({first} -> {last})");
    }
}

#[test]
fn accuracy_metric_consistent_with_eval() {
    let mut rng = TensorRng::seed_from(19);
    let task = ClozeQaTask::new(6, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(2)
        .with_vocab(task.vocab_size());
    let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
    let ds = task.dataset(4, cfg.seq_len, &mut rng);
    let b = ds.batch_at(0, 4);
    let logits = model.logits(&b.tokens, 4).unwrap();
    let direct = accuracy(&logits, &b.targets);
    let via_eval = evaluate(&model, &VotingPolicy::final_only(2), &ds, 4).unwrap();
    assert!((direct - via_eval.accuracy).abs() < 1e-5);
}
