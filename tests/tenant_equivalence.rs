//! Differential proof of the multi-tenant serving invariant: in a
//! mixed-tenant batch, every tenant's token stream — and the combined
//! distribution behind its final token — is **bit-identical** to running
//! that request alone through a single-sequence session with the
//! tenant's adapter attached (`run_solo_with_adapter`, the
//! solo-with-merged-adapter oracle). The shared base projections stay
//! one multi-row matmul; the engine applies each slot's low-rank delta
//! to that slot's rows only, so who shares the batch never leaks into
//! anyone's output.
//!
//! The invariant must hold for any batch size, any kernel thread count,
//! dense and packed (W4/W2) bases, greedy and self-speculative slots,
//! across adapter-cache evictions forced by a tiny bytes budget, and
//! across adapter re-registration mid-stream.

use edge_llm::compress::apply_policy;
use edge_llm_luc::{CompressionPolicy, LayerPolicy};
use edge_llm_model::{
    AdapterTarget, Decoding, EdgeModel, ModelConfig, TenantAdapter, VotingCombiner, VotingPolicy,
};
use edge_llm_quant::BitWidth;
use edge_llm_serve::{
    run_solo_with_adapter, BatchedInferenceEngine, FinishReason, ServeOutcome, ServeRequest,
};
use edge_llm_tensor::check::{run_cases, Gen};
use edge_llm_tensor::{configured_threads, set_configured_threads, TensorRng};
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the process-wide thread setting.
static KNOB: Mutex<()> = Mutex::new(());

fn tiny_model(seed: u64) -> EdgeModel {
    // 4 layers so speculative slots have shallow and mid draft exits
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap()
}

/// The same model compressed layer-wise and served off packed codes.
fn packed_model(seed: u64, bits: BitWidth) -> EdgeModel {
    let mut model = tiny_model(seed);
    let policy = CompressionPolicy::from_layers(vec![
        LayerPolicy {
            bits,
            prune_ratio: 0.25,
        };
        model.n_layers()
    ]);
    apply_policy(&mut model, &policy).unwrap();
    model
}

/// Draws a random adapter valid for `model`: 1–3 distinct sites, rank
/// 1–2, seeded factors.
fn random_adapter(g: &mut Gen, model: &EdgeModel) -> TenantAdapter {
    let cfg = model.config();
    let mut sites: Vec<(usize, AdapterTarget)> = Vec::new();
    for _ in 0..g.usize_in(1, 4) {
        let site = (
            g.usize_in(0, cfg.n_layers),
            AdapterTarget::ALL[g.usize_in(0, AdapterTarget::ALL.len())],
        );
        if !sites.contains(&site) {
            sites.push(site);
        }
    }
    TenantAdapter::seeded(cfg, g.u64(), g.usize_in(1, 3), &sites)
}

/// Draws one random request, assigned to one of `tenants` or the base.
fn random_request(g: &mut Gen, model: &EdgeModel, id: usize, tenants: &[String]) -> ServeRequest {
    let cfg = model.config();
    let n_layers = model.n_layers();
    let prompt_len = g.usize_in(1, cfg.seq_len);
    let prompt: Vec<usize> = (0..prompt_len)
        .map(|_| g.usize_in(0, cfg.vocab_size))
        .collect();
    let decoding = match g.usize_in(0, 4) {
        0 | 1 => Decoding::Greedy,
        2 => Decoding::Sample {
            temperature: g.f32_in(0.3, 2.0),
        },
        _ => Decoding::SelfSpeculative {
            draft_depth: g.usize_in(1, n_layers),
            k: g.usize_in(1, 5),
        },
    };
    let voting = if matches!(decoding, Decoding::SelfSpeculative { .. }) {
        VotingPolicy::final_only(n_layers)
    } else {
        match g.usize_in(0, 3) {
            0 => VotingPolicy::final_only(n_layers),
            1 => VotingPolicy::all_exits(n_layers, VotingCombiner::Average),
            _ => VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            ),
        }
    };
    // base slots mix in so adapted and unadapted rows share batches
    let tenant =
        (!tenants.is_empty() && g.bool()).then(|| tenants[g.usize_in(0, tenants.len())].clone());
    ServeRequest {
        id: format!("r{id}"),
        prompt,
        max_new_tokens: g.usize_in(0, cfg.seq_len),
        decoding,
        voting,
        seed: g.u64(),
        deadline_steps: if g.bool() {
            Some(g.usize_in(1, 2 * cfg.seq_len))
        } else {
            None
        },
        tenant,
    }
}

fn assert_outcome_bit_equal(batched: &ServeOutcome, solo: &ServeOutcome, ctx: &str) {
    assert_eq!(batched.id, solo.id, "{ctx}: id");
    assert_eq!(batched.tokens, solo.tokens, "{ctx} {}: tokens", solo.id);
    assert_eq!(batched.finish, solo.finish, "{ctx} {}: finish", solo.id);
    assert_eq!(batched.steps, solo.steps, "{ctx} {}: steps", solo.id);
    let bits = |probs: &Option<Vec<f32>>| {
        probs
            .as_ref()
            .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
    };
    assert_eq!(
        bits(&batched.final_probs),
        bits(&solo.final_probs),
        "{ctx} {}: final distribution must be bit-identical",
        solo.id
    );
}

/// Runs `req` alone with its tenant's adapter attached — the oracle
/// every mixed-tenant engine outcome must reproduce bitwise.
fn solo_reference(
    model: &EdgeModel,
    adapters: &[(String, TenantAdapter)],
    req: &ServeRequest,
) -> ServeOutcome {
    let adapter = req.tenant.as_deref().map(|t| {
        let (_, a) = adapters
            .iter()
            .find(|(name, _)| name == t)
            .expect("test requests only name registered tenants");
        Arc::new(a.resolve(model).unwrap())
    });
    run_solo_with_adapter(model, req, adapter).unwrap()
}

/// Serves the mix at `batch` slots with all `adapters` registered
/// (optionally under a bytes budget) and compares every outcome against
/// its solo-with-adapter reference, bitwise.
fn assert_engine_matches_solo(
    model: &EdgeModel,
    adapters: &[(String, TenantAdapter)],
    budget: Option<usize>,
    requests: &[ServeRequest],
    batch: usize,
    ctx: &str,
) {
    let mut engine = BatchedInferenceEngine::new(model, batch).unwrap();
    for (tenant, adapter) in adapters {
        engine.register_adapter(tenant, adapter.clone()).unwrap();
    }
    if let Some(bytes) = budget {
        engine.set_adapter_budget_bytes(bytes);
    }
    for r in requests {
        engine.submit(r.clone());
    }
    let outcomes = engine.run_to_completion().unwrap();
    assert_eq!(outcomes.len(), requests.len(), "{ctx}: outcome count");
    for req in requests {
        let solo = solo_reference(model, adapters, req);
        let batched = outcomes
            .iter()
            .find(|o| o.id == req.id)
            .unwrap_or_else(|| panic!("{ctx}: no outcome for {}", req.id));
        assert_outcome_bit_equal(batched, &solo, ctx);
    }
}

#[test]
fn randomized_mixed_tenant_batches_match_solo_across_batch_sizes_and_threads() {
    let _guard = KNOB.lock().unwrap();
    let saved = configured_threads();
    let model = tiny_model(31);
    run_cases("tenant_equivalence_mix", 10, |g| {
        let n_tenants = g.usize_in(1, 4);
        let adapters: Vec<(String, TenantAdapter)> = (0..n_tenants)
            .map(|t| (format!("tenant-{t}"), random_adapter(g, &model)))
            .collect();
        let tenant_names: Vec<String> = adapters.iter().map(|(n, _)| n.clone()).collect();
        let n_requests = g.usize_in(1, 9);
        let requests: Vec<ServeRequest> = (0..n_requests)
            .map(|i| random_request(g, &model, i, &tenant_names))
            .collect();
        let batch = *g.choose(&[1usize, 2, 4, 8]);
        let threads = *g.choose(&[1usize, 2, 4]);
        set_configured_threads(threads);
        assert_engine_matches_solo(
            &model,
            &adapters,
            None,
            &requests,
            batch,
            &format!("batch {batch} threads {threads}"),
        );
    });
    set_configured_threads(saved);
}

#[test]
fn packed_w4_and_w2_bases_serve_tenants_bit_identically() {
    // the per-slot delta rides on top of the packed shared matmul — the
    // oracle must hold when the frozen base decodes off integer codes
    for (bi, bits) in [BitWidth::W4, BitWidth::W2].into_iter().enumerate() {
        let model = packed_model(32, bits);
        run_cases(&format!("tenant_equivalence_packed_{bi}"), 4, |g| {
            let adapters: Vec<(String, TenantAdapter)> = (0..2)
                .map(|t| (format!("tenant-{t}"), random_adapter(g, &model)))
                .collect();
            let names: Vec<String> = adapters.iter().map(|(n, _)| n.clone()).collect();
            let requests: Vec<ServeRequest> = (0..5)
                .map(|i| random_request(g, &model, i, &names))
                .collect();
            let batch = *g.choose(&[2usize, 4]);
            assert_engine_matches_solo(
                &model,
                &adapters,
                None,
                &requests,
                batch,
                &format!("packed {bits:?}"),
            );
        });
    }
}

#[test]
fn cache_evictions_mid_run_never_change_any_tenant_stream() {
    let model = tiny_model(33);
    run_cases("tenant_equivalence_evict", 6, |g| {
        let adapters: Vec<(String, TenantAdapter)> = (0..3)
            .map(|t| (format!("tenant-{t}"), random_adapter(g, &model)))
            .collect();
        let names: Vec<String> = adapters.iter().map(|(n, _)| n.clone()).collect();
        // every request names a tenant so admissions constantly thrash
        // the one-adapter budget below
        let requests: Vec<ServeRequest> = (0..8)
            .map(|i| {
                let mut r = random_request(g, &model, i, &names);
                r.tenant = Some(names[i % names.len()].clone());
                r.max_new_tokens = r.max_new_tokens.max(1);
                r
            })
            .collect();
        let max_adapter = adapters.iter().map(|(_, a)| a.bytes()).max().unwrap();
        let batch = *g.choose(&[2usize, 4]);
        assert_engine_matches_solo(
            &model,
            &adapters,
            Some(max_adapter),
            &requests,
            batch,
            "evicting budget",
        );
        // prove the budget actually forced evictions (the streams above
        // survived them because slots hold their own adapter handle)
        let mut engine = BatchedInferenceEngine::new(&model, batch).unwrap();
        for (tenant, adapter) in &adapters {
            engine.register_adapter(tenant, adapter.clone()).unwrap();
        }
        engine.set_adapter_budget_bytes(max_adapter);
        for r in &requests {
            engine.submit(r.clone());
        }
        engine.run_to_completion().unwrap();
        assert!(
            engine.adapter_cache().evictions_lru() > 0,
            "3 tenants under a 1-adapter budget must evict"
        );
        assert!(
            engine.adapter_cache().resident_bytes() <= max_adapter,
            "budget must hold after the run"
        );
    });
}

#[test]
fn re_registering_an_adapter_mid_stream_keeps_streams_bit_identical() {
    let model = tiny_model(34);
    let cfg = model.config();
    let sites = [(0, AdapterTarget::Qkv), (2, AdapterTarget::Fc1)];
    let adapter = TenantAdapter::seeded(cfg, 91, 2, &sites);
    let adapters = vec![("acme".to_string(), adapter.clone())];
    let request = |id: &str, seed: u64| ServeRequest {
        id: id.into(),
        prompt: vec![1, 2, 3],
        max_new_tokens: 6,
        decoding: Decoding::Greedy,
        voting: VotingPolicy::final_only(model.n_layers()),
        seed,
        deadline_steps: None,
        tenant: Some("acme".to_string()),
    };
    let mut engine = BatchedInferenceEngine::new(&model, 2).unwrap();
    engine.register_adapter("acme", adapter.clone()).unwrap();
    engine.submit(request("before", 1));
    // step partway so "before" is mid-stream when the adapter reloads
    for _ in 0..3 {
        engine.step().unwrap();
    }
    engine.register_adapter("acme", adapter.clone()).unwrap();
    engine.submit(request("after", 2));
    let mut outcomes = engine.take_finished();
    outcomes.extend(engine.run_to_completion().unwrap());
    assert_eq!(
        engine.adapter_cache().evictions_replaced(),
        1,
        "re-registration drops the resident copy"
    );
    assert_eq!(
        engine.adapter_cache().misses(),
        2,
        "the post-reload admission resolves the adapter again"
    );
    for req in [request("before", 1), request("after", 2)] {
        let solo = solo_reference(&model, &adapters, &req);
        let batched = outcomes
            .iter()
            .find(|o| o.id == req.id)
            .unwrap_or_else(|| panic!("no outcome for {}", req.id));
        assert_outcome_bit_equal(batched, &solo, "adapter reload");
    }
}

#[test]
fn unknown_tenants_are_rejected_and_batchmates_unaffected() {
    let model = tiny_model(35);
    let adapters = vec![(
        "known".to_string(),
        TenantAdapter::seeded(model.config(), 5, 1, &[(1, AdapterTarget::Proj)]),
    )];
    let mk = |id: &str, tenant: Option<&str>| ServeRequest {
        id: id.into(),
        prompt: vec![4, 5],
        max_new_tokens: 4,
        decoding: Decoding::Greedy,
        voting: VotingPolicy::final_only(model.n_layers()),
        seed: 3,
        deadline_steps: None,
        tenant: tenant.map(str::to_string),
    };
    let mut engine = BatchedInferenceEngine::new(&model, 4).unwrap();
    for (tenant, adapter) in &adapters {
        engine.register_adapter(tenant, adapter.clone()).unwrap();
    }
    for r in [
        mk("ok", Some("known")),
        mk("ghost", Some("nobody")),
        mk("base", None),
    ] {
        engine.submit(r);
    }
    let outcomes = engine.run_to_completion().unwrap();
    let outcome = |id: &str| outcomes.iter().find(|o| o.id == id).unwrap();
    match &outcome("ghost").finish {
        FinishReason::Rejected { reason } => {
            assert!(
                reason.contains("nobody"),
                "reason names the tenant: {reason}"
            );
        }
        other => panic!("unknown tenant served: {other:?}"),
    }
    for req in [mk("ok", Some("known")), mk("base", None)] {
        let solo = solo_reference(&model, &adapters, &req);
        assert_outcome_bit_equal(outcome(&req.id), &solo, "unknown-tenant mix");
    }
    // the rejection never touched the cache
    assert_eq!(engine.adapter_cache().misses(), 1);
}
