//! Differential proof of the fleet's determinism contract, extending the
//! `tests/serving_equivalence.rs` pattern up one level:
//!
//! 1. **1 worker, no faults** — a fleet run is byte-identical to driving
//!    the `BatchedInferenceEngine` directly (tokens, finish, steps, and
//!    the final combined distribution, bit for bit).
//! 2. **N workers, no faults** — every session is bit-identical to its
//!    solo reference regardless of shard placement, for randomized
//!    request mixes drawn from the in-repo property harness.
//! 3. **Injected `WorkerCrash` schedules** — every session's token
//!    stream and finish reason match the crash-free single-worker run.
//!    (A crash can land between a session's last token and its
//!    retirement, in which case the replay's step count and final
//!    distribution describe a zero-token attempt — so the crash oracle
//!    compares tokens + finish, the full-strength bitwise oracle runs on
//!    the fault-free configurations.)

use edge_llm::resilience::{FaultKind, PlannedFault};
use edge_llm_fleet::{
    run_fleet, run_fleet_with_adapters, FleetConfig, FleetRequest, FleetRun, SessionFinish,
};
use edge_llm_model::{
    AdapterTarget, Decoding, EdgeModel, ModelConfig, TenantAdapter, VotingCombiner, VotingPolicy,
};
use edge_llm_serve::{run_solo_with_adapter, BatchedInferenceEngine, ServeRequest};
use edge_llm_tensor::check::{run_cases, Gen};
use edge_llm_tensor::TensorRng;
use std::sync::Arc;

fn tiny_model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

/// Draws one random valid request against `model`'s shape.
fn random_request(g: &mut Gen, model: &EdgeModel, id: usize) -> ServeRequest {
    let cfg = model.config();
    let n_layers = model.n_layers();
    let prompt_len = g.usize_in(1, cfg.seq_len);
    let prompt: Vec<usize> = (0..prompt_len)
        .map(|_| g.usize_in(0, cfg.vocab_size))
        .collect();
    let decoding = match g.usize_in(0, 3) {
        0 => Decoding::Greedy,
        1 => Decoding::Sample {
            temperature: g.f32_in(0.3, 2.0),
        },
        _ => Decoding::TopK {
            k: g.usize_in(1, cfg.vocab_size),
            temperature: g.f32_in(0.3, 2.0),
        },
    };
    let voting = if g.bool() {
        VotingPolicy::final_only(n_layers)
    } else {
        VotingPolicy::all_exits(n_layers, VotingCombiner::Average)
    };
    ServeRequest {
        id: format!("r{id}"),
        prompt,
        max_new_tokens: g.usize_in(0, cfg.seq_len),
        decoding,
        voting,
        seed: g.u64(),
        deadline_steps: if g.bool() {
            Some(g.usize_in(1, 2 * cfg.seq_len))
        } else {
            None
        },
        tenant: None,
    }
}

fn fleet_traffic(g: &mut Gen, model: &EdgeModel, n: usize, span: u64) -> Vec<FleetRequest> {
    (0..n)
        .map(|i| FleetRequest {
            req: random_request(g, model, i),
            priority: g.usize_in(0, 3) as u8,
            submit_tick: g.usize_in(0, span as usize + 1) as u64,
        })
        .collect()
}

/// A config roomy enough that nothing is ever shed — every session must
/// come out served.
fn roomy(workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        batch_per_worker: 4,
        queue_depth: 64,
        max_retries: 8,
        slo_queue_ticks: None,
        faults: Vec::new(),
    }
}

fn assert_bitwise_vs_engine(
    run: &FleetRun,
    model: &EdgeModel,
    traffic: &[FleetRequest],
    ctx: &str,
) {
    let mut engine = BatchedInferenceEngine::new(model, 4).unwrap();
    for fr in traffic {
        engine.submit(fr.req.clone());
    }
    let reference = engine.run_to_completion().unwrap();
    assert_eq!(run.outcomes.len(), reference.len(), "{ctx}: outcome count");
    for solo in &reference {
        let fleet = run
            .outcome(&solo.id)
            .unwrap_or_else(|| panic!("{ctx}: no fleet outcome for {}", solo.id));
        assert_eq!(fleet.tokens, solo.tokens, "{ctx} {}: tokens", solo.id);
        assert_eq!(
            fleet.finish,
            SessionFinish::Served(solo.finish.clone()),
            "{ctx} {}: finish",
            solo.id
        );
        assert_eq!(fleet.steps, solo.steps, "{ctx} {}: steps", solo.id);
        let bits = |p: &Option<Vec<f32>>| {
            p.as_ref()
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
        };
        assert_eq!(
            bits(&fleet.final_probs),
            bits(&solo.final_probs),
            "{ctx} {}: final distribution must be bit-identical",
            solo.id
        );
        assert_eq!(fleet.retries, 0, "{ctx} {}: no replays expected", solo.id);
    }
}

#[test]
fn one_worker_no_faults_is_byte_identical_to_the_engine() {
    let model = tiny_model(21);
    run_cases("fleet_eq_one_worker", 6, |g| {
        let n = g.usize_in(1, 9);
        let traffic = fleet_traffic(g, &model, n, 6);
        let run = run_fleet(&model, &roomy(1), &traffic).unwrap();
        assert_bitwise_vs_engine(&run, &model, &traffic, "1 worker");
    });
}

#[test]
fn n_workers_are_bitwise_placement_independent() {
    let model = tiny_model(22);
    run_cases("fleet_eq_n_workers", 5, |g| {
        let n = g.usize_in(4, 13);
        let traffic = fleet_traffic(g, &model, n, 8);
        for workers in [2usize, 4] {
            let run = run_fleet(&model, &roomy(workers), &traffic).unwrap();
            assert_bitwise_vs_engine(&run, &model, &traffic, &format!("{workers} workers"));
        }
    });
}

#[test]
fn identical_runs_produce_identical_reports() {
    let model = tiny_model(23);
    run_cases("fleet_eq_repeat", 4, |g| {
        let traffic = fleet_traffic(g, &model, 8, 6);
        let cfg = FleetConfig {
            workers: 2,
            batch_per_worker: 2,
            queue_depth: 2,
            max_retries: 1,
            slo_queue_ticks: Some(6),
            faults: vec![PlannedFault {
                at_iteration: 3,
                kind: FaultKind::WorkerCrash { worker: 0 },
            }],
        };
        let a = run_fleet(&model, &cfg, &traffic).unwrap();
        let b = run_fleet(&model, &cfg, &traffic).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "outcome streams diverged");
        // decode_token is real wall-clock latency — the only report
        // field allowed to differ between identical runs
        let scrub = |run: &FleetRun| {
            let mut r = run.report.clone();
            r.decode_token = Default::default();
            r
        };
        assert_eq!(scrub(&a), scrub(&b), "reports diverged");
    });
}

#[test]
fn crashed_workers_replay_token_identically() {
    let model = tiny_model(24);
    run_cases("fleet_eq_crash", 5, |g| {
        let n = g.usize_in(4, 11);
        let traffic = fleet_traffic(g, &model, n, 5);
        let baseline = run_fleet(&model, &roomy(1), &traffic).unwrap();
        for workers in [2usize, 4] {
            let mut cfg = roomy(workers);
            // a crash landing anywhere in the run, on any worker
            cfg.faults = vec![
                PlannedFault {
                    at_iteration: g.usize_in(1, 12) as u64,
                    kind: FaultKind::WorkerCrash {
                        worker: g.usize_in(0, workers),
                    },
                },
                PlannedFault {
                    at_iteration: g.usize_in(1, 20) as u64,
                    kind: FaultKind::WorkerCrash {
                        worker: g.usize_in(0, workers),
                    },
                },
            ];
            let run = run_fleet(&model, &cfg, &traffic).unwrap();
            assert_eq!(run.outcomes.len(), baseline.outcomes.len());
            for base in &baseline.outcomes {
                let crashed = run.outcome(&base.id).unwrap();
                assert_eq!(
                    crashed.tokens, base.tokens,
                    "{}: tokens changed under crash ({} retries)",
                    base.id, crashed.retries
                );
                assert_eq!(crashed.finish, base.finish, "{}: finish", base.id);
            }
        }
    });
}

#[test]
fn crashed_workers_replay_tenant_sessions_with_adapters_resident() {
    let model = tiny_model(26);
    // three tenants, each a distinct low-rank adapter over the shared base
    let adapters: Vec<(String, TenantAdapter)> = (0..3)
        .map(|t| {
            let sites = [(0, AdapterTarget::Qkv), (1, AdapterTarget::Fc2)];
            (
                format!("tenant-{t}"),
                TenantAdapter::seeded(model.config(), 100 + t as u64, 1, &sites),
            )
        })
        .collect();
    run_cases("fleet_eq_tenant_crash", 4, |g| {
        let n = g.usize_in(4, 11);
        let mut traffic = fleet_traffic(g, &model, n, 5);
        for (i, fr) in traffic.iter_mut().enumerate() {
            if g.bool() {
                fr.req.tenant = Some(format!("tenant-{}", i % 3));
            }
        }
        // crash-free single-worker baseline, itself proven against the
        // solo-with-adapter oracle so the whole chain is anchored
        let baseline = run_fleet_with_adapters(&model, &roomy(1), &adapters, &traffic).unwrap();
        for fr in &traffic {
            let adapter = fr.req.tenant.as_deref().map(|t| {
                let (_, a) = adapters.iter().find(|(name, _)| name == t).unwrap();
                Arc::new(a.resolve(&model).unwrap())
            });
            let solo = run_solo_with_adapter(&model, &fr.req, adapter).unwrap();
            let fleet = baseline.outcome(&solo.id).unwrap();
            assert_eq!(fleet.tokens, solo.tokens, "{}: baseline tokens", solo.id);
            assert_eq!(
                fleet.finish,
                SessionFinish::Served(solo.finish.clone()),
                "{}: baseline finish",
                solo.id
            );
        }
        // a crashed worker rebuilds with every adapter re-registered, so
        // failover re-places tenant sessions and resumes them exactly
        for workers in [2usize, 4] {
            let mut cfg = roomy(workers);
            cfg.faults = vec![
                PlannedFault {
                    at_iteration: g.usize_in(1, 12) as u64,
                    kind: FaultKind::WorkerCrash {
                        worker: g.usize_in(0, workers),
                    },
                },
                PlannedFault {
                    at_iteration: g.usize_in(1, 20) as u64,
                    kind: FaultKind::WorkerCrash {
                        worker: g.usize_in(0, workers),
                    },
                },
            ];
            let run = run_fleet_with_adapters(&model, &cfg, &adapters, &traffic).unwrap();
            assert_eq!(run.outcomes.len(), baseline.outcomes.len());
            for base in &baseline.outcomes {
                let crashed = run.outcome(&base.id).unwrap();
                assert_eq!(
                    crashed.tokens, base.tokens,
                    "{}: tenant tokens changed under crash ({} retries)",
                    base.id, crashed.retries
                );
                assert_eq!(crashed.finish, base.finish, "{}: finish", base.id);
            }
        }
    });
}

#[test]
fn stalls_delay_but_never_change_outputs() {
    let model = tiny_model(25);
    run_cases("fleet_eq_stall", 4, |g| {
        let traffic = fleet_traffic(g, &model, 6, 4);
        let baseline = run_fleet(&model, &roomy(2), &traffic).unwrap();
        let mut cfg = roomy(2);
        cfg.faults = vec![PlannedFault {
            at_iteration: g.usize_in(0, 6) as u64,
            kind: FaultKind::WorkerStall {
                worker: g.usize_in(0, 2),
                ticks: g.usize_in(1, 5),
            },
        }];
        let run = run_fleet(&model, &cfg, &traffic).unwrap();
        for base in &baseline.outcomes {
            let stalled = run.outcome(&base.id).unwrap();
            assert_eq!(stalled.tokens, base.tokens, "{}: tokens", base.id);
            assert_eq!(stalled.finish, base.finish, "{}: finish", base.id);
        }
        assert!(
            run.report.ticks >= baseline.report.ticks,
            "a stall cannot make the run finish earlier"
        );
    });
}
