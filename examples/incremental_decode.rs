//! KV-cached incremental decoding vs full-forward decoding.
//!
//! Verifies equivalence on a live model and times both paths — the
//! serving-side counterpart of the training-side speedups in the paper.
//!
//! ```text
//! cargo run --release --example incremental_decode
//! ```

use edge_llm::report::{f3, speedup};
use edge_llm_model::{EdgeModel, InferenceSession, ModelConfig, ModelError};
use edge_llm_tensor::TensorRng;
use std::time::Instant;

fn main() -> Result<(), ModelError> {
    let cfg = ModelConfig::tiny()
        .with_layers(6)
        .with_d_model(64, 4)
        .with_seq_len(48);
    let mut rng = TensorRng::seed_from(17);
    let model = EdgeModel::new(cfg.clone(), &mut rng)?;
    let tokens: Vec<usize> = (0..cfg.seq_len)
        .map(|_| rng.index(cfg.vocab_size))
        .collect();

    // equivalence: per-position logits must match the batched forward
    let full = model.logits(&tokens, 1)?;
    let mut session = InferenceSession::new(&model);
    let mut worst = 0.0f32;
    for (t, &tok) in tokens.iter().enumerate() {
        let row = session.push_token(tok)?;
        for v in 0..cfg.vocab_size {
            worst = worst.max((full.get(t, v) - row.get(0, v)).abs());
        }
    }
    println!(
        "max |batched - incremental| over {} positions: {worst:e}",
        cfg.seq_len
    );
    assert!(
        worst < 1e-4,
        "incremental decoding must match the batched forward"
    );

    // timing: decode seq_len tokens each way
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut s = InferenceSession::new(&model);
        for &tok in &tokens {
            s.push_token(tok)?;
        }
    }
    let kv_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let t0 = Instant::now();
    for _ in 0..reps {
        for _ in 0..cfg.seq_len {
            model.logits(&tokens, 1)?;
        }
    }
    let full_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    println!(
        "decode {} tokens, kv-cached : {} ms",
        cfg.seq_len,
        f3(kv_ms)
    );
    println!(
        "decode {} tokens, full fwd  : {} ms",
        cfg.seq_len,
        f3(full_ms)
    );
    println!("kv-cache speedup            : {}", speedup(full_ms / kv_ms));
    println!(
        "kv-cache memory             : {} bytes across {} layers",
        InferenceSession::new(&model).cache_bytes(),
        model.n_layers()
    );
    Ok(())
}
