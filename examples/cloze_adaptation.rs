//! On-device adaptation scenario: privately memorizing a user's knowledge
//! base.
//!
//! This drives the three Edge-LLM mechanisms explicitly (instead of through
//! the one-call pipeline): profile the model's layer sensitivities, search
//! a compression policy, adapt with windowed tuning, and compare exit
//! voting strategies on the adapted model.
//!
//! ```text
//! cargo run --release --example cloze_adaptation
//! ```

use edge_llm::compress::apply_policy;
use edge_llm::eval::evaluate;
use edge_llm::oracle::ModelOracle;
use edge_llm::report::{f3, pct, Table};
use edge_llm::EdgeLlmError;
use edge_llm_data::{ClozeQaTask, TaskGenerator};
use edge_llm_luc::{profile, search_policy, SearchAlgorithm};
use edge_llm_model::{
    AdaptiveTuner, EdgeModel, ModelConfig, Sgd, VotingCombiner, VotingPolicy, WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;

fn main() -> Result<(), EdgeLlmError> {
    let mut rng = TensorRng::seed_from(11);
    let task = ClozeQaTask::new(16, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_seq_len(16)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng)?;
    let mut train = task.dataset(32, cfg.seq_len, &mut rng);
    let eval_set = task.dataset(16, cfg.seq_len, &mut rng);
    train.shuffle(&mut rng);

    // --- 1. LUC: profile layer sensitivity and search a policy ----------
    let calib = train.batch_at(0, 4);
    let mut oracle = ModelOracle::new(&model, &calib.tokens, &calib.targets, 4);
    let prof = profile(
        &mut oracle,
        &[BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16],
        &[0.0, 0.25, 0.5],
    )?;
    println!("layer sensitivity scores (higher = more fragile):");
    for (l, s) in prof.layer_scores().iter().enumerate() {
        println!("  layer {l}: {}", f3(*s as f64));
    }
    let outcome = search_policy(&prof, 0.3, SearchAlgorithm::DynamicProgramming)?;
    println!("\nsearched policy (budget 0.30): {}", outcome.policy);
    println!(
        "predicted loss increase: {}\n",
        f3(outcome.predicted_delta as f64)
    );
    apply_policy(&mut model, &outcome.policy)?;

    // --- 2. adaptive layer tuning ---------------------------------------
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 2 });
    let mut opt = Sgd::new(0.08);
    for it in 0..120 {
        let b = train.batch_at(it * 4, 4);
        let report = tuner.step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)?;
        if it % 30 == 0 {
            println!(
                "iter {it:>3}: window {:?}  loss {}",
                (report.window.start, report.window.end),
                f3(report.loss as f64)
            );
        }
    }

    // --- 3. adaptive layer voting ---------------------------------------
    let mut table = Table::new("exit voting comparison", &["policy", "accuracy", "ppl"]);
    let combiners: [(&str, VotingPolicy); 4] = [
        (
            "final exit only",
            VotingPolicy::final_only(model.n_layers()),
        ),
        (
            "average vote",
            VotingPolicy::all_exits(model.n_layers(), VotingCombiner::Average),
        ),
        (
            "confidence vote",
            VotingPolicy::all_exits(
                model.n_layers(),
                VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            ),
        ),
        (
            "deep exits vote",
            VotingPolicy {
                exits: vec![model.n_layers() - 2, model.n_layers() - 1],
                combiner: VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            },
        ),
    ];
    for (name, policy) in combiners {
        let r = evaluate(&model, &policy, &eval_set, 4)?;
        table.add_row(vec![
            name.to_string(),
            pct(r.accuracy as f64),
            f3(r.perplexity as f64),
        ]);
    }
    println!("\n{table}");
    Ok(())
}
