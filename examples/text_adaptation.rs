//! Personal-text adaptation: tune a compressed model on a user's own text,
//! generate continuations through exit voting, and checkpoint the adapted
//! model — the full on-device lifecycle.
//!
//! ```text
//! cargo run --release --example text_adaptation
//! ```

use edge_llm::compress::apply_policy;
use edge_llm::report::f3;
use edge_llm_data::{perplexity, TaskGenerator, TextLmTask};
use edge_llm_luc::CompressionPolicy;
use edge_llm_model::{
    generate, load_model, save_model, AdaptiveTuner, Decoding, EdgeModel, ModelConfig, Sgd,
    VotingCombiner, VotingPolicy, WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;

const NOTES: &str = "monday: water the plants. tuesday: water the plants again. \
wednesday: the plants are fine, check the sensors. thursday: sensor three reads low, \
recalibrate sensor three. friday: all sensors nominal, water the plants. \
saturday: prune the tomatoes, water the plants. sunday: rest, the plants can wait. ";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = TextLmTask::new(NOTES)?;
    let tok = task.tokenizer();
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_d_model(32, 4)
        .with_seq_len(32)
        .with_vocab(task.vocab_size());
    let mut rng = TensorRng::seed_from(3);
    let mut model = EdgeModel::new(cfg.clone(), &mut rng)?;

    // compress for on-device execution, then adapt on the notes
    apply_policy(
        &mut model,
        &CompressionPolicy::uniform(4, BitWidth::W8, 0.25),
    )?;
    let train = task.dataset(32, cfg.seq_len, &mut rng);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 2 });
    let mut opt = Sgd::new(0.15);
    for it in 0..400 {
        let b = train.batch_at(it * 4, 4);
        let rep = tuner.step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)?;
        if it % 100 == 0 {
            println!("iter {it:>3}: loss {}", f3(rep.loss as f64));
        }
    }

    // held-out perplexity on fresh windows of the notes
    let eval = task.dataset(8, cfg.seq_len, &mut rng);
    let b = eval.batch_at(0, 8);
    let logits = model.logits(&b.tokens, 8)?;
    println!(
        "\nperplexity on held-out windows: {}",
        f3(perplexity(&logits, &b.targets) as f64)
    );

    // generate a continuation via exit voting
    let voting = VotingPolicy::all_exits(
        model.n_layers(),
        VotingCombiner::ConfidenceWeighted { temperature: 0.5 },
    );
    let prompt = tok.encode("monday: water");
    let out = generate(
        &model,
        &voting,
        &prompt,
        40,
        Decoding::TopK {
            k: 3,
            temperature: 0.8,
        },
        &mut rng,
    )?;
    println!("continuation: {:?}", tok.decode(&out));

    // checkpoint round-trip; compression hooks are runtime configuration,
    // so the policy is re-applied after loading
    let mut bytes = Vec::new();
    save_model(&model, &mut bytes)?;
    let mut restored = load_model(&mut bytes.as_slice())?;
    apply_policy(
        &mut restored,
        &CompressionPolicy::uniform(4, BitWidth::W8, 0.25),
    )?;
    let same = restored.logits(&b.tokens, 8)?;
    assert!(
        logits.approx_eq(&same, 1e-6),
        "checkpoint must restore the exact model"
    );
    println!("checkpoint: {} bytes, restored bit-exact", bytes.len());
    Ok(())
}
