//! Quickstart: run the full Edge-LLM pipeline against the vanilla-tuning
//! baseline on a small cloze-QA adaptation task and print a comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edge_llm::pipeline::{run_method, ExperimentConfig, Method, TaskKind};
use edge_llm::report::{bytes, f3, pct, speedup, Table};
use edge_llm::EdgeLlmError;
use edge_llm_model::ModelConfig;

fn main() -> Result<(), EdgeLlmError> {
    // A 4-layer model small enough to adapt in seconds on a laptop CPU.
    let config = ExperimentConfig {
        model: ModelConfig::tiny().with_layers(4).with_seq_len(16),
        task: TaskKind::ClozeQa {
            subjects: 12,
            relations: 2,
        },
        seed: 1,
        train_samples: 24,
        eval_samples: 12,
        batch: 4,
        iterations: 60,
        lr: 0.08,
        budget: 0.25,
        window_depth: 2,
        ..ExperimentConfig::smoke_test()
    };

    println!(
        "adapting a {}-layer model on {:?}...\n",
        config.model.n_layers, config.task
    );

    let vanilla = run_method(Method::Vanilla, &config)?;
    let edge = run_method(Method::EdgeLlm, &config)?;

    let mut table = Table::new(
        "quickstart: vanilla tuning vs Edge-LLM",
        &[
            "method",
            "accuracy",
            "ppl",
            "iter ms",
            "peak act",
            "modeled us",
            "cost",
        ],
    );
    for out in [&vanilla, &edge] {
        table.add_row(vec![
            out.method.clone(),
            pct(out.accuracy as f64),
            f3(out.perplexity as f64),
            f3(out.mean_iter_ms),
            bytes(out.peak_activation_bytes),
            f3(out.modeled_iter_us),
            f3(out.policy_cost as f64),
        ]);
    }
    println!("{table}");
    println!(
        "modeled per-iteration speedup on the edge device: {}",
        speedup(vanilla.modeled_iter_us / edge.modeled_iter_us)
    );
    println!(
        "measured activation-memory saving: {}",
        speedup(vanilla.peak_activation_bytes as f64 / edge.peak_activation_bytes as f64)
    );
    Ok(())
}
