//! Hardware scheduling search for a mixed-precision compressed workload.
//!
//! Takes an 8-layer model whose layers carry different LUC assignments and
//! shows, per layer, the latency and utilization of the naive schedule vs
//! the searched one on a Jetson-class device model — the paper's third
//! component in isolation.
//!
//! ```text
//! cargo run --release --example schedule_search
//! ```

use edge_llm::report::{f3, pct, speedup, Table};
use edge_llm::schedule::{model_workloads, naive_latency_us, schedule_workloads, total_latency_us};
use edge_llm::EdgeLlmError;
use edge_llm_hw::{DeviceModel, ScheduleSpace, SearchStrategy};
use edge_llm_luc::{CompressionPolicy, LayerPolicy};
use edge_llm_model::ModelConfig;
use edge_llm_quant::BitWidth;

fn main() -> Result<(), EdgeLlmError> {
    let cfg = ModelConfig::edge_base();
    // A deliberately irregular policy: early layers compressed hard, late
    // layers kept gentle — the shape LUC typically produces.
    let policy = CompressionPolicy::from_layers(vec![
        LayerPolicy {
            bits: BitWidth::W2,
            prune_ratio: 0.75,
        },
        LayerPolicy {
            bits: BitWidth::W2,
            prune_ratio: 0.5,
        },
        LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: 0.5,
        },
        LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: 0.25,
        },
        LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: 0.25,
        },
        LayerPolicy {
            bits: BitWidth::W8,
            prune_ratio: 0.25,
        },
        LayerPolicy {
            bits: BitWidth::W8,
            prune_ratio: 0.0,
        },
        LayerPolicy {
            bits: BitWidth::W16,
            prune_ratio: 0.0,
        },
    ]);
    let device = DeviceModel::jetson_class();
    let space = ScheduleSpace::default();

    let workloads = model_workloads(&cfg, &policy, 1)?;
    let scheduled = schedule_workloads(&workloads, &device, &space, SearchStrategy::Exhaustive)?;

    let mut table = Table::new(
        format!("per-GEMM schedules on {}", device.name),
        &["gemm", "bits", "sparsity", "schedule", "latency us", "util"],
    );
    for s in scheduled.iter().take(12) {
        table.add_row(vec![
            s.gemm.name.clone(),
            format!("{}", s.gemm.bits),
            pct(s.gemm.sparsity as f64),
            s.schedule.to_string(),
            f3(s.cost.latency_us),
            pct(s.cost.utilization),
        ]);
    }
    println!("{table}");
    println!(
        "(first two layers shown; {} GEMMs scheduled in total)\n",
        scheduled.len()
    );

    let searched = total_latency_us(&scheduled);
    let naive = naive_latency_us(&workloads, &device)?;
    println!("whole-model forward latency (modeled):");
    println!("  naive schedule   : {} us", f3(naive));
    println!("  searched schedule: {} us", f3(searched));
    println!("  speedup          : {}", speedup(naive / searched));

    // annealing on an enlarged space for comparison
    let big_space = ScheduleSpace {
        tile_options: vec![4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256],
        ..ScheduleSpace::default()
    };
    let annealed = schedule_workloads(
        &workloads,
        &device,
        &big_space,
        SearchStrategy::Annealing {
            iters: 400,
            seed: 9,
        },
    )?;
    println!(
        "\nannealing over a {}-point space: {} us (exhaustive default-space: {} us)",
        big_space.len(),
        f3(total_latency_us(&annealed)),
        f3(searched),
    );
    Ok(())
}
