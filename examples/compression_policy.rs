//! Compression-policy exploration: sweep LUC budgets, compare search
//! algorithms, and print the accuracy/cost Pareto frontier.
//!
//! ```text
//! cargo run --release --example compression_policy
//! ```

use edge_llm::compress::apply_policy;
use edge_llm::eval::evaluate;
use edge_llm::oracle::ModelOracle;
use edge_llm::report::{f3, pct, Table};
use edge_llm::EdgeLlmError;
use edge_llm_data::{ClozeQaTask, TaskGenerator};
use edge_llm_luc::{pareto_frontier, profile, search_policy, PolicyPoint, SearchAlgorithm};
use edge_llm_model::{AdaptiveTuner, EdgeModel, ModelConfig, Sgd, VotingPolicy, WindowSchedule};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;

fn main() -> Result<(), EdgeLlmError> {
    let mut rng = TensorRng::seed_from(21);
    let task = ClozeQaTask::new(12, 2);
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_seq_len(16)
        .with_vocab(task.vocab_size());
    let mut model = EdgeModel::new(cfg.clone(), &mut rng)?;
    let mut train = task.dataset(24, cfg.seq_len, &mut rng);
    train.shuffle(&mut rng);
    let calib = train.batch_at(0, 4);
    let eval_set = task.dataset(16, cfg.seq_len, &mut rng);

    // Sensitivity is only meaningful on a model that has something to
    // lose: adapt briefly before profiling.
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    let mut opt = Sgd::new(0.08);
    for it in 0..120 {
        let b = train.batch_at(it * 4, 4);
        tuner.step(&mut model, &mut opt, &b.tokens, &b.targets, b.batch)?;
    }

    let mut oracle = ModelOracle::new(&model, &calib.tokens, &calib.targets, 4);
    let prof = profile(
        &mut oracle,
        &[BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16],
        &[0.0, 0.25, 0.5, 0.75],
    )?;
    println!(
        "sensitivity profiling used {} model probes\n",
        oracle.probes()
    );

    // --- search-algorithm comparison at one budget -----------------------
    let mut algo_table = Table::new(
        "search algorithms at budget 0.25",
        &["algorithm", "pred. delta", "evals"],
    );
    for (name, algo) in [
        ("greedy", SearchAlgorithm::Greedy),
        ("dp", SearchAlgorithm::DynamicProgramming),
        ("exhaustive", SearchAlgorithm::Exhaustive),
    ] {
        let out = search_policy(&prof, 0.25, algo)?;
        algo_table.add_row(vec![
            name.to_string(),
            f3(out.predicted_delta as f64),
            out.evaluations.to_string(),
        ]);
    }
    println!("{algo_table}");

    // --- budget sweep and Pareto frontier --------------------------------
    let mut points = Vec::new();
    let mut sweep = Table::new(
        "budget sweep (DP search, adapted model)",
        &["budget", "policy", "mean bits", "accuracy"],
    );
    for budget in [0.1f32, 0.15, 0.2, 0.3, 0.5, 0.8] {
        let out = search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming)?;
        let mut m = model.clone();
        apply_policy(&mut m, &out.policy)?;
        let r = evaluate(&m, &VotingPolicy::final_only(m.n_layers()), &eval_set, 4)?;
        sweep.add_row(vec![
            f3(budget as f64),
            out.policy.to_string(),
            f3(out.policy.mean_bits() as f64),
            pct(r.accuracy as f64),
        ]);
        points.push(PolicyPoint {
            cost: out.policy.mean_cost(),
            loss: 1.0 - r.accuracy,
            policy: out.policy,
        });
    }
    println!("{sweep}");

    let frontier = pareto_frontier(&points);
    println!(
        "pareto frontier ({} of {} points):",
        frontier.len(),
        points.len()
    );
    for p in frontier {
        println!("  cost {}  error {}", f3(p.cost as f64), f3(p.loss as f64));
    }
    Ok(())
}
