//! The engine worker thread: one [`BatchedInferenceEngine`] driven in
//! lock-step by router commands over an mpsc channel.
//!
//! The worker owns no scheduling policy at all — it submits what it is
//! told, steps when it is told, and reports exactly what happened. Every
//! control-plane decision (placement, shedding, crash replay) lives in
//! the router, which is what makes an N-worker fleet deterministic: the
//! threads only ever run between two barriers of a single tick.

use edge_llm_model::{EdgeModel, TenantAdapter};
use edge_llm_serve::{
    BatchedInferenceEngine, ServeError, ServeOutcome, ServeRequest, SessionProgress,
};
use edge_llm_tensor::pool::serial_scope;
use edge_llm_tensor::TensorRng;
use std::sync::mpsc::{Receiver, Sender};

/// A router command for one worker. Channel order is delivery order, so
/// the router's deterministic emission order fixes the worker's
/// execution order.
pub(crate) enum Cmd {
    /// Admit a session, optionally resuming a mid-flight sampling rng
    /// (crash replay).
    Submit(Box<ServeRequest>, Option<TensorRng>),
    /// Advance the engine by one batched forward pass and reply with a
    /// [`StepReply`].
    Step,
    /// Simulated crash + supervisor restart: drop the engine (and every
    /// in-flight session) and stand up a fresh one.
    Reset,
    /// Exit the worker loop.
    Shutdown,
}

/// Everything one `Step` produced, shipped back to the router.
pub(crate) struct StepReply {
    /// Sessions retired during this step, in retirement order.
    pub finished: Vec<ServeOutcome>,
    /// Per-token progress records (token + rng snapshot) for the
    /// router's replay log.
    pub progress: Vec<SessionProgress>,
    /// Decode-latency samples (ns) added during this step.
    pub decode_ns: Vec<u64>,
}

/// Builds a worker engine with every fleet tenant's adapter registered.
/// `Reset` rebuilds through here too, so a supervisor restart comes back
/// with the same adapter registry — a crashed worker can replay a
/// tenant session without the router re-shipping the adapter.
fn fresh_engine<'m>(
    model: &'m EdgeModel,
    batch: usize,
    adapters: &[(String, TenantAdapter)],
) -> Result<BatchedInferenceEngine<'m>, ServeError> {
    let mut engine = BatchedInferenceEngine::new(model, batch)?;
    engine.set_progress_capture(true);
    for (tenant, adapter) in adapters {
        engine.register_adapter(tenant, adapter.clone())?;
    }
    Ok(engine)
}

/// The worker thread body. Runs until `Shutdown`, the command channel
/// closes, or engine (re)construction fails — failures are shipped as an
/// `Err` reply so the router surfaces them instead of hanging.
pub(crate) fn worker_loop(
    model: &EdgeModel,
    batch: usize,
    adapters: &[(String, TenantAdapter)],
    rx: Receiver<Cmd>,
    tx: Sender<Result<StepReply, ServeError>>,
) {
    let mut engine = match fresh_engine(model, batch, adapters) {
        Ok(e) => e,
        Err(e) => {
            let _ = tx.send(Err(e));
            return;
        }
    };
    // Sample index already shipped to the router; each reply sends only
    // the suffix the engine accumulated since.
    let mut decode_taken = 0usize;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Submit(req, rng) => match rng {
                Some(rng) => engine.submit_with_rng(*req, rng),
                None => engine.submit(*req),
            },
            Cmd::Reset => {
                engine = match fresh_engine(model, batch, adapters) {
                    Ok(e) => e,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                decode_taken = 0;
            }
            Cmd::Step => {
                // Kernel-level threading is pinned to one thread inside a
                // worker: the fleet's parallelism is worker-granular, and
                // this keeps N workers from oversubscribing the machine
                // through the shared kernel pool.
                let stepped = serial_scope(|| engine.step());
                let reply = match stepped {
                    Ok(_) => {
                        let samples = engine.decode_token_samples();
                        let decode_ns = samples[decode_taken..].to_vec();
                        decode_taken = samples.len();
                        Ok(StepReply {
                            finished: engine.take_finished(),
                            progress: engine.take_progress(),
                            decode_ns,
                        })
                    }
                    Err(e) => Err(ServeError::Model(e)),
                };
                if tx.send(reply).is_err() {
                    return;
                }
            }
            Cmd::Shutdown => return,
        }
    }
}
