//! The fleet router: shards sessions across N engine workers with
//! SLO-aware admission, bounded queues, overload shedding, and
//! crash-replay failover.
//!
//! # Determinism
//!
//! The router runs the fleet in **lock-step ticks**. Within a tick it
//! (1) fires scheduled faults, (2) admits arrivals, (3) expires queued
//! sessions past their SLO, (4) dispatches queued sessions into free
//! batch slots, and (5) steps every live worker once, consuming the
//! replies in worker-index order. All control-plane state (queues,
//! placement, retry counts) lives on the router thread and every
//! decision is a pure function of that state, so two runs with the same
//! inputs make identical decisions even though the workers are real
//! threads. Token streams are placement-independent on top of that: the
//! engine guarantees each session's output is bit-identical to running
//! it alone, so *which* worker serves a session never changes its
//! tokens.
//!
//! # Crash replay
//!
//! Workers record a [`SessionProgress`] (token + post-draw rng snapshot)
//! for every accepted token. When a `WorkerCrash` fault kills a worker,
//! the router rebuilds each lost session as a fresh request whose prompt
//! is the original prompt extended by the accepted tokens, with the
//! token budget reduced accordingly and the sampling rng resumed from
//! the last snapshot. After `k` generated tokens the original session
//! had consumed `prompt + k - 1` positions; a replay prefill over the
//! extended prompt consumes exactly the same count before its first new
//! token, so deadline budgets (measured in fed tokens) and KV capacity
//! line up and the remaining tokens reproduce bit-identically.

use crate::worker::{worker_loop, Cmd, StepReply};
use edge_llm::resilience::{FaultKind, FaultPlan, PlannedFault};
use edge_llm_model::{EdgeModel, TenantAdapter};
use edge_llm_serve::{
    FinishReason, LatencySummary, ServeError, ServeOutcome, ServeRequest, ShedCause,
};
use edge_llm_telemetry as telemetry;
use edge_llm_tensor::TensorRng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc;

/// Fleet shape and policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Engine workers (threads). Must be at least 1.
    pub workers: usize,
    /// Batch slots per worker engine. Must be at least 1.
    pub batch_per_worker: usize,
    /// Bound on each worker's router-side queue. Must be at least 1.
    pub queue_depth: usize,
    /// Crash replays allowed per session before it is shed with
    /// [`ShedCause::RetriesExhausted`].
    pub max_retries: usize,
    /// When set, a session still queued after waiting this many ticks is
    /// shed with [`ShedCause::SloExpired`].
    pub slo_queue_ticks: Option<u64>,
    /// Deterministic fault schedule (`at_iteration` is the fleet tick).
    /// Only the serving-side kinds (`WorkerCrash`, `WorkerStall`) act;
    /// tuner-side kinds are ignored.
    pub faults: Vec<PlannedFault>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            batch_per_worker: 4,
            queue_depth: 16,
            max_retries: 2,
            slo_queue_ticks: None,
            faults: Vec::new(),
        }
    }
}

/// One session offered to the fleet: a serving request plus the fleet's
/// admission metadata. Ids must be unique across a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequest {
    /// The underlying generation request.
    pub req: ServeRequest,
    /// Admission priority — higher values displace lower ones under
    /// overload. Ties always favor the earlier arrival.
    pub priority: u8,
    /// Tick at which the session arrives at the router.
    pub submit_tick: u64,
}

/// How a session ultimately left the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionFinish {
    /// Served to completion by a worker engine (possibly after replays).
    Served(FinishReason),
    /// Dropped by the router without finishing.
    Shed(ShedCause),
}

/// Per-session fleet result.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The request's identifier.
    pub id: String,
    /// Every token the session accepted, across all replays.
    pub tokens: Vec<usize>,
    /// How the session ended.
    pub finish: SessionFinish,
    /// Fed-token count reported by the final serving attempt (for a
    /// replayed session this covers only the last attempt).
    pub steps: usize,
    /// Final combined distribution from the last serving attempt, when
    /// one generated tokens.
    pub final_probs: Option<Vec<f32>>,
    /// Crash replays this session survived.
    pub retries: usize,
    /// Ticks between arrival and first dispatch (None if never
    /// dispatched).
    pub queue_wait_ticks: Option<u64>,
}

/// Fleet-level telemetry for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Sessions served by an engine (any [`FinishReason`]).
    pub served: usize,
    /// Sessions dropped by the router, tallied per cause.
    pub shed: BTreeMap<ShedCause, usize>,
    /// Crash replays dispatched.
    pub replays: usize,
    /// Tokens generated across all workers (replayed work counted once —
    /// accepted tokens survive a crash).
    pub tokens_generated: u64,
    /// Queue wait from arrival to first dispatch, in ticks (the summary
    /// type is unit-agnostic despite its nanosecond field names).
    pub queue_wait_ticks: LatencySummary,
    /// Per-token decode latency across all workers, nanoseconds.
    pub decode_token: LatencySummary,
}

impl FleetReport {
    /// Sessions shed for `cause`.
    pub fn shed_count(&self, cause: ShedCause) -> usize {
        self.shed.get(&cause).copied().unwrap_or(0)
    }

    /// Total sessions shed by the router.
    pub fn total_shed(&self) -> usize {
        self.shed.values().sum()
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} ticks, {} served, {} shed, {} replays, {} tokens",
            self.ticks,
            self.served,
            self.total_shed(),
            self.replays,
            self.tokens_generated
        )?;
        for (cause, n) in &self.shed {
            writeln!(f, "  shed[{}] = {n}", cause.label())?;
        }
        writeln!(
            f,
            "  queue wait (ticks): n={} p50={} p95={} p99={} max={}",
            self.queue_wait_ticks.count,
            self.queue_wait_ticks.p50_ns,
            self.queue_wait_ticks.p95_ns,
            self.queue_wait_ticks.p99_ns,
            self.queue_wait_ticks.max_ns
        )?;
        write!(f, "  decode/token: {}", self.decode_token)
    }
}

/// Everything a fleet run produced: per-session outcomes (in completion
/// order) plus the aggregate report.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Session outcomes in the order they completed or were shed.
    pub outcomes: Vec<SessionOutcome>,
    /// Aggregate fleet telemetry.
    pub report: FleetReport,
}

impl FleetRun {
    /// Looks up a session's outcome by id.
    pub fn outcome(&self, id: &str) -> Option<&SessionOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// The outcome for `id` if it was actually served, or the typed shed
    /// error if the router dropped it.
    ///
    /// # Errors
    ///
    /// [`ServeError::RetriesExhausted`] when the session ran out of
    /// crash replays, and [`ServeError::Shed`] for any other shed cause
    /// (an unknown id reports as shed with [`ShedCause::Rejected`]).
    pub fn require_served(&self, id: &str) -> Result<&SessionOutcome, ServeError> {
        let Some(outcome) = self.outcome(id) else {
            return Err(ServeError::Shed {
                id: id.to_string(),
                cause: ShedCause::Rejected,
            });
        };
        match &outcome.finish {
            SessionFinish::Served(_) => Ok(outcome),
            SessionFinish::Shed(ShedCause::RetriesExhausted) => Err(ServeError::RetriesExhausted {
                id: outcome.id.clone(),
                retries: outcome.retries,
            }),
            SessionFinish::Shed(cause) => Err(ServeError::Shed {
                id: outcome.id.clone(),
                cause: *cause,
            }),
        }
    }
}

/// Router-side state for one session.
struct Session {
    req: ServeRequest,
    priority: u8,
    arrival_seq: u64,
    submit_tick: u64,
    /// Tick of the most recent enqueue (arrival or replay requeue) —
    /// what the SLO clock measures against.
    enqueued_tick: u64,
    /// Tokens accepted so far across all attempts, from progress events.
    accepted: Vec<usize>,
    /// Sampling rng after the last accepted token's draw.
    rng: Option<TensorRng>,
    retries: usize,
    queue_wait_ticks: Option<u64>,
}

struct Router<'m> {
    cfg: &'m FleetConfig,
    sessions: Vec<Session>,
    by_id: HashMap<String, usize>,
    /// Router-side bounded queue per worker (session indices).
    queues: Vec<VecDeque<usize>>,
    /// Sessions dispatched to each worker and not yet retired.
    in_flight: Vec<Vec<usize>>,
    /// Tick before which each worker is stalled (skips its step).
    stalled_until: Vec<u64>,
    tick: u64,
    outcomes: Vec<SessionOutcome>,
    shed: BTreeMap<ShedCause, usize>,
    served: usize,
    replays: usize,
    tokens_generated: u64,
    queue_wait_samples: Vec<u64>,
    decode_ns: Vec<u64>,
}

impl Router<'_> {
    fn shed_session(&mut self, sid: usize, cause: ShedCause) {
        telemetry::counter(cause.counter_name(), 1);
        *self.shed.entry(cause).or_insert(0) += 1;
        let s = &self.sessions[sid];
        self.outcomes.push(SessionOutcome {
            id: s.req.id.clone(),
            tokens: s.accepted.clone(),
            finish: SessionFinish::Shed(cause),
            steps: 0,
            final_probs: None,
            retries: s.retries,
            queue_wait_ticks: s.queue_wait_ticks,
        });
    }

    /// Routes `sid` to the least-loaded worker with queue space (ties to
    /// the lowest index). When every queue is full, the lowest-priority
    /// youngest queued session fleet-wide is displaced if it is strictly
    /// lower priority than `sid`; otherwise `sid` itself is shed. A
    /// priority tie therefore always sheds the arrival — deterministic
    /// and arrival-order-independent.
    fn place(&mut self, sid: usize) {
        let best = (0..self.queues.len())
            .filter(|&w| self.queues[w].len() < self.cfg.queue_depth)
            .min_by_key(|&w| (self.in_flight[w].len() + self.queues[w].len(), w));
        if let Some(w) = best {
            self.sessions[sid].enqueued_tick = self.tick;
            self.queues[w].push_back(sid);
            return;
        }
        let victim = self
            .queues
            .iter()
            .enumerate()
            .flat_map(|(w, q)| q.iter().map(move |&vs| (w, vs)))
            .min_by_key(|&(_, vs)| {
                let v = &self.sessions[vs];
                (v.priority, std::cmp::Reverse(v.arrival_seq))
            });
        match victim {
            Some((w, vs)) if self.sessions[vs].priority < self.sessions[sid].priority => {
                self.queues[w].retain(|&q| q != vs);
                self.shed_session(vs, ShedCause::Displaced);
                self.sessions[sid].enqueued_tick = self.tick;
                self.queues[w].push_back(sid);
            }
            _ => self.shed_session(sid, ShedCause::QueueFull),
        }
    }

    /// Sheds queued sessions that have waited past the SLO budget.
    fn expire_slo(&mut self) {
        let Some(slo) = self.cfg.slo_queue_ticks else {
            return;
        };
        for w in 0..self.queues.len() {
            let expired: Vec<usize> = self.queues[w]
                .iter()
                .copied()
                .filter(|&sid| self.tick - self.sessions[sid].enqueued_tick >= slo)
                .collect();
            self.queues[w].retain(|sid| !expired.contains(sid));
            for sid in expired {
                self.shed_session(sid, ShedCause::SloExpired);
            }
        }
    }

    /// The request to submit for `sid`'s next attempt: the original on a
    /// first dispatch, otherwise the replay request (prompt extended by
    /// accepted tokens, budget reduced, rng resumed).
    fn attempt(&self, sid: usize) -> (ServeRequest, Option<TensorRng>) {
        let s = &self.sessions[sid];
        if s.accepted.is_empty() {
            return (s.req.clone(), None);
        }
        let mut req = s.req.clone();
        req.prompt.extend_from_slice(&s.accepted);
        req.max_new_tokens -= s.accepted.len();
        (req, s.rng.clone())
    }

    /// Requeues every in-flight session of a crashed worker, burning one
    /// retry each.
    fn crash(&mut self, w: usize) {
        let lost = std::mem::take(&mut self.in_flight[w]);
        for sid in lost {
            if self.sessions[sid].retries >= self.cfg.max_retries {
                self.shed_session(sid, ShedCause::RetriesExhausted);
            } else {
                self.sessions[sid].retries += 1;
                self.replays += 1;
                self.place(sid);
            }
        }
    }

    fn process_reply(&mut self, w: usize, reply: StepReply) {
        for p in reply.progress {
            let sid = self.by_id[&p.id];
            self.sessions[sid].accepted.push(p.token);
            self.sessions[sid].rng = Some(p.rng);
            self.tokens_generated += 1;
        }
        self.decode_ns.extend(reply.decode_ns);
        for outcome in reply.finished {
            let sid = self.by_id[&outcome.id];
            self.in_flight[w].retain(|&q| q != sid);
            self.served += 1;
            let s = &self.sessions[sid];
            let ServeOutcome {
                id,
                tokens,
                finish,
                steps,
                final_probs,
            } = outcome;
            // A replayed session's engine outcome covers only the last
            // attempt; the full stream is the router's accepted log.
            let tokens = if s.retries == 0 {
                tokens
            } else {
                s.accepted.clone()
            };
            self.outcomes.push(SessionOutcome {
                id,
                tokens,
                finish: SessionFinish::Served(finish),
                steps,
                final_probs,
                retries: s.retries,
                queue_wait_ticks: s.queue_wait_ticks,
            });
        }
    }
}

fn validate(cfg: &FleetConfig) -> Result<(), ServeError> {
    if cfg.workers == 0 {
        return Err(ServeError::ZeroCapacity {
            what: "fleet workers",
        });
    }
    if cfg.batch_per_worker == 0 {
        return Err(ServeError::ZeroCapacity {
            what: "batch slots",
        });
    }
    if cfg.queue_depth == 0 {
        return Err(ServeError::ZeroCapacity {
            what: "queue depth",
        });
    }
    Ok(())
}

/// Drains a dead worker's reply channel for the error it reported, or
/// synthesizes one when the thread vanished without a word.
fn worker_error(rx: &mpsc::Receiver<Result<StepReply, ServeError>>) -> ServeError {
    for reply in rx.try_iter() {
        if let Err(e) = reply {
            return e;
        }
    }
    ServeError::Model(edge_llm_model::ModelError::BadConfig {
        reason: "fleet worker thread terminated unexpectedly".into(),
    })
}

/// Runs every request through a fleet of `cfg.workers` engine workers
/// and returns the per-session outcomes plus the aggregate report.
///
/// Requests may arrive at any `submit_tick` in any order; the router
/// processes them in `(submit_tick, input index)` order. With the same
/// model, config, and requests, the result is identical run-to-run.
///
/// # Errors
///
/// Returns [`ServeError::ZeroCapacity`] for a zero worker count, batch
/// size, or queue depth, and propagates engine construction and model
/// failures from the workers. Session-level problems (validation,
/// deadline, shedding, retry exhaustion) are reported per session in the
/// outcomes, never as an `Err`.
pub fn run_fleet(
    model: &EdgeModel,
    cfg: &FleetConfig,
    requests: &[FleetRequest],
) -> Result<FleetRun, ServeError> {
    run_fleet_with_adapters(model, cfg, &[], requests)
}

/// [`run_fleet`] over a multi-tenant fleet: every worker engine gets all
/// of `adapters` registered against the shared frozen base before
/// serving, and a worker rebuilt after a crash re-registers them —
/// failover re-places tenant sessions with their adapter resident.
/// Requests naming a tenant not in `adapters` are rejected per session
/// by the engine, never as an `Err`.
///
/// # Errors
///
/// As [`run_fleet`], plus adapter resolution failures (bad layer index
/// or factor shapes for this model) surfaced at worker construction.
pub fn run_fleet_with_adapters(
    model: &EdgeModel,
    cfg: &FleetConfig,
    adapters: &[(String, TenantAdapter)],
    requests: &[FleetRequest],
) -> Result<FleetRun, ServeError> {
    validate(cfg)?;
    let _span = telemetry::span("fleet.run");

    // Arrival order: by submit tick, input order within a tick.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].submit_tick);
    let sessions: Vec<Session> = order
        .iter()
        .enumerate()
        .map(|(seq, &i)| Session {
            req: requests[i].req.clone(),
            priority: requests[i].priority,
            arrival_seq: seq as u64,
            submit_tick: requests[i].submit_tick,
            enqueued_tick: requests[i].submit_tick,
            accepted: Vec::new(),
            rng: None,
            retries: 0,
            queue_wait_ticks: None,
        })
        .collect();
    let by_id: HashMap<String, usize> = sessions
        .iter()
        .enumerate()
        .map(|(sid, s)| (s.req.id.clone(), sid))
        .collect();
    if by_id.len() != sessions.len() {
        return Err(ServeError::Model(edge_llm_model::ModelError::BadConfig {
            reason: "fleet request ids must be unique".into(),
        }));
    }

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(cfg.workers);
        let mut reply_rxs = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (reply_tx, reply_rx) = mpsc::channel::<Result<StepReply, ServeError>>();
            let batch = cfg.batch_per_worker;
            scope.spawn(move || worker_loop(model, batch, adapters, cmd_rx, reply_tx));
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        let mut r = Router {
            cfg,
            sessions,
            by_id,
            queues: vec![VecDeque::new(); cfg.workers],
            in_flight: vec![Vec::new(); cfg.workers],
            stalled_until: vec![0; cfg.workers],
            tick: 0,
            outcomes: Vec::new(),
            shed: BTreeMap::new(),
            served: 0,
            replays: 0,
            tokens_generated: 0,
            queue_wait_samples: Vec::new(),
            decode_ns: Vec::new(),
        };
        let mut plan = FaultPlan::new(&cfg.faults);
        let mut next_arrival = 0usize;

        loop {
            let idle = next_arrival == r.sessions.len()
                && r.queues.iter().all(|q| q.is_empty())
                && r.in_flight.iter().all(|f| f.is_empty());
            if idle {
                break;
            }

            // 1. Scheduled faults fire at the tick boundary, before any
            //    admission: a crash loses exactly the sessions that were
            //    in flight at the end of the previous tick.
            for fault in plan.due(r.tick) {
                match fault.kind {
                    FaultKind::WorkerCrash { worker } => {
                        let w = worker % cfg.workers;
                        telemetry::counter("fleet.worker_crash", 1);
                        if cmd_txs[w].send(Cmd::Reset).is_err() {
                            return Err(worker_error(&reply_rxs[w]));
                        }
                        r.crash(w);
                    }
                    FaultKind::WorkerStall { worker, ticks } => {
                        let w = worker % cfg.workers;
                        telemetry::counter("fleet.worker_stall", 1);
                        r.stalled_until[w] = r.tick + ticks as u64;
                    }
                    // Tuner-side faults have no serving interpretation.
                    _ => {}
                }
            }

            // 2. Admissions due this tick.
            while next_arrival < r.sessions.len() && r.sessions[next_arrival].submit_tick <= r.tick
            {
                r.place(next_arrival);
                next_arrival += 1;
            }

            // 3. Queued sessions past the SLO budget are shed before
            //    dispatch — an expired session never reaches a worker.
            r.expire_slo();

            // 4. Dispatch queued sessions into free batch slots (FIFO
            //    per queue; priorities influence shedding, not order).
            for w in 0..cfg.workers {
                while r.in_flight[w].len() < cfg.batch_per_worker {
                    let Some(sid) = r.queues[w].pop_front() else {
                        break;
                    };
                    if r.sessions[sid].queue_wait_ticks.is_none() {
                        let wait = r.tick - r.sessions[sid].submit_tick;
                        r.sessions[sid].queue_wait_ticks = Some(wait);
                        r.queue_wait_samples.push(wait);
                    }
                    let (req, rng) = r.attempt(sid);
                    if cmd_txs[w].send(Cmd::Submit(Box::new(req), rng)).is_err() {
                        return Err(worker_error(&reply_rxs[w]));
                    }
                    r.in_flight[w].push(sid);
                }
            }

            // 5. Step every live worker, then consume replies in worker
            //    index order (the determinism barrier).
            let stepping: Vec<usize> = (0..cfg.workers)
                .filter(|&w| !r.in_flight[w].is_empty() && r.stalled_until[w] <= r.tick)
                .collect();
            for &w in &stepping {
                if cmd_txs[w].send(Cmd::Step).is_err() {
                    return Err(worker_error(&reply_rxs[w]));
                }
            }
            for &w in &stepping {
                match reply_rxs[w].recv() {
                    Ok(Ok(reply)) => r.process_reply(w, reply),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => return Err(worker_error(&reply_rxs[w])),
                }
            }

            r.tick += 1;
        }

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }

        telemetry::counter("fleet.ticks", r.tick);
        let report = FleetReport {
            ticks: r.tick,
            served: r.served,
            shed: r.shed,
            replays: r.replays,
            tokens_generated: r.tokens_generated,
            queue_wait_ticks: LatencySummary::from_ns(r.queue_wait_samples),
            decode_token: LatencySummary::from_ns(r.decode_ns),
        };
        Ok(FleetRun {
            outcomes: r.outcomes,
            report,
        })
    })
}
