//! Sharded serving fleet: N engine workers behind a deterministic
//! router with SLO-aware admission, overload shedding, and crash-replay
//! failover.
//!
//! The single [`edge_llm_serve::BatchedInferenceEngine`] serves one
//! device; a production service needs to survive bursty arrivals,
//! worker faults, and overload. This crate shards sessions across N
//! workers (each a `BatchedInferenceEngine` on its own thread) while
//! keeping the repo's determinism contract intact:
//!
//! * with **1 worker and no faults**, a fleet run is byte-identical to
//!   driving the engine directly;
//! * with **N workers**, every session's token stream is bit-identical
//!   regardless of placement — the engine already guarantees
//!   placement-independence, and the router adds none of its own
//!   nondeterminism (lock-step ticks, replies consumed in worker order);
//! * with **injected worker crashes**, a replayed session's tokens and
//!   finish reason match the crash-free run exactly (prompt + accepted
//!   tokens replayed with the sampling rng resumed from the last
//!   [`edge_llm_serve::SessionProgress`] snapshot).
//!
//! The workspace-root `tests/fleet_equivalence.rs` suite pins all three
//! oracles down; [`loadgen`] provides seeded traffic scenarios for the
//! `edgellm loadgen` CLI and the `bench_fleet` benchmark.
//!
//! # Example
//!
//! ```
//! use edge_llm_fleet::{run_fleet, FleetConfig, FleetRequest, ScenarioSpec};
//! use edge_llm_model::{EdgeModel, ModelConfig};
//! use edge_llm_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = TensorRng::seed_from(0);
//! let model = EdgeModel::new(ModelConfig::tiny(), &mut rng)?;
//! let cfg = FleetConfig {
//!     workers: 2,
//!     ..FleetConfig::default()
//! };
//! let spec = ScenarioSpec::builtin("steady").unwrap();
//! let traffic = spec.generate(model.config().vocab_size, model.n_layers());
//! let run = run_fleet(&model, &cfg, &traffic)?;
//! assert_eq!(run.outcomes.len(), traffic.len());
//! println!("{}", run.report);
//! # Ok(())
//! # }
//! ```

mod loadgen;
mod router;
mod worker;

pub use loadgen::{Arrival, ScenarioSpec};
pub use router::{
    run_fleet, run_fleet_with_adapters, FleetConfig, FleetReport, FleetRequest, FleetRun,
    SessionFinish, SessionOutcome,
};
