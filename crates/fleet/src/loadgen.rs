//! Deterministic load generation for fleet experiments.
//!
//! A [`ScenarioSpec`] is a seeded recipe for a traffic mix: arrival
//! distribution, session-length mix, priority skew, decoding mix, and a
//! fault schedule. `generate` expands it into concrete [`FleetRequest`]s
//! using only the scenario seed, so the same spec always produces the
//! same traffic — scenarios are reproducible experiment inputs, not
//! random noise.

use crate::router::FleetRequest;
use edge_llm::resilience::{FaultKind, PlannedFault};
use edge_llm_model::{Decoding, VotingPolicy};
use edge_llm_serve::ServeRequest;
use edge_llm_tensor::TensorRng;

/// When sessions show up at the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Arrival ticks drawn uniformly over `[0, span_ticks)`.
    Uniform,
    /// `percent`% of sessions land on exactly `at_tick`; the rest are
    /// uniform over the span. Models a thundering herd.
    Burst {
        /// The herd's tick.
        at_tick: u64,
        /// Share of sessions in the herd (0–100).
        percent: u8,
    },
}

/// A seeded traffic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in request ids and reports).
    pub name: String,
    /// Seed for every random draw the generator makes.
    pub seed: u64,
    /// Sessions to generate.
    pub sessions: usize,
    /// Arrival window in ticks.
    pub span_ticks: u64,
    /// Arrival distribution over the window.
    pub arrival: Arrival,
    /// Inclusive prompt-length range.
    pub prompt_len: (usize, usize),
    /// Inclusive generation-budget range.
    pub max_new_tokens: (usize, usize),
    /// Priority values drawn uniformly — skew by repeating entries
    /// (e.g. `[0, 1, 1, 2]` makes priority 1 twice as common).
    pub priorities: Vec<u8>,
    /// Share of sessions using sampled decoding instead of greedy
    /// (0–100). Sampled sessions exercise the rng-resume replay path.
    pub sampled_percent: u8,
    /// Fault schedule injected alongside the traffic (`at_iteration` is
    /// the fleet tick).
    pub faults: Vec<PlannedFault>,
}

impl ScenarioSpec {
    /// The built-in scenario names, in presentation order.
    pub fn builtin_names() -> [&'static str; 4] {
        ["steady", "burst", "crash", "stall"]
    }

    /// Looks up a built-in scenario by name.
    pub fn builtin(name: &str) -> Option<ScenarioSpec> {
        let base = ScenarioSpec {
            name: name.to_string(),
            seed: 61,
            sessions: 24,
            span_ticks: 24,
            arrival: Arrival::Uniform,
            prompt_len: (1, 4),
            max_new_tokens: (1, 4),
            priorities: vec![1],
            sampled_percent: 50,
            faults: Vec::new(),
        };
        match name {
            "steady" => Some(base),
            "burst" => Some(ScenarioSpec {
                sessions: 32,
                span_ticks: 16,
                arrival: Arrival::Burst {
                    at_tick: 3,
                    percent: 75,
                },
                priorities: vec![0, 1, 1, 2],
                ..base
            }),
            "crash" => Some(ScenarioSpec {
                sessions: 16,
                span_ticks: 8,
                faults: vec![
                    PlannedFault {
                        at_iteration: 4,
                        kind: FaultKind::WorkerCrash { worker: 0 },
                    },
                    PlannedFault {
                        at_iteration: 9,
                        kind: FaultKind::WorkerCrash { worker: 1 },
                    },
                ],
                ..base
            }),
            "stall" => Some(ScenarioSpec {
                sessions: 16,
                span_ticks: 8,
                faults: vec![PlannedFault {
                    at_iteration: 2,
                    kind: FaultKind::WorkerStall {
                        worker: 0,
                        ticks: 3,
                    },
                }],
                ..base
            }),
            _ => None,
        }
    }

    /// Expands the scenario into concrete requests against a model shape
    /// (`vocab` for prompt tokens, `n_layers` for the voting policy).
    /// Deterministic in the scenario alone.
    pub fn generate(&self, vocab: usize, n_layers: usize) -> Vec<FleetRequest> {
        let mut rng = TensorRng::seed_from(self.seed);
        let span = self.span_ticks.max(1);
        (0..self.sessions)
            .map(|i| {
                let submit_tick = match self.arrival {
                    Arrival::Uniform => rng.index(span as usize) as u64,
                    Arrival::Burst { at_tick, percent } => {
                        if rng.index(100) < percent as usize {
                            at_tick
                        } else {
                            rng.index(span as usize) as u64
                        }
                    }
                };
                let range =
                    |rng: &mut TensorRng, (lo, hi): (usize, usize)| lo + rng.index(hi - lo + 1);
                let prompt_len = range(&mut rng, self.prompt_len);
                let prompt: Vec<usize> = (0..prompt_len).map(|_| rng.index(vocab)).collect();
                let decoding = if rng.index(100) < self.sampled_percent as usize {
                    Decoding::Sample { temperature: 0.8 }
                } else {
                    Decoding::Greedy
                };
                let priority = self.priorities[rng.index(self.priorities.len().max(1))];
                FleetRequest {
                    req: ServeRequest {
                        id: format!("{}-{i}", self.name),
                        prompt,
                        max_new_tokens: range(&mut rng, self.max_new_tokens),
                        decoding,
                        voting: VotingPolicy::final_only(n_layers),
                        seed: rng.next_u64(),
                        deadline_steps: None,
                    },
                    priority,
                    submit_tick,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_all_resolve_and_unknown_does_not() {
        for name in ScenarioSpec::builtin_names() {
            let spec = ScenarioSpec::builtin(name).unwrap();
            assert_eq!(spec.name, name);
            assert!(spec.sessions > 0);
        }
        assert!(ScenarioSpec::builtin("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let spec = ScenarioSpec::builtin("burst").unwrap();
        let a = spec.generate(16, 2);
        let b = spec.generate(16, 2);
        assert_eq!(a, b, "same spec, same traffic");
        assert_eq!(a.len(), spec.sessions);
        for fr in &a {
            assert!(fr.submit_tick < spec.span_ticks);
            assert!(fr.req.prompt.iter().all(|&t| t < 16));
            assert!(fr.req.prompt.len() >= spec.prompt_len.0);
            assert!(fr.req.prompt.len() <= spec.prompt_len.1);
            assert!(fr.req.max_new_tokens >= spec.max_new_tokens.0);
            assert!(fr.req.max_new_tokens <= spec.max_new_tokens.1);
            assert!(spec.priorities.contains(&fr.priority));
        }
        // the burst actually concentrates arrivals on the herd tick
        let herd = a.iter().filter(|fr| fr.submit_tick == 3).count();
        assert!(herd > a.len() / 2, "{herd} of {} in the herd", a.len());
    }

    #[test]
    fn different_seeds_change_the_traffic() {
        let spec = ScenarioSpec::builtin("steady").unwrap();
        let other = ScenarioSpec {
            seed: spec.seed + 1,
            ..spec.clone()
        };
        assert_ne!(spec.generate(16, 2), other.generate(16, 2));
    }
}
