//! Measures fleet throughput scaling and burst queue latency as
//! machine-readable JSON (`BENCH_6.json`).
//!
//! The scenario also exists declaratively as `experiments/fleet.jsonl`
//! (`edgellm lab run`), which pins the equal-work oracle across worker
//! counts; the core-count-dependent speedup gate stays here.
//!
//! ```text
//! bench_fleet [output-path]
//! ```
//!
//! The same seeded burst scenario is driven through 1-, 2-, and 4-worker
//! fleets. The config is roomy (deep queues, no SLO, no faults) so every
//! worker count serves the identical token workload — the determinism
//! oracles in `tests/fleet_equivalence.rs` prove the outputs are
//! bit-identical, so tokens/s is an apples-to-apples scaling measure.
//! Kernel threads are pinned to 1 per engine: all parallelism in this
//! bench comes from sharding, not from the kernel pool.
//!
//! The gate: on a multi-core box, the best multi-worker fleet must beat
//! the single worker by at least 1.3x tokens/s. On a single core the
//! numbers are still recorded but the gate reports `"gated": false` —
//! threads cannot beat one core, and a fake bar would only teach people
//! to ignore red.

use edge_llm_fleet::{run_fleet, FleetConfig, ScenarioSpec};
use edge_llm_model::{EdgeModel, ModelConfig};
use edge_llm_tensor::TensorRng;
use std::time::Instant;

fn bench_model() -> EdgeModel {
    // Enough per-step matmul work that sharding has something to win.
    let cfg = ModelConfig::tiny()
        .with_layers(4)
        .with_d_model(64, 4)
        .with_seq_len(32);
    let mut rng = TensorRng::seed_from(42);
    EdgeModel::new(cfg, &mut rng).expect("bench config is valid")
}

fn bench_scenario() -> ScenarioSpec {
    let mut spec = ScenarioSpec::builtin("burst").expect("burst is built in");
    // longer sessions than the test-sized default: seconds-scale work
    spec.sessions = 48;
    spec.max_new_tokens = (8, 16);
    spec
}

struct Point {
    workers: usize,
    tokens_per_s: f64,
    queue_wait_p99_ticks: u64,
    served: usize,
    tokens: u64,
}

fn run_point(model: &EdgeModel, spec: &ScenarioSpec, workers: usize) -> Point {
    let traffic = spec.generate(model.config().vocab_size, model.n_layers());
    // roomy on purpose: nothing sheds, so every worker count serves the
    // same tokens and throughput is comparable
    let cfg = FleetConfig {
        workers,
        batch_per_worker: 4,
        queue_depth: 64,
        max_retries: 2,
        slo_queue_ticks: None,
        faults: spec.faults.clone(),
    };
    let t0 = Instant::now();
    let run = run_fleet(model, &cfg, &traffic).expect("bench fleet run");
    let secs = t0.elapsed().as_secs_f64();
    Point {
        workers,
        tokens_per_s: run.report.tokens_generated as f64 / secs.max(1e-9),
        queue_wait_p99_ticks: run.report.queue_wait_ticks.p99_ns,
        served: run.report.served,
        tokens: run.report.tokens_generated,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_6.json".to_string());

    // All parallelism must come from worker sharding, not kernel threads.
    edge_llm_tensor::set_configured_threads(1);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let gated = cores >= 2;
    let model = bench_model();
    let spec = bench_scenario();

    // Wall-clock benches jitter under load; keep the best attempt per
    // worker count so a transiently busy box doesn't fail the gate.
    const ATTEMPTS: usize = 3;
    let mut points: Vec<Point> = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut best: Option<Point> = None;
        for attempt in 0..ATTEMPTS {
            eprintln!(
                "bench_fleet: {workers} worker(s), attempt {}/{ATTEMPTS} ...",
                attempt + 1
            );
            let p = run_point(&model, &spec, workers);
            if best
                .as_ref()
                .is_none_or(|b| p.tokens_per_s > b.tokens_per_s)
            {
                best = Some(p);
            }
        }
        points.push(best.expect("at least one attempt ran"));
    }

    // Equal work across worker counts is what makes the speedup honest.
    assert!(
        points.iter().all(|p| p.tokens == points[0].tokens),
        "worker counts served different workloads — bench config sheds"
    );

    let single = points[0].tokens_per_s;
    let best_multi = points[1..]
        .iter()
        .map(|p| p.tokens_per_s)
        .fold(0.0f64, f64::max);
    let speedup = best_multi / single.max(1e-9);

    let worker_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"workers\": {},\n      \"tokens_per_s\": {:.1},\n      \
                 \"queue_wait_p99_ticks\": {},\n      \"served\": {},\n      \
                 \"tokens\": {}\n    }}",
                p.workers, p.tokens_per_s, p.queue_wait_p99_ticks, p.served, p.tokens
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet_scaling\",\n  \"scenario\": \"{}\",\n  \
         \"sessions\": {},\n  \"cores\": {},\n  \"gated\": {},\n  \
         \"speedup_multi\": {:.3},\n  \"workers\": [\n{}\n  ]\n}}\n",
        spec.name,
        spec.sessions,
        cores,
        gated,
        speedup,
        worker_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("bench_fleet: wrote {out_path}");
    print!("{json}");

    // The bar the fleet ships under: sharding must actually scale.
    if gated && speedup < 1.3 {
        eprintln!(
            "bench_fleet: FAIL — best multi-worker fleet is only {speedup:.2}x \
             the single worker on a {cores}-core box (bar: >=1.3x)"
        );
        std::process::exit(1);
    }
    if !gated {
        eprintln!("bench_fleet: single core — speedup recorded but not gated");
    }
}
