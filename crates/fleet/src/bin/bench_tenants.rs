//! Measures multi-tenant adapter serving cost as machine-readable JSON
//! (`BENCH_8.json`).
//!
//! The scenario also exists declaratively as `experiments/tenants.jsonl`
//! (`edgellm lab run`), which pins the ≤1.2x 8-tenant residency ratio
//! as a deltas-table gate; this binary remains the wall-clock authority.
//!
//! ```text
//! bench_tenants [output-path]
//! ```
//!
//! One W4-packed base model serves mixed-tenant batches for 1, 2, 4,
//! and 8 tenants, each tenant decoding with its own low-rank adapter
//! resolved per slot on top of the shared packed projections. Resident
//! weight bytes are the packed base plus every resident adapter's
//! factors — the whole point of per-slot LoRA selection is that tenants
//! share the base instead of each forking a merged copy of it.
//!
//! The gate: serving 8 tenants from one packed base must keep resident
//! weight bytes within 1.2x of the single-tenant fleet. A merged-weights
//! design would sit near 8x and fail loudly here.

use edge_llm::compress::apply_policy;
use edge_llm::luc::{CompressionPolicy, LayerPolicy};
use edge_llm::quant::BitWidth;
use edge_llm_model::{
    AdapterTarget, Decoding, EdgeModel, ModelConfig, TenantAdapter, VotingPolicy,
};
use edge_llm_serve::{BatchedInferenceEngine, FinishReason, ServeRequest};
use edge_llm_tensor::TensorRng;
use std::time::Instant;

fn bench_config() -> ModelConfig {
    // Enough base weight that the adapter overhead ratio is meaningful:
    // ~0.8M block parameters pack to ~400KB at W4, against ~2KB of
    // rank-1 factors per tenant.
    ModelConfig::tiny()
        .with_layers(4)
        .with_d_model(128, 4)
        .with_seq_len(32)
}

fn build_model() -> EdgeModel {
    let cfg = bench_config();
    let mut rng = TensorRng::seed_from(42);
    let mut model = EdgeModel::new(cfg.clone(), &mut rng).expect("bench config is valid");
    let policy = CompressionPolicy::from_layers(vec![
        LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: 0.25,
        };
        cfg.n_layers
    ]);
    apply_policy(&mut model, &policy).expect("bench policy applies");
    model
}

/// Rank-1 deltas on the first layer's attention input and the last
/// layer's FFN output — the same shape the CLI seeds per tenant.
fn tenant_adapter(model: &EdgeModel, tenant: usize) -> TenantAdapter {
    let cfg = model.config();
    let sites = [
        (0, AdapterTarget::Qkv),
        (cfg.n_layers - 1, AdapterTarget::Fc2),
    ];
    TenantAdapter::seeded(cfg, 0x7e4a47 + tenant as u64, 1, &sites)
}

/// A mixed-tenant workload: `sessions` requests round-robined across
/// the tenants, identical apart from tenant assignment and seeds.
fn workload(model: &EdgeModel, tenants: usize, sessions: usize) -> Vec<ServeRequest> {
    let cfg = model.config();
    let mut rng = TensorRng::seed_from(7);
    (0..sessions)
        .map(|i| {
            let prompt_len = 4 + rng.index(5);
            let prompt = (0..prompt_len).map(|_| rng.index(cfg.vocab_size)).collect();
            ServeRequest {
                id: format!("s{i}"),
                prompt,
                max_new_tokens: 8 + rng.index(9),
                decoding: Decoding::Greedy,
                voting: VotingPolicy::final_only(cfg.n_layers),
                seed: rng.next_u64(),
                deadline_steps: None,
                tenant: Some(format!("tenant-{}", i % tenants)),
            }
        })
        .collect()
}

struct Point {
    tenants: usize,
    tokens_per_s: f64,
    base_bytes: usize,
    adapter_bytes: usize,
    served: usize,
    tokens: usize,
}

fn run_point(model: &EdgeModel, tenants: usize) -> Point {
    let mut engine = BatchedInferenceEngine::new(model, 4).expect("bench engine");
    for t in 0..tenants {
        engine
            .register_adapter(&format!("tenant-{t}"), tenant_adapter(model, t))
            .expect("bench adapter registers");
    }
    let requests = workload(model, tenants, 32);
    let n = requests.len();
    for req in requests {
        engine.submit(req);
    }
    let t0 = Instant::now();
    let outcomes = engine.run_to_completion().expect("bench run");
    let secs = t0.elapsed().as_secs_f64();
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o.finish, FinishReason::Completed)),
        "bench workload must complete every session"
    );
    let tokens: usize = outcomes.iter().map(|o| o.tokens.len()).sum();
    Point {
        tenants,
        tokens_per_s: tokens as f64 / secs.max(1e-9),
        base_bytes: engine.weight_resident_bytes(),
        adapter_bytes: engine.adapter_cache().resident_bytes(),
        served: n,
        tokens,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    edge_llm_tensor::set_configured_threads(1);
    let model = build_model();

    // Bytes are deterministic; only tokens/s jitters, so keep the best
    // throughput attempt per tenant count.
    const ATTEMPTS: usize = 3;
    let mut points: Vec<Point> = Vec::new();
    for tenants in [1usize, 2, 4, 8] {
        let mut best: Option<Point> = None;
        for attempt in 0..ATTEMPTS {
            eprintln!(
                "bench_tenants: {tenants} tenant(s), attempt {}/{ATTEMPTS} ...",
                attempt + 1
            );
            let p = run_point(&model, tenants);
            if best
                .as_ref()
                .is_none_or(|b| p.tokens_per_s > b.tokens_per_s)
            {
                best = Some(p);
            }
        }
        points.push(best.expect("at least one attempt ran"));
    }

    // Same sessions regardless of tenant count — only the adapters (and
    // therefore the tokens) differ, never the amount of serving work.
    assert!(
        points.iter().all(|p| p.served == points[0].served),
        "tenant counts served different workloads"
    );

    let resident = |p: &Point| p.base_bytes + p.adapter_bytes;
    let single = resident(&points[0]) as f64;
    let eight = resident(points.last().expect("four points")) as f64;
    let ratio = eight / single.max(1.0);

    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"tenants\": {},\n      \"tokens_per_s\": {:.1},\n      \
                 \"base_bytes\": {},\n      \"adapter_bytes\": {},\n      \
                 \"resident_bytes\": {},\n      \"served\": {},\n      \
                 \"tokens\": {}\n    }}",
                p.tenants,
                p.tokens_per_s,
                p.base_bytes,
                p.adapter_bytes,
                resident(p),
                p.served,
                p.tokens
            )
        })
        .collect();
    let cfg = bench_config();
    let json = format!(
        "{{\n  \"bench\": \"tenant_serving\",\n  \"model\": {{\n    \"layers\": {},\n    \
         \"d_model\": {},\n    \"seq_len\": {},\n    \"policy\": \"W4 @ 0.25 sparsity, packed\"\n  }},\n  \
         \"sessions\": {},\n  \"resident_ratio_8_over_1\": {:.4},\n  \"bar\": 1.2,\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        cfg.n_layers,
        cfg.d_model,
        cfg.seq_len,
        points[0].served,
        ratio,
        point_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("bench_tenants: wrote {out_path}");
    print!("{json}");

    // The bar the tentpole ships under: 8 tenants must share the base,
    // not fork it.
    if ratio > 1.2 {
        eprintln!(
            "bench_tenants: FAIL — 8 tenants cost {ratio:.2}x the single-tenant \
             resident bytes (bar: <=1.2x); adapters are not sharing the packed base"
        );
        std::process::exit(1);
    }
}
