//! Overload-edge coverage for the fleet router: bounded-queue
//! backpressure, priority displacement and tie determinism, SLO expiry,
//! a crash at every tick of a short session (proptest-style sweep), and
//! retry exhaustion surfacing a typed error.

use edge_llm::resilience::{FaultKind, PlannedFault};
use edge_llm_fleet::{
    run_fleet, FleetConfig, FleetReport, FleetRequest, FleetRun, ScenarioSpec, SessionFinish,
    SessionOutcome,
};
use edge_llm_model::{Decoding, EdgeModel, ModelConfig, VotingPolicy};
use edge_llm_serve::{FinishReason, ServeError, ServeRequest, ShedCause};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::TensorRng;

fn model() -> EdgeModel {
    let mut rng = TensorRng::seed_from(5);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

fn request(m: &EdgeModel, id: &str, seed: u64) -> ServeRequest {
    ServeRequest {
        id: id.into(),
        prompt: vec![1, 2],
        max_new_tokens: 3,
        decoding: Decoding::Greedy,
        voting: VotingPolicy::final_only(m.n_layers()),
        seed,
        deadline_steps: None,
        tenant: None,
    }
}

fn arrival(m: &EdgeModel, id: &str, priority: u8, tick: u64) -> FleetRequest {
    FleetRequest {
        req: request(m, id, 7),
        priority,
        submit_tick: tick,
    }
}

fn shed_cause(outcome: &SessionOutcome) -> Option<ShedCause> {
    match outcome.finish {
        SessionFinish::Shed(cause) => Some(cause),
        SessionFinish::Served(_) => None,
    }
}

/// The report minus its one wall-clock field (decode latency), which is
/// the only part allowed to differ between identical runs.
fn deterministic_report(run: &FleetRun) -> FleetReport {
    let mut r = run.report.clone();
    r.decode_token = Default::default();
    r
}

#[test]
fn zero_capacity_knobs_are_typed_errors() {
    let m = model();
    let zeroed = [
        (
            FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            },
            "fleet workers",
        ),
        (
            FleetConfig {
                batch_per_worker: 0,
                ..FleetConfig::default()
            },
            "batch slots",
        ),
        (
            FleetConfig {
                queue_depth: 0,
                ..FleetConfig::default()
            },
            "queue depth",
        ),
    ];
    for (cfg, what) in zeroed {
        let err = run_fleet(&m, &cfg, &[]).err().unwrap();
        assert_eq!(err, ServeError::ZeroCapacity { what });
    }
}

#[test]
fn queue_full_backpressure_sheds_the_overflow_deterministically() {
    let m = model();
    // one worker, one slot, queue of two: six simultaneous equal-
    // priority arrivals all hit admission before any dispatch, so two
    // fit in the bounded queue and the other four bounce with
    // QueueFull.
    let cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 1,
        queue_depth: 2,
        ..FleetConfig::default()
    };
    let traffic: Vec<FleetRequest> = (0..6)
        .map(|i| arrival(&m, &format!("s{i}"), 1, 0))
        .collect();
    let run = run_fleet(&m, &cfg, &traffic).unwrap();
    assert_eq!(run.report.shed_count(ShedCause::QueueFull), 4);
    assert_eq!(run.report.served, 2);
    // FIFO admission: the earliest arrivals survive, the tail sheds
    for id in ["s0", "s1"] {
        assert!(run.require_served(id).is_ok(), "{id} should be served");
    }
    for id in ["s2", "s3", "s4", "s5"] {
        assert_eq!(
            shed_cause(run.outcome(id).unwrap()),
            Some(ShedCause::QueueFull),
            "{id} should bounce"
        );
        let err = run.require_served(id).err().unwrap();
        assert_eq!(
            err,
            ServeError::Shed {
                id: id.into(),
                cause: ShedCause::QueueFull
            }
        );
    }
}

#[test]
fn higher_priority_arrivals_displace_the_lowest_youngest_queued() {
    let m = model();
    let cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 1,
        queue_depth: 2,
        ..FleetConfig::default()
    };
    // Tick 0 puts `running` in the slot and `low1` in the queue; tick 1
    // fills the queue with `low2`, then the priority-2 arrival
    // displaces the youngest queued priority-1 session (low2) — never
    // the older low1, and never the in-flight `running`.
    let traffic = vec![
        arrival(&m, "running", 1, 0),
        arrival(&m, "low1", 1, 0),
        arrival(&m, "low2", 1, 1),
        arrival(&m, "vip", 2, 1),
    ];
    let run = run_fleet(&m, &cfg, &traffic).unwrap();
    assert_eq!(
        shed_cause(run.outcome("low2").unwrap()),
        Some(ShedCause::Displaced)
    );
    assert_eq!(run.report.shed_count(ShedCause::Displaced), 1);
    for id in ["running", "low1", "vip"] {
        assert!(run.require_served(id).is_ok(), "{id} should be served");
    }
}

#[test]
fn priority_ties_always_shed_the_arrival() {
    let m = model();
    let cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 1,
        queue_depth: 1,
        ..FleetConfig::default()
    };
    let traffic = vec![
        arrival(&m, "running", 1, 0),
        arrival(&m, "queued", 1, 1),
        arrival(&m, "tied-latecomer", 1, 2),
    ];
    let a = run_fleet(&m, &cfg, &traffic).unwrap();
    let b = run_fleet(&m, &cfg, &traffic).unwrap();
    // equal priority never displaces: the incumbent keeps its place
    assert_eq!(
        shed_cause(a.outcome("tied-latecomer").unwrap()),
        Some(ShedCause::QueueFull)
    );
    assert!(a.require_served("queued").is_ok());
    // and the decision is identical run-to-run
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(deterministic_report(&a), deterministic_report(&b));
}

#[test]
fn slo_expiry_sheds_sessions_that_waited_too_long() {
    let m = model();
    // one slot and a deep queue: the head session takes 5 ticks, so
    // with an SLO of 3 ticks everything still queued behind it expires.
    let cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 1,
        queue_depth: 8,
        slo_queue_ticks: Some(3),
        ..FleetConfig::default()
    };
    let traffic: Vec<FleetRequest> = (0..4)
        .map(|i| arrival(&m, &format!("s{i}"), 1, 0))
        .collect();
    let run = run_fleet(&m, &cfg, &traffic).unwrap();
    assert!(run.require_served("s0").is_ok());
    assert_eq!(run.report.shed_count(ShedCause::SloExpired), 3);
    for id in ["s1", "s2", "s3"] {
        assert_eq!(
            shed_cause(run.outcome(id).unwrap()),
            Some(ShedCause::SloExpired)
        );
    }
}

#[test]
fn a_crash_at_every_tick_replays_token_identically() {
    let m = model();
    // Proptest-style sweep: the harness draws a fresh sampled-decoding
    // session pair per case (the rng-resume replay path), then the
    // single worker is crashed at EVERY tick the crash-free run
    // reaches. Crash-replay must reproduce the exact token streams no
    // matter where the crash lands — including between a session's
    // last token and its retirement.
    let base_cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 2,
        queue_depth: 8,
        max_retries: 3,
        ..FleetConfig::default()
    };
    run_cases("crash_at_every_tick", 3, |g| {
        let mut sampled = request(&m, "sampled", g.u64());
        sampled.decoding = Decoding::Sample {
            temperature: g.f32_in(0.5, 1.5),
        };
        sampled.max_new_tokens = g.usize_in(1, 5);
        let mut greedy = request(&m, "greedy", g.u64());
        greedy.max_new_tokens = g.usize_in(1, 4);
        let traffic = vec![
            FleetRequest {
                req: sampled,
                priority: 1,
                submit_tick: 0,
            },
            FleetRequest {
                req: greedy,
                priority: 1,
                submit_tick: 1,
            },
        ];
        let baseline = run_fleet(&m, &base_cfg, &traffic).unwrap();
        for crash_tick in 0..=baseline.report.ticks + 1 {
            let mut cfg = base_cfg.clone();
            cfg.faults = vec![PlannedFault {
                at_iteration: crash_tick,
                kind: FaultKind::WorkerCrash { worker: 0 },
            }];
            let run = run_fleet(&m, &cfg, &traffic).unwrap();
            for base in &baseline.outcomes {
                let crashed = run.outcome(&base.id).unwrap();
                assert_eq!(
                    crashed.tokens, base.tokens,
                    "crash at tick {crash_tick}: {} tokens",
                    base.id
                );
                assert_eq!(
                    crashed.finish, base.finish,
                    "crash at tick {crash_tick}: {} finish",
                    base.id
                );
            }
        }
    });
}

#[test]
fn exhausted_retries_surface_a_typed_error() {
    let m = model();
    // crash the only worker on three consecutive ticks with a budget of
    // one replay: the session survives the first crash and sheds on the
    // second.
    let cfg = FleetConfig {
        workers: 1,
        batch_per_worker: 1,
        queue_depth: 4,
        max_retries: 1,
        slo_queue_ticks: None,
        faults: (1..=3)
            .map(|t| PlannedFault {
                at_iteration: t,
                kind: FaultKind::WorkerCrash { worker: 0 },
            })
            .collect(),
    };
    let traffic = vec![arrival(&m, "victim", 1, 0)];
    let run = run_fleet(&m, &cfg, &traffic).unwrap();
    let outcome = run.outcome("victim").unwrap();
    assert_eq!(
        shed_cause(outcome),
        Some(ShedCause::RetriesExhausted),
        "{:?}",
        outcome.finish
    );
    assert_eq!(outcome.retries, 1, "one replay was granted");
    assert_eq!(
        run.require_served("victim").err().unwrap(),
        ServeError::RetriesExhausted {
            id: "victim".into(),
            retries: 1
        }
    );
    assert_eq!(run.report.shed_count(ShedCause::RetriesExhausted), 1);
    assert_eq!(run.report.replays, 1);
}

#[test]
fn builtin_scenarios_run_end_to_end_and_reproduce() {
    let m = model();
    let cfg = FleetConfig {
        workers: 2,
        batch_per_worker: 2,
        queue_depth: 4,
        max_retries: 2,
        slo_queue_ticks: Some(16),
        ..FleetConfig::default()
    };
    for name in ScenarioSpec::builtin_names() {
        let spec = ScenarioSpec::builtin(name).unwrap();
        let traffic = spec.generate(m.config().vocab_size, m.n_layers());
        let a = run_fleet(&m, &cfg, &traffic).unwrap();
        let b = run_fleet(&m, &cfg, &traffic).unwrap();
        assert_eq!(
            a.outcomes.len(),
            traffic.len(),
            "{name}: every session is accounted for"
        );
        assert_eq!(a.outcomes, b.outcomes, "{name}: outcomes reproduce");
        assert_eq!(
            deterministic_report(&a),
            deterministic_report(&b),
            "{name}: report reproduces"
        );
        assert_eq!(
            a.report.served + a.report.total_shed(),
            traffic.len(),
            "{name}: served + shed covers the traffic"
        );
    }
}

#[test]
fn rejected_sessions_flow_through_the_fleet_as_engine_rejections() {
    let m = model();
    let mut bad = request(&m, "bad", 1);
    bad.prompt = vec![99_999];
    let traffic = vec![
        FleetRequest {
            req: bad,
            priority: 1,
            submit_tick: 0,
        },
        arrival(&m, "good", 1, 0),
    ];
    let run = run_fleet(&m, &FleetConfig::default(), &traffic).unwrap();
    assert!(matches!(
        run.outcome("bad").unwrap().finish,
        SessionFinish::Served(FinishReason::Rejected { .. })
    ));
    assert!(matches!(
        run.outcome("good").unwrap().finish,
        SessionFinish::Served(FinishReason::Completed)
    ));
}
