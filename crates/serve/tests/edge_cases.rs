//! Serving-engine edge cases: eviction-cause accounting under deadline
//! and capacity pressure, admission when every slot retires at once, and
//! zero-capacity configuration errors.

use edge_llm_model::{Decoding, EdgeModel, ModelConfig, VotingPolicy};
use edge_llm_serve::{BatchedInferenceEngine, FinishReason, ServeError, ServeRequest};
use edge_llm_tensor::TensorRng;

fn model() -> EdgeModel {
    let mut rng = TensorRng::seed_from(7);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

fn request(model: &EdgeModel, id: &str, seed: u64) -> ServeRequest {
    ServeRequest {
        id: id.into(),
        prompt: vec![1, 2, 3],
        max_new_tokens: 3,
        decoding: Decoding::Greedy,
        voting: VotingPolicy::final_only(model.n_layers()),
        seed,
        deadline_steps: None,
        tenant: None,
    }
}

#[test]
fn eviction_causes_are_accounted_per_reason() {
    let m = model();
    let mut engine = BatchedInferenceEngine::new(&m, 4).unwrap();

    // completes normally
    engine.submit(request(&m, "done", 1));
    // deadline of 2 fed tokens trips during the 3-token prompt
    let mut dl = request(&m, "late", 2);
    dl.deadline_steps = Some(2);
    engine.submit(dl);
    // token budget larger than the KV capacity (seq_len 8): the cache
    // fills before the budget is spent
    let mut cap = request(&m, "big", 3);
    cap.max_new_tokens = 100;
    engine.submit(cap);
    // invalid prompt: rejected at submission, never occupies a slot
    let mut bad = request(&m, "bad", 4);
    bad.prompt = vec![99_999];
    engine.submit(bad);

    let outcomes = engine.run_to_completion().unwrap();
    assert_eq!(outcomes.len(), 4);
    let finish = |id: &str| &outcomes.iter().find(|o| o.id == id).unwrap().finish;
    assert_eq!(*finish("done"), FinishReason::Completed);
    assert_eq!(*finish("late"), FinishReason::DeadlineExceeded);
    assert_eq!(*finish("big"), FinishReason::CapacityExhausted);
    assert!(matches!(*finish("bad"), FinishReason::Rejected { .. }));

    // the report's cause tallies must match the outcomes exactly
    let report = engine.report();
    assert_eq!(report.completed, 1);
    assert_eq!(report.deadline_exceeded, 1);
    assert_eq!(report.capacity_exhausted, 1);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.steps, engine.steps_run());
    // three admissions produced queue-wait samples; every generated
    // token produced a decode-latency sample
    assert_eq!(report.queue_wait.count, 3);
    let generated: usize = outcomes.iter().map(|o| o.tokens.len()).sum();
    assert_eq!(report.decode_token.count, generated);
    assert!(report.queue_wait.p50_ns <= report.queue_wait.max_ns);
    assert!(report.decode_token.p50_ns <= report.decode_token.p95_ns);
}

#[test]
fn deadline_vs_capacity_priority_is_deterministic() {
    // A request that hits its deadline on the same step the KV cache
    // fills must always be reported as deadline (the solo reference
    // checks completed -> deadline -> capacity in that order).
    let m = model();
    let mut engine = BatchedInferenceEngine::new(&m, 1).unwrap();
    let mut r = request(&m, "both", 5);
    r.max_new_tokens = 100; // never completes by budget
    r.deadline_steps = Some(8); // deadline == KV capacity (seq_len 8)
    engine.submit(r);
    let outcomes = engine.run_to_completion().unwrap();
    assert_eq!(outcomes[0].finish, FinishReason::DeadlineExceeded);
    let report = engine.report();
    assert_eq!(report.deadline_exceeded, 1);
    assert_eq!(report.capacity_exhausted, 0);
}

#[test]
fn admission_when_all_slots_retire_at_once() {
    // Five zero-budget requests through a two-slot engine: every
    // admission immediately satisfies its finish condition, so each
    // retire/admit cycle drains freed slots without a forward pass.
    let m = model();
    let mut engine = BatchedInferenceEngine::new(&m, 2).unwrap();
    for i in 0..5 {
        let mut r = request(&m, &format!("z{i}"), i);
        r.max_new_tokens = 0;
        engine.submit(r);
    }
    let outcomes = engine.run_to_completion().unwrap();
    assert_eq!(outcomes.len(), 5);
    assert!(outcomes
        .iter()
        .all(|o| o.finish == FinishReason::Completed && o.tokens.is_empty()));
    assert_eq!(engine.steps_run(), 0, "no forward pass was needed");
    let report = engine.report();
    assert_eq!(report.completed, 5);
    assert_eq!(report.queue_wait.count, 5, "every request was admitted");
    assert_eq!(report.decode_token.count, 0);
    assert!(engine.is_idle());
}

#[test]
fn zero_capacity_engine_is_a_typed_error() {
    let m = model();
    let err = BatchedInferenceEngine::new(&m, 0)
        .expect_err("zero-slot engine must be refused, not panic");
    // Typed, not stringly: callers can match on the exact cause.
    assert_eq!(
        err,
        ServeError::ZeroCapacity {
            what: "batch slots"
        }
    );
    assert!(err.to_string().contains("batch slots"));
}

#[test]
fn report_on_fresh_engine_is_all_zero() {
    let m = model();
    let engine = BatchedInferenceEngine::new(&m, 2).unwrap();
    let report = engine.report();
    assert_eq!(report, edge_llm_serve::EngineReport::default());
}
