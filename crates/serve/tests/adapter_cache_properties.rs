//! Property tests for [`AdapterCache`]: under randomized
//! register/acquire/re-register/budget-change traces,
//!
//! 1. resident bytes never exceed the budget — not even transiently
//!    observable after any operation;
//! 2. eviction is true LRU: the victim is always the least-recently
//!    *used* resident adapter (inserts and hits both refresh recency);
//! 3. hits + misses + evictions recount exactly from the trace replayed
//!    against an in-test reference model of the cache.

use edge_llm_model::{AdapterTarget, EdgeModel, ModelConfig, TenantAdapter};
use edge_llm_serve::AdapterCache;
use edge_llm_tensor::check::{run_cases, Gen};
use edge_llm_tensor::TensorRng;

fn tiny_model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

/// A small pool of distinct adapters with varied byte footprints (rank
/// and site count vary, so evicting one tenant may or may not make room
/// for another).
fn adapter_pool(model: &EdgeModel, g: &mut Gen) -> Vec<(String, TenantAdapter)> {
    let cfg = model.config();
    (0..g.usize_in(2, 6))
        .map(|t| {
            let sites: Vec<(usize, AdapterTarget)> = AdapterTarget::ALL
                .into_iter()
                .take(g.usize_in(1, AdapterTarget::ALL.len() + 1))
                .map(|target| (g.usize_in(0, cfg.n_layers), target))
                .collect();
            (
                format!("t{t}"),
                TenantAdapter::seeded(cfg, g.u64(), g.usize_in(1, 4), &sites),
            )
        })
        .collect()
}

/// Pure reference model of the cache's accounting: a recency-ordered
/// list of (tenant, bytes), oldest first.
#[derive(Default)]
struct Reference {
    resident: Vec<(String, usize)>,
    budget: usize,
    hits: u64,
    misses: u64,
    evictions_lru: u64,
    evictions_replaced: u64,
}

impl Reference {
    fn bytes(&self) -> usize {
        self.resident.iter().map(|(_, b)| b).sum()
    }

    fn evict_to_budget(&mut self) {
        while self.bytes() > self.budget {
            self.resident.remove(0);
            self.evictions_lru += 1;
        }
    }

    fn acquire(&mut self, tenant: &str, bytes: usize) {
        if let Some(i) = self.resident.iter().position(|(t, _)| t == tenant) {
            let entry = self.resident.remove(i);
            self.resident.push(entry);
            self.hits += 1;
        } else {
            self.misses += 1;
            self.resident.push((tenant.to_string(), bytes));
            self.evict_to_budget();
        }
    }

    fn replace(&mut self, tenant: &str) {
        if let Some(i) = self.resident.iter().position(|(t, _)| t == tenant) {
            self.resident.remove(i);
            self.evictions_replaced += 1;
        }
    }

    fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
        self.evict_to_budget();
    }
}

#[test]
fn randomized_traces_hold_budget_lru_order_and_exact_counters() {
    let model = tiny_model(51);
    run_cases("adapter_cache_trace", 24, |g| {
        let pool = adapter_pool(&model, g);
        let sizes: Vec<usize> = pool.iter().map(|(_, a)| a.bytes()).collect();
        let max_size = *sizes.iter().max().unwrap();
        let budget = g.usize_in(max_size / 2, 3 * max_size);

        let mut cache = AdapterCache::with_budget(budget);
        let mut reference = Reference {
            budget,
            ..Reference::default()
        };
        for (tenant, adapter) in &pool {
            cache.register(tenant, adapter.clone());
        }

        for _ in 0..g.usize_in(5, 40) {
            let i = g.usize_in(0, pool.len());
            let (tenant, adapter) = &pool[i];
            match g.usize_in(0, 10) {
                // mostly acquires — the hot path
                0..=6 => {
                    let got = cache.acquire(tenant, &model).unwrap();
                    assert!(got.is_some(), "registered tenant must resolve");
                    reference.acquire(tenant, sizes[i]);
                }
                7 => {
                    let missing = cache.acquire("unregistered", &model).unwrap();
                    assert!(missing.is_none(), "unknown tenant must be None");
                    // by design: not a hit, not a miss, nothing resident
                }
                8 => {
                    cache.register(tenant, adapter.clone());
                    reference.replace(tenant);
                }
                _ => {
                    let next = g.usize_in(max_size / 2, 3 * max_size);
                    cache.set_budget_bytes(next);
                    reference.set_budget(next);
                }
            }

            // 1. the budget invariant holds after every single operation
            assert!(
                cache.resident_bytes() <= cache.budget_bytes(),
                "resident {} exceeds budget {}",
                cache.resident_bytes(),
                cache.budget_bytes()
            );
            // 2. true LRU: the exact resident set (and bytes) match the
            //    recency-ordered reference after every operation
            let mut got = cache.resident_by_tenant();
            got.sort();
            let mut want = reference.resident.clone();
            want.sort();
            assert_eq!(got, want, "resident set diverged from LRU reference");
        }

        // 3. every counter recounts exactly from the replayed trace
        assert_eq!(cache.hits(), reference.hits, "hits");
        assert_eq!(cache.misses(), reference.misses, "misses");
        assert_eq!(
            cache.evictions_lru(),
            reference.evictions_lru,
            "lru evictions"
        );
        assert_eq!(
            cache.evictions_replaced(),
            reference.evictions_replaced,
            "replaced evictions"
        );
    });
}

#[test]
fn lru_victim_is_always_the_coldest_tenant() {
    // deterministic three-tenant walk: A, B resident; touching A then
    // admitting C must evict B (the coldest), never A
    let model = tiny_model(52);
    let cfg = model.config();
    let adapter = |seed| TenantAdapter::seeded(cfg, seed, 1, &[(0, AdapterTarget::Qkv)]);
    let one = adapter(1).bytes();
    let mut cache = AdapterCache::with_budget(2 * one);
    for (t, s) in [("a", 1u64), ("b", 2), ("c", 3)] {
        cache.register(t, adapter(s));
    }
    cache.acquire("a", &model).unwrap();
    cache.acquire("b", &model).unwrap();
    cache.acquire("a", &model).unwrap(); // refresh a: b is now coldest
    cache.acquire("c", &model).unwrap();
    assert!(cache.is_resident("a"), "recently-used tenant survived");
    assert!(!cache.is_resident("b"), "coldest tenant was the victim");
    assert!(cache.is_resident("c"));
    assert_eq!(cache.evictions_lru(), 1);
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 3);
}
