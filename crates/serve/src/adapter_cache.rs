//! Bytes-budgeted LRU cache of resolved per-tenant adapters.
//!
//! One frozen base serves every tenant; the only per-tenant weight state
//! is each tenant's low-rank adapter. On an edge device even that state
//! is budgeted, so the cache splits tenant adapters into two tiers,
//! modeled on the engine's KV-slot eviction:
//!
//! - a **registry** of every tenant the engine knows (the cold store —
//!   registering is cheap and never evicts another tenant's knowledge);
//! - a **resident** set of resolved adapters whose factor bytes fit the
//!   configured budget, managed LRU by admission order of use.
//!
//! [`AdapterCache::acquire`] is the only way decode paths get an
//! adapter: a hit bumps recency, a miss resolves from the registry and
//! evicts true-LRU residents until the budget holds again. Slots hold
//! `Arc`s, so evicting a tenant mid-stream never breaks the sessions
//! already decoding with it — eviction only means the *next* admission
//! pays the re-load. Every transition bumps a typed counter
//! (`serve.adapter.hit` / `serve.adapter.miss` /
//! [`ShedCause::AdapterLru`] / [`ShedCause::AdapterReplaced`]).

use crate::shed::ShedCause;
use edge_llm_model::{EdgeModel, ModelError, ResolvedAdapter, TenantAdapter};
use edge_llm_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-tenant LRU adapter cache (see module docs).
#[derive(Debug, Clone)]
pub struct AdapterCache {
    /// Every registered tenant's portable adapter (the cold store).
    registry: BTreeMap<String, TenantAdapter>,
    /// Resident resolved adapters with their LRU recency stamp.
    resident: BTreeMap<String, (Arc<ResolvedAdapter>, u64)>,
    /// Monotonic recency clock; higher = more recently used.
    clock: u64,
    budget_bytes: usize,
    hits: u64,
    misses: u64,
    evictions_lru: u64,
    evictions_replaced: u64,
}

impl AdapterCache {
    /// An empty cache with an effectively unlimited budget.
    pub fn new() -> Self {
        AdapterCache::with_budget(usize::MAX)
    }

    /// An empty cache that keeps at most `budget_bytes` of resident
    /// adapter factors.
    pub fn with_budget(budget_bytes: usize) -> Self {
        AdapterCache {
            registry: BTreeMap::new(),
            resident: BTreeMap::new(),
            clock: 0,
            budget_bytes,
            hits: 0,
            misses: 0,
            evictions_lru: 0,
            evictions_replaced: 0,
        }
    }

    /// Changes the bytes budget and immediately evicts LRU residents
    /// until the new budget holds.
    pub fn set_budget_bytes(&mut self, budget_bytes: usize) {
        self.budget_bytes = budget_bytes;
        self.evict_to_budget();
    }

    /// The configured bytes budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Registers (or replaces) `tenant`'s adapter. A replaced tenant's
    /// resident copy is dropped ([`ShedCause::AdapterReplaced`]) so no
    /// *new* admission can keep decoding with the stale version;
    /// sessions already holding the old `Arc` finish on it, exactly like
    /// a retired KV slot draining.
    pub fn register(&mut self, tenant: &str, adapter: TenantAdapter) {
        if self.registry.insert(tenant.to_string(), adapter).is_some()
            && self.resident.remove(tenant).is_some()
        {
            self.evictions_replaced += 1;
            telemetry::counter(ShedCause::AdapterReplaced.counter_name(), 1);
        }
    }

    /// Whether `tenant` has a registered adapter.
    pub fn knows(&self, tenant: &str) -> bool {
        self.registry.contains_key(tenant)
    }

    /// Resolves `tenant`'s adapter for a slot: a resident hit bumps
    /// recency; a miss resolves from the registry, makes the adapter
    /// resident, and evicts least-recently-used tenants until the bytes
    /// budget holds (which may evict the just-loaded adapter itself when
    /// it alone exceeds the budget — the returned `Arc` still serves the
    /// requesting slot).
    ///
    /// Returns `None` for an unknown tenant.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] when the registered adapter does not fit
    /// `model` (wrong shapes or layers).
    pub fn acquire(
        &mut self,
        tenant: &str,
        model: &EdgeModel,
    ) -> Result<Option<Arc<ResolvedAdapter>>, ModelError> {
        self.clock += 1;
        if let Some((arc, stamp)) = self.resident.get_mut(tenant) {
            *stamp = self.clock;
            self.hits += 1;
            telemetry::counter("serve.adapter.hit", 1);
            return Ok(Some(Arc::clone(arc)));
        }
        let Some(portable) = self.registry.get(tenant) else {
            return Ok(None);
        };
        let resolved = Arc::new(portable.resolve(model)?);
        self.misses += 1;
        telemetry::counter("serve.adapter.miss", 1);
        self.resident
            .insert(tenant.to_string(), (Arc::clone(&resolved), self.clock));
        self.evict_to_budget();
        Ok(Some(resolved))
    }

    /// Evicts LRU residents until `resident_bytes() <= budget`. The
    /// just-admitted adapter is as evictable as any other (it is the MRU,
    /// so it only goes when it alone exceeds the budget), which makes the
    /// budget invariant unconditional.
    fn evict_to_budget(&mut self) {
        while self.resident_bytes() > self.budget_bytes {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { break };
            self.resident.remove(&victim);
            self.evictions_lru += 1;
            telemetry::counter(ShedCause::AdapterLru.counter_name(), 1);
        }
    }

    /// Total factor bytes of resident adapters.
    pub fn resident_bytes(&self) -> usize {
        self.resident.values().map(|(a, _)| a.bytes()).sum()
    }

    /// `(tenant, resident factor bytes)` for every resident adapter, in
    /// tenant order — the `EngineReport` per-tenant breakdown.
    pub fn resident_by_tenant(&self) -> Vec<(String, usize)> {
        self.resident
            .iter()
            .map(|(name, (a, _))| (name.clone(), a.bytes()))
            .collect()
    }

    /// Whether `tenant`'s adapter is currently resident.
    pub fn is_resident(&self, tenant: &str) -> bool {
        self.resident.contains_key(tenant)
    }

    /// Resident-hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss (re-load) count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions since construction.
    pub fn evictions_lru(&self) -> u64 {
        self.evictions_lru
    }

    /// Replacement evictions since construction.
    pub fn evictions_replaced(&self) -> u64 {
        self.evictions_replaced
    }
}

impl Default for AdapterCache {
    fn default() -> Self {
        AdapterCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_model::{AdapterTarget, ModelConfig};
    use edge_llm_tensor::TensorRng;

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(1);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn adapter(cfg: &ModelConfig, seed: u64) -> TenantAdapter {
        TenantAdapter::seeded(cfg, seed, 1, &[(0, AdapterTarget::Proj)])
    }

    #[test]
    fn unknown_tenant_is_none_and_uncounted() {
        let m = model();
        let mut cache = AdapterCache::new();
        assert!(cache.acquire("ghost", &m).unwrap().is_none());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn miss_then_hit_then_lru_eviction() {
        let m = model();
        let cfg = m.config().clone();
        let one = adapter(&cfg, 1).bytes();
        // room for exactly two resident adapters
        let mut cache = AdapterCache::with_budget(2 * one);
        for t in ["a", "b", "c"] {
            cache.register(t, adapter(&cfg, t.len() as u64));
        }
        assert!(cache.acquire("a", &m).unwrap().is_some()); // miss
        assert!(cache.acquire("b", &m).unwrap().is_some()); // miss
        assert!(cache.acquire("a", &m).unwrap().is_some()); // hit, bumps a
        assert!(cache.acquire("c", &m).unwrap().is_some()); // miss, evicts b
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.evictions_lru(), 1);
        assert!(cache.is_resident("a") && cache.is_resident("c"));
        assert!(!cache.is_resident("b"));
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        // b is still registered: the next acquire re-loads it
        assert!(cache.acquire("b", &m).unwrap().is_some());
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn oversized_adapter_serves_but_does_not_stay() {
        let m = model();
        let cfg = m.config().clone();
        let ad = adapter(&cfg, 9);
        let mut cache = AdapterCache::with_budget(ad.bytes() / 2);
        cache.register("big", ad);
        let got = cache.acquire("big", &m).unwrap();
        assert!(got.is_some());
        assert!(!cache.is_resident("big"));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn re_register_drops_resident_copy() {
        let m = model();
        let cfg = m.config().clone();
        let mut cache = AdapterCache::new();
        cache.register("t", adapter(&cfg, 1));
        cache.acquire("t", &m).unwrap();
        assert!(cache.is_resident("t"));
        cache.register("t", adapter(&cfg, 2));
        assert!(!cache.is_resident("t"));
        assert_eq!(cache.evictions_replaced(), 1);
        // registering a brand-new tenant counts nothing
        cache.register("u", adapter(&cfg, 3));
        assert_eq!(cache.evictions_replaced(), 1);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let m = model();
        let cfg = m.config().clone();
        let mut cache = AdapterCache::new();
        for t in ["a", "b"] {
            cache.register(t, adapter(&cfg, 5));
            cache.acquire(t, &m).unwrap();
        }
        assert_eq!(cache.resident_by_tenant().len(), 2);
        cache.set_budget_bytes(0);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.evictions_lru(), 2);
    }

    #[test]
    fn misfit_adapter_resolution_fails_loudly() {
        let m = model();
        let other = ModelConfig::tiny().with_d_model(32, 4);
        let mut cache = AdapterCache::new();
        cache.register("wrong", adapter(&other, 1));
        assert!(cache.acquire("wrong", &m).is_err());
    }
}
