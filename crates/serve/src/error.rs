//! Typed serving-layer errors.
//!
//! Construction and fleet-level failures used to surface as generic
//! `BadConfig` strings; callers (and tests) could only match on message
//! text. This module gives the serving layer its own error enum so a
//! zero-capacity engine, an exhausted retry budget, and an internal
//! model failure are distinguishable without string inspection. The
//! pipeline wraps it as `EdgeLlmError::Serve`.

use crate::shed::ShedCause;
use edge_llm_model::ModelError;
use std::error::Error;
use std::fmt;

/// Error type for serving-engine and fleet construction/operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A capacity knob (batch slots, fleet workers, queue bound) was
    /// configured as zero — the component could never make progress.
    ZeroCapacity {
        /// Which knob was zero.
        what: &'static str,
    },
    /// A session's worker crashed more times than the fleet's retry
    /// budget allows; the session was shed rather than replayed again.
    RetriesExhausted {
        /// The session's request id.
        id: String,
        /// Replay attempts consumed before giving up.
        retries: usize,
    },
    /// A session was shed by the fleet router for a non-retry cause
    /// (queue overflow, displacement, SLO expiry).
    Shed {
        /// The session's request id.
        id: String,
        /// Why the router dropped it.
        cause: ShedCause,
    },
    /// The underlying model failed.
    Model(ModelError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroCapacity { what } => {
                write!(f, "{what} must be at least 1")
            }
            ServeError::RetriesExhausted { id, retries } => {
                write!(f, "session {id} shed after {retries} crash-replay retries")
            }
            ServeError::Shed { id, cause } => {
                write!(f, "session {id} shed: {}", cause.label())
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            ServeError::ZeroCapacity { .. }
            | ServeError::RetriesExhausted { .. }
            | ServeError::Shed { .. } => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_zero_knob() {
        let e = ServeError::ZeroCapacity {
            what: "batch slots",
        };
        assert!(e.to_string().contains("batch slots"));
        assert!(e.source().is_none());
    }

    #[test]
    fn retries_exhausted_reports_session_and_count() {
        let e = ServeError::RetriesExhausted {
            id: "r7".into(),
            retries: 3,
        };
        let text = e.to_string();
        assert!(text.contains("r7") && text.contains('3'), "{text}");
    }

    #[test]
    fn shed_reports_session_and_cause() {
        let e = ServeError::Shed {
            id: "s3".into(),
            cause: ShedCause::QueueFull,
        };
        let text = e.to_string();
        assert!(text.contains("s3") && text.contains("queue-full"), "{text}");
    }

    #[test]
    fn model_errors_wrap_with_source() {
        let e = ServeError::from(ModelError::BadConfig { reason: "x".into() });
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
    }
}
