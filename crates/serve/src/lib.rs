//! Batched serving engine with continuous batching over KV-cached
//! sessions.
//!
//! An adapted Edge-LLM model on a device rarely serves one request at a
//! time: an assistant handles overlapping queries, and the matmul kernels
//! amortise much better over several rows than over one. This crate turns
//! the single-sequence [`edge_llm_model::InferenceSession`] decode loop
//! into a [`BatchedInferenceEngine`] that packs every in-flight request's
//! next token into one shared forward pass per step
//! ([`edge_llm_model::batched_decode_step`]), admitting queued requests
//! the moment a slot frees up (continuous batching) rather than waiting
//! for a whole batch to finish.
//!
//! The engine's contract is strict: **every request's token stream is
//! bit-identical to running it alone** through a single-sequence session
//! ([`run_solo`] is that independently-written reference), for any
//! interleaving of arrivals, any batch size, and any thread count. The
//! differential test suite (`tests/serving_equivalence.rs` at the
//! workspace root) pins this down over randomized request mixes.
//!
//! # Example
//!
//! ```
//! use edge_llm_model::{Decoding, EdgeModel, ModelConfig, VotingPolicy};
//! use edge_llm_serve::{BatchedInferenceEngine, FinishReason, ServeRequest};
//! use edge_llm_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = TensorRng::seed_from(0);
//! let model = EdgeModel::new(ModelConfig::tiny(), &mut rng)?;
//! let mut engine = BatchedInferenceEngine::new(&model, 4)?;
//! engine.submit(ServeRequest {
//!     id: "greeting".into(),
//!     prompt: vec![1, 2, 3],
//!     max_new_tokens: 4,
//!     decoding: Decoding::Greedy,
//!     voting: VotingPolicy::final_only(model.n_layers()),
//!     seed: 7,
//!     deadline_steps: None,
//!     tenant: None,
//! });
//! let outcomes = engine.run_to_completion()?;
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].finish, FinishReason::Completed);
//! assert_eq!(outcomes[0].tokens.len(), 4);
//! # Ok(())
//! # }
//! ```

mod adapter_cache;
mod engine;
mod error;
mod request;
mod shed;
mod solo;

pub use adapter_cache::AdapterCache;
pub use edge_llm_telemetry::LatencySummary;
pub use engine::{BatchedInferenceEngine, EngineReport, SessionProgress};
pub use error::ServeError;
pub use request::{validate_request, FinishReason, ServeOutcome, ServeRequest};
pub use shed::ShedCause;
pub use solo::{run_solo, run_solo_with_adapter};
