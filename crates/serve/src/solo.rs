//! Single-sequence reference implementation of the serving semantics.
//!
//! [`run_solo`] executes one request through a plain
//! [`InferenceSession`] with the same per-token finish checks as the
//! batched engine, but none of its machinery: no queue, no slots, no
//! shared forward passes. It is the oracle the differential tests compare
//! [`crate::BatchedInferenceEngine`] against — any divergence in tokens,
//! finish reason, consumed steps, or final probabilities is an engine
//! bug.

use crate::request::{validate_request, FinishReason, ServeOutcome, ServeRequest};
use edge_llm_model::{
    combine, sample_token, Decoding, EdgeModel, InferenceSession, ModelError, ResolvedAdapter,
};
use edge_llm_tensor::TensorRng;
use std::sync::Arc;

/// Runs `req` alone through a fresh [`InferenceSession`] and returns the
/// outcome the batched engine is required to reproduce bit-for-bit.
/// `req.tenant` is ignored here — resolving a tenant id to an adapter is
/// the engine's job; pass the adapter itself to
/// [`run_solo_with_adapter`] for the multi-tenant oracle.
///
/// # Errors
///
/// Validation failures are reported *in* the outcome
/// ([`FinishReason::Rejected`]), matching the engine; an `Err` only
/// signals an internal model failure.
pub fn run_solo(model: &EdgeModel, req: &ServeRequest) -> Result<ServeOutcome, ModelError> {
    run_solo_with_adapter(model, req, None)
}

/// [`run_solo`] with a tenant adapter attached to the session — the
/// solo-with-merged-adapter oracle of the multi-tenant differential
/// tests: a tenant's stream under mixed-tenant batching must reproduce
/// this outcome bit-for-bit.
///
/// # Errors
///
/// As [`run_solo`].
pub fn run_solo_with_adapter(
    model: &EdgeModel,
    req: &ServeRequest,
    adapter: Option<Arc<ResolvedAdapter>>,
) -> Result<ServeOutcome, ModelError> {
    if let Err(e) = validate_request(model, req) {
        return Ok(ServeOutcome {
            id: req.id.clone(),
            tokens: Vec::new(),
            finish: FinishReason::Rejected {
                reason: e.to_string(),
            },
            steps: 0,
            final_probs: None,
        });
    }
    let mut session = InferenceSession::new(model);
    session.set_adapter(adapter);
    let mut rng = TensorRng::seed_from(req.seed);
    let mut known = req.prompt.clone();
    let mut fed = 0usize;
    let mut generated = 0usize;
    let mut last_probs: Option<Vec<f32>> = None;
    // Same per-token loop as one engine slot: finish checks first, then
    // feed exactly one token, computing logits only on the last known
    // token (everything earlier is prompt prefill).
    let finish = loop {
        if generated == req.max_new_tokens {
            break FinishReason::Completed;
        }
        if let Some(d) = req.deadline_steps {
            if fed >= d {
                break FinishReason::DeadlineExceeded;
            }
        }
        if session.remaining() == 0 {
            break FinishReason::CapacityExhausted;
        }
        let token = known[fed];
        if fed == known.len() - 1 {
            if let Decoding::SelfSpeculative { draft_depth, k } = req.decoding {
                // One draft/verify round may emit several tokens; each is
                // the verifier's greedy pick, so the stream is identical
                // to plain greedy decode. Tokens past the remaining
                // budget are dropped and the cache rolled back with
                // them, keeping `fed` equal to what greedy would have
                // consumed at retirement.
                let round = session.speculative_round(token, draft_depth, k)?;
                let keep = round.accepted.len().min(req.max_new_tokens - generated);
                if keep < round.accepted.len() {
                    session.truncate(session.len() - (round.accepted.len() - keep));
                }
                known.extend_from_slice(&round.accepted[..keep]);
                generated += keep;
                last_probs = Some(round.probs[keep - 1].clone());
                fed += keep;
            } else {
                let exit_logits = session.push_token_exits(token, &req.voting.exits)?;
                let probs = combine(&exit_logits, &req.voting.combiner)?;
                let next = sample_token(probs.row(0), req.decoding, &mut rng);
                last_probs = Some(probs.row(0).to_vec());
                known.push(next);
                generated += 1;
                fed += 1;
            }
        } else {
            session.advance_token(token)?;
            fed += 1;
        }
    };
    Ok(ServeOutcome {
        id: req.id.clone(),
        tokens: known[req.prompt.len()..].to_vec(),
        finish,
        steps: fed,
        final_probs: last_probs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_model::{Decoding, ModelConfig, VotingPolicy};

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(0);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn request(model: &EdgeModel) -> ServeRequest {
        ServeRequest {
            id: "r".into(),
            prompt: vec![1, 2, 3],
            max_new_tokens: 3,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 11,
            deadline_steps: None,
            tenant: None,
        }
    }

    #[test]
    fn completes_and_reports_steps() {
        let m = model();
        let out = run_solo(&m, &request(&m)).unwrap();
        assert_eq!(out.finish, FinishReason::Completed);
        assert_eq!(out.tokens.len(), 3);
        // 3 prompt tokens + 2 generated tokens fed (the last generated
        // token is never consumed)
        assert_eq!(out.steps, 5);
        assert!(out.final_probs.is_some());
    }

    #[test]
    fn deadline_cuts_generation_short() {
        let m = model();
        let mut r = request(&m);
        r.deadline_steps = Some(3); // exactly the prompt
        let out = run_solo(&m, &r).unwrap();
        assert_eq!(out.finish, FinishReason::DeadlineExceeded);
        assert_eq!(out.tokens.len(), 1, "prefill ends on the last prompt token");
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn capacity_evicts_gracefully() {
        let m = model();
        let mut r = request(&m);
        r.max_new_tokens = m.config().seq_len * 2;
        let out = run_solo(&m, &r).unwrap();
        assert_eq!(out.finish, FinishReason::CapacityExhausted);
        assert_eq!(out.steps, m.config().seq_len);
    }

    #[test]
    fn zero_tokens_completes_without_running() {
        let m = model();
        let mut r = request(&m);
        r.max_new_tokens = 0;
        let out = run_solo(&m, &r).unwrap();
        assert_eq!(out.finish, FinishReason::Completed);
        assert!(out.tokens.is_empty());
        assert_eq!(out.steps, 0);
        assert!(out.final_probs.is_none());
    }

    #[test]
    fn invalid_request_is_rejected_not_erred() {
        let m = model();
        let mut r = request(&m);
        r.prompt = vec![99_999];
        let out = run_solo(&m, &r).unwrap();
        assert!(matches!(out.finish, FinishReason::Rejected { .. }));
    }
}
