//! Typed retirement/shed causes shared by the engine and the fleet.
//!
//! The engine's eviction counters and the fleet's overload-shedding
//! counters used to be loose string literals scattered across call
//! sites; [`ShedCause`] makes the full cause vocabulary one enum, so the
//! telemetry names, report tallies, and tests all agree on the set of
//! ways a session can leave the system.

use crate::request::FinishReason;

/// Why a session left the serving system — either retired by an engine
/// (the first four causes, mirroring [`FinishReason`]) or shed by the
/// fleet router before/after reaching a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShedCause {
    /// Generated its full token budget.
    Completed,
    /// Hit its per-request `deadline_steps` budget.
    DeadlineExceeded,
    /// Ran out of KV-cache positions.
    CapacityExhausted,
    /// Failed validation and never ran.
    Rejected,
    /// Arrived while every bounded worker queue was full and no queued
    /// session had lower priority.
    QueueFull,
    /// Removed from a full queue to make room for a higher-priority
    /// arrival.
    Displaced,
    /// Waited in the router queue past its admission SLO budget.
    SloExpired,
    /// Lost its worker more times than the crash-replay retry budget.
    RetriesExhausted,
    /// A tenant's resident adapter was evicted as the least recently
    /// used entry to fit the adapter cache's bytes budget (sessions
    /// holding it keep decoding; the next admission re-loads it).
    AdapterLru,
    /// A tenant's resident adapter was dropped because the tenant
    /// re-registered a new adapter version.
    AdapterReplaced,
}

impl ShedCause {
    /// The telemetry counter bumped when this cause fires. Engine-level
    /// causes keep the historical `serve.evict.*` names (traces written
    /// by older builds stay comparable); fleet-level causes live under
    /// `fleet.shed.*`.
    pub fn counter_name(self) -> &'static str {
        match self {
            ShedCause::Completed => "serve.evict.completed",
            ShedCause::DeadlineExceeded => "serve.evict.deadline",
            ShedCause::CapacityExhausted => "serve.evict.capacity",
            ShedCause::Rejected => "serve.evict.rejected",
            ShedCause::QueueFull => "fleet.shed.queue_full",
            ShedCause::Displaced => "fleet.shed.displaced",
            ShedCause::SloExpired => "fleet.shed.slo_expired",
            ShedCause::RetriesExhausted => "fleet.shed.retries_exhausted",
            ShedCause::AdapterLru => "serve.adapter.evict.lru",
            ShedCause::AdapterReplaced => "serve.adapter.evict.replaced",
        }
    }

    /// Short human-readable label (report tables, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            ShedCause::Completed => "completed",
            ShedCause::DeadlineExceeded => "deadline-exceeded",
            ShedCause::CapacityExhausted => "capacity-exhausted",
            ShedCause::Rejected => "rejected",
            ShedCause::QueueFull => "queue-full",
            ShedCause::Displaced => "displaced",
            ShedCause::SloExpired => "slo-expired",
            ShedCause::RetriesExhausted => "retries-exhausted",
            ShedCause::AdapterLru => "adapter-lru",
            ShedCause::AdapterReplaced => "adapter-replaced",
        }
    }

    /// Whether this cause is decided by the fleet router (as opposed to
    /// an engine retiring a running session).
    pub fn is_fleet_shed(self) -> bool {
        matches!(
            self,
            ShedCause::QueueFull
                | ShedCause::Displaced
                | ShedCause::SloExpired
                | ShedCause::RetriesExhausted
        )
    }

    /// Every cause, in a fixed report order.
    pub const ALL: [ShedCause; 10] = [
        ShedCause::Completed,
        ShedCause::DeadlineExceeded,
        ShedCause::CapacityExhausted,
        ShedCause::Rejected,
        ShedCause::QueueFull,
        ShedCause::Displaced,
        ShedCause::SloExpired,
        ShedCause::RetriesExhausted,
        ShedCause::AdapterLru,
        ShedCause::AdapterReplaced,
    ];
}

impl From<&FinishReason> for ShedCause {
    fn from(reason: &FinishReason) -> Self {
        match reason {
            FinishReason::Completed => ShedCause::Completed,
            FinishReason::DeadlineExceeded => ShedCause::DeadlineExceeded,
            FinishReason::CapacityExhausted => ShedCause::CapacityExhausted,
            FinishReason::Rejected { .. } => ShedCause::Rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counter_names_and_labels_are_distinct() {
        let names: HashSet<&str> = ShedCause::ALL.iter().map(|c| c.counter_name()).collect();
        assert_eq!(names.len(), ShedCause::ALL.len());
        let labels: HashSet<&str> = ShedCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ShedCause::ALL.len());
    }

    #[test]
    fn engine_causes_keep_historical_counter_names() {
        assert_eq!(ShedCause::Completed.counter_name(), "serve.evict.completed");
        assert_eq!(
            ShedCause::DeadlineExceeded.counter_name(),
            "serve.evict.deadline"
        );
        assert_eq!(
            ShedCause::CapacityExhausted.counter_name(),
            "serve.evict.capacity"
        );
        assert_eq!(ShedCause::Rejected.counter_name(), "serve.evict.rejected");
    }

    #[test]
    fn finish_reasons_map_onto_engine_causes() {
        assert_eq!(
            ShedCause::from(&FinishReason::Completed),
            ShedCause::Completed
        );
        assert_eq!(
            ShedCause::from(&FinishReason::Rejected { reason: "x".into() }),
            ShedCause::Rejected
        );
        assert!(!ShedCause::from(&FinishReason::DeadlineExceeded).is_fleet_shed());
        assert!(ShedCause::QueueFull.is_fleet_shed());
    }

    #[test]
    fn adapter_causes_are_engine_level() {
        assert_eq!(
            ShedCause::AdapterLru.counter_name(),
            "serve.adapter.evict.lru"
        );
        assert_eq!(
            ShedCause::AdapterReplaced.counter_name(),
            "serve.adapter.evict.replaced"
        );
        assert!(!ShedCause::AdapterLru.is_fleet_shed());
        assert!(!ShedCause::AdapterReplaced.is_fleet_shed());
    }
}
