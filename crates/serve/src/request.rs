//! Request and outcome types shared by the engine and the solo reference.

use edge_llm_model::{
    validate_decoding, Decoding, EdgeModel, ModelError, VotingCombiner, VotingPolicy,
};

/// One generation request submitted to the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Caller-chosen identifier echoed back in the outcome.
    pub id: String,
    /// Prompt tokens (must be non-empty and in-vocabulary).
    pub prompt: Vec<usize>,
    /// How many tokens to generate (0 completes immediately).
    pub max_new_tokens: usize,
    /// Sampling strategy for this request.
    pub decoding: Decoding,
    /// Early-exit voting policy for this request.
    pub voting: VotingPolicy,
    /// Seed for this request's private sampling rng — outputs depend only
    /// on this, never on batch-mates.
    pub seed: u64,
    /// Optional budget in *fed tokens* (prompt prefill plus generated
    /// tokens actually consumed by the model). Measured per request, not
    /// in wall-clock engine steps, so queue wait never counts against a
    /// request and the outcome is interleaving-independent.
    pub deadline_steps: Option<usize>,
    /// Tenant whose registered LoRA adapter this request decodes with
    /// (`None` = the frozen base alone). The engine rejects a request
    /// naming a tenant it has no adapter registered for.
    pub tenant: Option<String>,
}

/// Why a request left the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum FinishReason {
    /// Generated the full `max_new_tokens`.
    Completed,
    /// Hit its `deadline_steps` budget first.
    DeadlineExceeded,
    /// Ran out of KV-cache positions (`seq_len`) first.
    CapacityExhausted,
    /// Failed validation at submission and never ran.
    Rejected {
        /// Human-readable validation failure.
        reason: String,
    },
}

/// Per-request result reported by the engine (and by [`crate::run_solo`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// The request's identifier.
    pub id: String,
    /// Generated tokens only (prompt excluded).
    pub tokens: Vec<usize>,
    /// Why the request finished.
    pub finish: FinishReason,
    /// Tokens the model actually consumed for this request.
    pub steps: usize,
    /// Combined next-token distribution from the last generating step, for
    /// bitwise differential comparison against the solo path.
    pub final_probs: Option<Vec<f32>>,
}

/// Validates a request against a model without running anything — the
/// exact check [`crate::BatchedInferenceEngine::submit`] applies, shared
/// with the solo reference so both paths reject identically.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for an empty or out-of-vocabulary
/// prompt, an invalid decoding configuration, empty exits, or bad
/// combiner parameters, and [`ModelError::LayerOutOfRange`] for an exit
/// index past the model depth.
pub fn validate_request(model: &EdgeModel, req: &ServeRequest) -> Result<(), ModelError> {
    let vocab = model.config().vocab_size;
    if req.prompt.is_empty() {
        return Err(ModelError::BadConfig {
            reason: "empty prompt".into(),
        });
    }
    if let Some(&bad) = req.prompt.iter().find(|&&t| t >= vocab) {
        return Err(ModelError::BadConfig {
            reason: format!("prompt token {bad} outside vocabulary {vocab}"),
        });
    }
    validate_decoding(req.decoding)?;
    if let Decoding::SelfSpeculative { draft_depth, k } = req.decoding {
        edge_llm_model::validate_spec_params(model, draft_depth, k)?;
        // the verifier is the final exit's greedy token; a multi-exit
        // voting blend has nothing to verify against
        if req.voting.exits != [model.n_layers() - 1] {
            return Err(ModelError::BadConfig {
                reason: "self-speculative decoding verifies the final exit only; \
                         use a final-exit voting policy"
                    .into(),
            });
        }
    }
    if req.voting.exits.is_empty() {
        return Err(ModelError::BadConfig {
            reason: "voting policy needs at least one exit".into(),
        });
    }
    if let Some(&bad) = req.voting.exits.iter().find(|&&e| e >= model.n_layers()) {
        return Err(ModelError::LayerOutOfRange {
            layer: bad,
            depth: model.n_layers(),
        });
    }
    match &req.voting.combiner {
        VotingCombiner::LastExit | VotingCombiner::Average => {}
        VotingCombiner::ConfidenceWeighted { temperature } => {
            // NaN fails the finiteness check, so `<= 0.0` need not see it
            if !temperature.is_finite() || *temperature <= 0.0 {
                return Err(ModelError::BadConfig {
                    reason: "confidence temperature must be positive and finite".into(),
                });
            }
        }
        VotingCombiner::Learned(weights) => {
            if weights.len() != req.voting.exits.len() {
                return Err(ModelError::BadConfig {
                    reason: format!(
                        "{} learned weights for {} exits",
                        weights.len(),
                        req.voting.exits.len()
                    ),
                });
            }
            if weights.iter().any(|w| *w < 0.0 || !w.is_finite())
                || weights.iter().sum::<f32>() <= 0.0
            {
                return Err(ModelError::BadConfig {
                    reason: "learned weights must be non-negative with positive sum".into(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_model::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(0);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn base_request(model: &EdgeModel) -> ServeRequest {
        ServeRequest {
            id: "r".into(),
            prompt: vec![1, 2],
            max_new_tokens: 2,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed: 0,
            deadline_steps: None,
            tenant: None,
        }
    }

    #[test]
    fn accepts_well_formed_request() {
        let m = model();
        assert!(validate_request(&m, &base_request(&m)).is_ok());
    }

    #[test]
    fn rejects_bad_prompts() {
        let m = model();
        let mut r = base_request(&m);
        r.prompt.clear();
        assert!(validate_request(&m, &r).is_err());
        r.prompt = vec![99_999];
        assert!(validate_request(&m, &r).is_err());
    }

    #[test]
    fn rejects_bad_decoding_and_voting() {
        let m = model();
        let mut r = base_request(&m);
        r.decoding = Decoding::Sample { temperature: 0.0 };
        assert!(validate_request(&m, &r).is_err());

        let mut r = base_request(&m);
        r.voting.exits.clear();
        assert!(validate_request(&m, &r).is_err());

        let mut r = base_request(&m);
        r.voting.exits = vec![99];
        assert!(matches!(
            validate_request(&m, &r),
            Err(ModelError::LayerOutOfRange { .. })
        ));

        let mut r = base_request(&m);
        r.voting = VotingPolicy::all_exits(
            m.n_layers(),
            VotingCombiner::ConfidenceWeighted { temperature: -1.0 },
        );
        assert!(validate_request(&m, &r).is_err());

        let mut r = base_request(&m);
        r.voting.combiner = VotingCombiner::Learned(vec![0.5, 0.5]);
        assert!(
            validate_request(&m, &r).is_err(),
            "weight/exit length mismatch"
        );

        let mut r = base_request(&m);
        r.voting.combiner = VotingCombiner::Learned(vec![0.0]);
        assert!(validate_request(&m, &r).is_err(), "zero-sum weights");
    }
}
