//! The continuous-batching engine.

use crate::adapter_cache::AdapterCache;
use crate::error::ServeError;
use crate::request::{validate_request, FinishReason, ServeOutcome, ServeRequest};
use crate::shed::ShedCause;
use edge_llm_model::{
    batched_decode_step, combine, sample_token, spec_round_with_adapter, BatchedStep, Decoding,
    EdgeModel, ModelError, ResolvedAdapter, SequenceKv, TenantAdapter,
};
use edge_llm_telemetry::{self as telemetry, Clock, LatencySummary, MonotonicClock};
use edge_llm_tensor::TensorRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// One generated-token checkpoint captured by the engine when progress
/// capture is enabled: the token a session just accepted and the
/// sampling-rng state *after* drawing it. A router holding the stream of
/// these can replay the session's remaining tokens bit-identically on
/// another engine ([`BatchedInferenceEngine::submit_with_rng`] with the
/// prompt extended by the accepted tokens).
#[derive(Debug, Clone)]
pub struct SessionProgress {
    /// The owning request's id.
    pub id: String,
    /// The token just accepted into the session.
    pub token: usize,
    /// Sampling-rng state after the draw that produced `token`.
    pub rng: TensorRng,
}

/// One in-flight request bound to a batch slot.
#[derive(Debug)]
struct Slot {
    req: ServeRequest,
    kv: SequenceKv,
    rng: TensorRng,
    /// Prompt followed by every token generated so far.
    known: Vec<usize>,
    /// How many of `known` the model has consumed.
    fed: usize,
    generated: usize,
    last_probs: Option<Vec<f32>>,
    /// The tenant adapter acquired at admission. The slot holds its own
    /// `Arc`, so a cache eviction mid-stream never changes this slot's
    /// bits — eviction only makes the *next* admission re-load.
    adapter: Option<Arc<ResolvedAdapter>>,
}

/// Serves many requests through shared batched forward passes with
/// continuous batching: queued requests are admitted the moment a slot
/// frees up, mid-flight, rather than waiting for the whole batch to
/// drain.
///
/// Each call to [`BatchedInferenceEngine::step`] feeds exactly one token
/// from every active slot through [`batched_decode_step`]. Per-request
/// state (KV cache, sampling rng seeded from the request, deadline
/// accounting in fed tokens) is fully isolated, so every request's output
/// is bit-identical to [`crate::run_solo`] regardless of arrival order,
/// batch size, or thread count.
#[derive(Debug)]
pub struct BatchedInferenceEngine<'a> {
    model: &'a EdgeModel,
    slots: Vec<Option<Slot>>,
    queue: VecDeque<QueuedRequest>,
    finished: Vec<ServeOutcome>,
    /// Retired KV caches kept warm for the next admission (slot reuse).
    spare_kvs: Vec<SequenceKv>,
    steps_run: usize,
    /// Stamps queue-wait and decode latencies. Observational only: no
    /// clock reading ever influences a token, so a test can inject a
    /// [`edge_llm_telemetry::FakeClock`] without perturbing outputs.
    clock: Arc<dyn Clock>,
    stats: EngineStats,
    /// When set, every accepted token is recorded as a
    /// [`SessionProgress`] for the fleet router's replay log.
    capture_progress: bool,
    progress: Vec<SessionProgress>,
    /// Per-tenant LoRA adapters over the shared frozen base.
    adapters: AdapterCache,
}

/// A request waiting for a slot, with its submission timestamp and an
/// optional sampling-rng override (crash replay resumes a mid-flight
/// rng stream instead of reseeding from the request seed).
#[derive(Debug)]
struct QueuedRequest {
    req: ServeRequest,
    submitted_ns: u64,
    rng_override: Option<TensorRng>,
}

/// Latency samples and eviction tallies accumulated by the engine.
#[derive(Debug, Default)]
struct EngineStats {
    queue_wait_ns: Vec<u64>,
    decode_token_ns: Vec<u64>,
    completed: usize,
    deadline_exceeded: usize,
    capacity_exhausted: usize,
    rejected: usize,
    spec_rounds: usize,
    spec_drafted: usize,
    spec_accepted: usize,
}

/// Serving telemetry summary: where requests ended up and how long they
/// waited. Returned by [`BatchedInferenceEngine::report`]; the `serve`
/// CLI prints it after draining the request file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineReport {
    /// Batched forward passes executed.
    pub steps: usize,
    /// Requests that produced their full token budget.
    pub completed: usize,
    /// Requests evicted by their deadline.
    pub deadline_exceeded: usize,
    /// Requests evicted by KV-capacity exhaustion.
    pub capacity_exhausted: usize,
    /// Requests rejected at validation, never admitted.
    pub rejected: usize,
    /// Submission-to-admission wait per admitted request.
    pub queue_wait: LatencySummary,
    /// Shared-forward-pass latency attributed to each generated token.
    pub decode_token: LatencySummary,
    /// Self-speculative draft/verify rounds executed.
    pub spec_rounds: usize,
    /// Draft tokens proposed across all speculative rounds.
    pub spec_drafted: usize,
    /// Tokens emitted by speculative rounds (accepted prefix plus the
    /// verifier's correction/bonus token, after budget clamping).
    pub spec_accepted: usize,
    /// Admissions that found their tenant's adapter resident.
    pub adapter_hits: u64,
    /// Admissions that had to (re-)load their tenant's adapter.
    pub adapter_misses: u64,
    /// Resident adapters evicted LRU to hold the bytes budget.
    pub adapter_evictions_lru: u64,
    /// Resident adapters dropped by a tenant re-registering.
    pub adapter_evictions_replaced: u64,
    /// `(tenant, resident factor bytes)` per currently-resident adapter,
    /// in tenant order — the only per-tenant weight state in the engine.
    pub adapter_resident_bytes: Vec<(String, usize)>,
}

impl EngineReport {
    /// Fraction of drafted tokens the verifier accepted. Every round
    /// emits exactly one non-draft token (the verifier's correction or
    /// bonus), so accepted drafts are `spec_accepted - spec_rounds`.
    /// `None` when no tokens were drafted.
    pub fn spec_acceptance_rate(&self) -> Option<f64> {
        (self.spec_drafted > 0).then(|| {
            self.spec_accepted.saturating_sub(self.spec_rounds) as f64 / self.spec_drafted as f64
        })
    }

    /// Average tokens emitted per full-depth verify pass. `None` when no
    /// speculative round ran.
    pub fn spec_tokens_per_verify_pass(&self) -> Option<f64> {
        (self.spec_rounds > 0).then(|| self.spec_accepted as f64 / self.spec_rounds as f64)
    }
}

impl<'a> BatchedInferenceEngine<'a> {
    /// Creates an engine serving at most `max_batch` requests per forward
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroCapacity`] when `max_batch` is zero and
    /// [`ServeError::Model`] when weight packing fails.
    pub fn new(model: &'a EdgeModel, max_batch: usize) -> Result<Self, ServeError> {
        Self::with_clock(model, max_batch, Arc::new(MonotonicClock::new()))
    }

    /// As [`BatchedInferenceEngine::new`] with an explicit latency clock
    /// (tests inject a deterministic one).
    ///
    /// # Errors
    ///
    /// As [`BatchedInferenceEngine::new`].
    pub fn with_clock(
        model: &'a EdgeModel,
        max_batch: usize,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::ZeroCapacity {
                what: "batch slots",
            });
        }
        // Serving never mutates weights, so quantized layers can hold
        // their weights as packed integer codes for the engine's whole
        // lifetime: same bits out, fewer resident bytes.
        model.pack_frozen_weights()?;
        Ok(BatchedInferenceEngine {
            model,
            slots: (0..max_batch).map(|_| None).collect(),
            queue: VecDeque::new(),
            finished: Vec::new(),
            spare_kvs: Vec::new(),
            steps_run: 0,
            clock,
            stats: EngineStats::default(),
            capture_progress: false,
            progress: Vec::new(),
            adapters: AdapterCache::new(),
        })
    }

    /// Registers (or replaces) `tenant`'s LoRA adapter, validating it
    /// against the engine's model up front so a misshapen adapter fails
    /// here instead of mid-decode. Requests naming an unregistered
    /// tenant are rejected at submission.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] when the adapter does not fit the
    /// model (bad layer, factor shapes, or scale).
    pub fn register_adapter(
        &mut self,
        tenant: &str,
        adapter: TenantAdapter,
    ) -> Result<(), ServeError> {
        adapter.resolve(self.model)?;
        self.adapters.register(tenant, adapter);
        Ok(())
    }

    /// Caps resident adapter factors at `bytes`, evicting LRU tenants
    /// immediately if the current residents exceed it.
    pub fn set_adapter_budget_bytes(&mut self, bytes: usize) {
        self.adapters.set_budget_bytes(bytes);
    }

    /// Read access to the adapter cache (tests and reports).
    pub fn adapter_cache(&self) -> &AdapterCache {
        &self.adapters
    }

    /// Enqueues a request (FIFO admission). An invalid request never
    /// reaches the queue: it is reported immediately as a
    /// [`FinishReason::Rejected`] outcome.
    pub fn submit(&mut self, req: ServeRequest) {
        self.submit_inner(req, None);
    }

    /// As [`BatchedInferenceEngine::submit`], but the session's sampling
    /// rng starts from `rng` instead of being seeded from `req.seed`.
    ///
    /// This is the crash-replay admission path: the fleet router rebuilds
    /// a lost session by extending the prompt with the tokens it had
    /// already accepted and resuming the rng stream from the last
    /// [`SessionProgress`] snapshot, which reproduces the remaining
    /// tokens bit-identically.
    pub fn submit_with_rng(&mut self, req: ServeRequest, rng: TensorRng) {
        self.submit_inner(req, Some(rng));
    }

    fn submit_inner(&mut self, req: ServeRequest, rng_override: Option<TensorRng>) {
        // Tenant resolution is part of validation: a request naming a
        // tenant the engine has no adapter for can never decode
        // correctly, so it is rejected up front like a bad prompt.
        let unknown_tenant = req
            .tenant
            .as_deref()
            .filter(|t| !self.adapters.knows(t))
            .map(|t| format!("unknown tenant '{t}': no adapter registered"));
        if let Some(reason) = validate_request(self.model, &req)
            .err()
            .map(|e| e.to_string())
            .or(unknown_tenant)
        {
            self.stats.rejected += 1;
            telemetry::counter(ShedCause::Rejected.counter_name(), 1);
            self.finished.push(ServeOutcome {
                id: req.id,
                tokens: Vec::new(),
                finish: FinishReason::Rejected { reason },
                steps: 0,
                final_probs: None,
            });
            return;
        }
        self.queue.push_back(QueuedRequest {
            req,
            submitted_ns: self.clock.now_ns(),
            rng_override,
        });
    }

    /// Turns per-token progress capture on or off (off by default; the
    /// recording cost is one [`SessionProgress`] clone per generated
    /// token when on).
    pub fn set_progress_capture(&mut self, on: bool) {
        self.capture_progress = on;
        if !on {
            self.progress.clear();
        }
    }

    /// Drains the progress events recorded since the last call.
    pub fn take_progress(&mut self) -> Vec<SessionProgress> {
        std::mem::take(&mut self.progress)
    }

    /// Raw per-token decode latency samples (nanoseconds) accumulated so
    /// far; the fleet aggregates these across workers before
    /// summarizing.
    pub fn decode_token_samples(&self) -> &[u64] {
        &self.stats.decode_token_ns
    }

    /// Requests waiting for a slot.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently bound to a slot.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no queued or active work remains.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active() == 0
    }

    /// Batched forward passes executed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// Bytes of decode-path weights resident for this engine's model,
    /// counting packed layers at their integer-code size.
    pub fn weight_resident_bytes(&self) -> usize {
        self.model.decode_weight_bytes()
    }

    /// Finished outcomes accumulated so far, in retirement order.
    pub fn take_finished(&mut self) -> Vec<ServeOutcome> {
        std::mem::take(&mut self.finished)
    }

    /// Retires finished slots, admits queued requests into free slots,
    /// then advances every active request by exactly one token through a
    /// single shared forward pass. Returns `false` once the engine is
    /// idle.
    ///
    /// # Errors
    ///
    /// Propagates internal model failures; request-level problems
    /// (validation, deadline, capacity) are reported per request in
    /// outcomes, never as an `Err`.
    pub fn step(&mut self) -> Result<bool, ModelError> {
        let _span = telemetry::span("serve.step");
        self.retire_and_admit();
        // Split the active slots: a speculative slot at its generation
        // stage runs a private draft/verify round (its pass covers k+1
        // positions of its own sequence); everything else — prefill for
        // every mode, generation for the sampling modes — shares one
        // batched single-position pass. Per-slot state stays fully
        // isolated either way, so the split cannot couple outputs.
        let mut batched: Vec<&mut Slot> = Vec::new();
        let mut speculative: Vec<&mut Slot> = Vec::new();
        for slot in self.slots.iter_mut().filter_map(|s| s.as_mut()) {
            let generating = slot.fed == slot.known.len() - 1;
            match slot.req.decoding {
                Decoding::SelfSpeculative { .. } if generating => speculative.push(slot),
                _ => batched.push(slot),
            }
        }
        if batched.is_empty() && speculative.is_empty() {
            return Ok(false);
        }
        let mut tokens_out = 0u64;
        if !batched.is_empty() {
            let mut steps: Vec<BatchedStep> = Vec::with_capacity(batched.len());
            for slot in batched.iter_mut() {
                let token = slot.known[slot.fed];
                // logits are only needed when feeding the last known token;
                // everything earlier is prompt prefill
                let exits: &[usize] = if slot.fed == slot.known.len() - 1 {
                    &slot.req.voting.exits
                } else {
                    &[]
                };
                steps.push(BatchedStep {
                    token,
                    kv: &mut slot.kv,
                    exits,
                    adapter: slot.adapter.as_deref(),
                });
            }
            let t0 = self.clock.now_ns();
            let logits = {
                let _s = telemetry::span("serve.decode");
                batched_decode_step(self.model, &mut steps)?
            };
            let pass_ns = self.clock.now_ns().saturating_sub(t0);
            drop(steps);
            for (row, slot) in batched.iter_mut().enumerate() {
                if !logits[row].is_empty() {
                    let probs = combine(&logits[row], &slot.req.voting.combiner)?;
                    let next = sample_token(probs.row(0), slot.req.decoding, &mut slot.rng);
                    slot.last_probs = Some(probs.row(0).to_vec());
                    slot.known.push(next);
                    slot.generated += 1;
                    tokens_out += 1;
                    if self.capture_progress {
                        self.progress.push(SessionProgress {
                            id: slot.req.id.clone(),
                            token: next,
                            rng: slot.rng.clone(),
                        });
                    }
                    // the shared pass is the latency every token in it saw
                    self.stats.decode_token_ns.push(pass_ns);
                }
                slot.fed += 1;
            }
        }
        for slot in speculative.iter_mut() {
            let Decoding::SelfSpeculative { draft_depth, k } = slot.req.decoding else {
                unreachable!("slot classified speculative above");
            };
            let token = slot.known[slot.fed];
            let t0 = self.clock.now_ns();
            let round = {
                let _s = telemetry::span("serve.decode");
                spec_round_with_adapter(
                    self.model,
                    &mut slot.kv,
                    token,
                    draft_depth,
                    k,
                    slot.adapter.as_deref(),
                )?
            };
            let round_ns = self.clock.now_ns().saturating_sub(t0);
            // tokens past the remaining budget are dropped and the cache
            // rolled back with them, exactly like the solo reference
            let keep = round
                .accepted
                .len()
                .min(slot.req.max_new_tokens - slot.generated);
            if keep < round.accepted.len() {
                slot.kv
                    .truncate(slot.kv.len() - (round.accepted.len() - keep));
            }
            for &next in &round.accepted[..keep] {
                slot.known.push(next);
                if self.capture_progress {
                    self.progress.push(SessionProgress {
                        id: slot.req.id.clone(),
                        token: next,
                        rng: slot.rng.clone(),
                    });
                }
                // the round is the latency every token it emitted saw
                self.stats.decode_token_ns.push(round_ns);
            }
            slot.generated += keep;
            slot.last_probs = Some(round.probs[keep - 1].clone());
            slot.fed += keep;
            tokens_out += keep as u64;
            self.stats.spec_rounds += 1;
            self.stats.spec_drafted += round.drafted;
            self.stats.spec_accepted += keep;
        }
        telemetry::counter("serve.decode_tokens", tokens_out);
        self.steps_run += 1;
        Ok(true)
    }

    /// Serving telemetry accumulated so far: eviction causes and
    /// queue-wait / per-token decode latency percentiles.
    pub fn report(&self) -> EngineReport {
        EngineReport {
            steps: self.steps_run,
            completed: self.stats.completed,
            deadline_exceeded: self.stats.deadline_exceeded,
            capacity_exhausted: self.stats.capacity_exhausted,
            rejected: self.stats.rejected,
            queue_wait: LatencySummary::from_ns(self.stats.queue_wait_ns.clone()),
            decode_token: LatencySummary::from_ns(self.stats.decode_token_ns.clone()),
            spec_rounds: self.stats.spec_rounds,
            spec_drafted: self.stats.spec_drafted,
            spec_accepted: self.stats.spec_accepted,
            adapter_hits: self.adapters.hits(),
            adapter_misses: self.adapters.misses(),
            adapter_evictions_lru: self.adapters.evictions_lru(),
            adapter_evictions_replaced: self.adapters.evictions_replaced(),
            adapter_resident_bytes: self.adapters.resident_by_tenant(),
        }
    }

    /// Steps until idle and returns every accumulated outcome.
    ///
    /// # Errors
    ///
    /// As [`BatchedInferenceEngine::step`].
    pub fn run_to_completion(&mut self) -> Result<Vec<ServeOutcome>, ModelError> {
        while self.step()? {}
        Ok(self.take_finished())
    }

    fn retire_and_admit(&mut self) {
        // An admitted request may already satisfy a finish condition
        // (zero token budget, zero deadline), in which case the solo
        // reference retires it before any forward pass — so re-run the
        // retire check over fresh admissions until the batch is stable.
        loop {
            self.retire_finished();
            if !self.admit_queued() {
                return;
            }
        }
    }

    fn retire_finished(&mut self) {
        // Finish checks in the same order as the solo reference:
        // completed, then deadline, then capacity.
        for slot_opt in self.slots.iter_mut() {
            let finish = match slot_opt {
                Some(slot) => {
                    if slot.generated == slot.req.max_new_tokens {
                        Some(FinishReason::Completed)
                    } else if slot.req.deadline_steps.is_some_and(|d| slot.fed >= d) {
                        Some(FinishReason::DeadlineExceeded)
                    } else if slot.kv.remaining() == 0 {
                        Some(FinishReason::CapacityExhausted)
                    } else {
                        None
                    }
                }
                None => None,
            };
            if let Some(finish) = finish {
                match finish {
                    FinishReason::Completed => self.stats.completed += 1,
                    FinishReason::DeadlineExceeded => self.stats.deadline_exceeded += 1,
                    FinishReason::CapacityExhausted => self.stats.capacity_exhausted += 1,
                    FinishReason::Rejected { .. } => {}
                }
                telemetry::counter(ShedCause::from(&finish).counter_name(), 1);
                let slot = slot_opt.take().expect("finish computed from a live slot");
                self.finished.push(ServeOutcome {
                    id: slot.req.id.clone(),
                    tokens: slot.known[slot.req.prompt.len()..].to_vec(),
                    finish,
                    steps: slot.fed,
                    final_probs: slot.last_probs,
                });
                let mut kv = slot.kv;
                kv.reset();
                self.spare_kvs.push(kv);
            }
        }
    }

    /// Fills free slots from the queue (FIFO); reports whether anything
    /// was admitted.
    fn admit_queued(&mut self) -> bool {
        let mut admitted = false;
        for slot_opt in self.slots.iter_mut() {
            if slot_opt.is_none() {
                let Some(QueuedRequest {
                    req,
                    submitted_ns,
                    rng_override,
                }) = self.queue.pop_front()
                else {
                    break;
                };
                admitted = true;
                self.stats
                    .queue_wait_ns
                    .push(self.clock.now_ns().saturating_sub(submitted_ns));
                telemetry::counter("serve.admitted", 1);
                let kv = self
                    .spare_kvs
                    .pop()
                    .unwrap_or_else(|| SequenceKv::new(self.model));
                let rng = rng_override.unwrap_or_else(|| TensorRng::seed_from(req.seed));
                let known = req.prompt.clone();
                // Resolution cannot fail here: submission rejected
                // unknown tenants, registration validated shapes against
                // this same model, and tenants are never unregistered.
                let adapter = req.tenant.as_deref().and_then(|t| {
                    self.adapters
                        .acquire(t, self.model)
                        .expect("adapter validated at registration")
                });
                *slot_opt = Some(Slot {
                    req,
                    kv,
                    rng,
                    known,
                    fed: 0,
                    generated: 0,
                    last_probs: None,
                    adapter,
                });
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solo::run_solo;
    use edge_llm_model::{Decoding, ModelConfig, VotingCombiner, VotingPolicy};

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(0);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn request(model: &EdgeModel, id: &str, seed: u64) -> ServeRequest {
        ServeRequest {
            id: id.into(),
            prompt: vec![1, 2, 3],
            max_new_tokens: 3,
            decoding: Decoding::Greedy,
            voting: VotingPolicy::final_only(model.n_layers()),
            seed,
            deadline_steps: None,
            tenant: None,
        }
    }

    fn assert_outcome_bit_equal(a: &ServeOutcome, b: &ServeOutcome) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.tokens, b.tokens, "{}: tokens", a.id);
        assert_eq!(a.finish, b.finish, "{}: finish", a.id);
        assert_eq!(a.steps, b.steps, "{}: steps", a.id);
        let bits = |p: &Option<Vec<f32>>| {
            p.as_ref()
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
        };
        assert_eq!(
            bits(&a.final_probs),
            bits(&b.final_probs),
            "{}: probs",
            a.id
        );
    }

    #[test]
    fn batched_outcomes_match_solo_bitwise() {
        let m = model();
        let mut engine = BatchedInferenceEngine::new(&m, 3).unwrap();
        let requests: Vec<ServeRequest> = vec![
            request(&m, "a", 1),
            {
                let mut r = request(&m, "b", 2);
                r.prompt = vec![5, 6];
                r.decoding = Decoding::Sample { temperature: 0.8 };
                r
            },
            {
                let mut r = request(&m, "c", 3);
                r.voting = VotingPolicy::all_exits(m.n_layers(), VotingCombiner::Average);
                r.decoding = Decoding::TopK {
                    k: 4,
                    temperature: 1.3,
                };
                r
            },
            {
                let mut r = request(&m, "d", 4);
                r.deadline_steps = Some(4);
                r.max_new_tokens = 6;
                r
            },
        ];
        for r in &requests {
            engine.submit(r.clone());
        }
        let outcomes = engine.run_to_completion().unwrap();
        assert_eq!(outcomes.len(), requests.len());
        for req in &requests {
            let solo = run_solo(&m, req).unwrap();
            let batched = outcomes.iter().find(|o| o.id == req.id).unwrap();
            assert_outcome_bit_equal(batched, &solo);
        }
    }

    #[test]
    fn continuous_admission_fills_freed_slots() {
        let m = model();
        // batch of 1 forces strictly sequential admission through one slot
        let mut engine = BatchedInferenceEngine::new(&m, 1).unwrap();
        for i in 0..3 {
            engine.submit(request(&m, &format!("q{i}"), i as u64));
        }
        assert_eq!(engine.pending(), 3);
        let outcomes = engine.run_to_completion().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(engine.is_idle());
        assert!(outcomes.iter().all(|o| o.finish == FinishReason::Completed));
        // FIFO: single-slot serving must retire in submission order
        let ids: Vec<&str> = outcomes.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, ["q0", "q1", "q2"]);
    }

    #[test]
    fn rejected_requests_never_occupy_a_slot() {
        let m = model();
        let mut engine = BatchedInferenceEngine::new(&m, 2).unwrap();
        let mut bad = request(&m, "bad", 0);
        bad.prompt = vec![99_999];
        engine.submit(bad);
        engine.submit(request(&m, "good", 1));
        let outcomes = engine.run_to_completion().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(
            outcomes.iter().find(|o| o.id == "bad").unwrap().finish,
            FinishReason::Rejected { .. }
        ));
        assert_eq!(
            outcomes.iter().find(|o| o.id == "good").unwrap().finish,
            FinishReason::Completed
        );
    }

    #[test]
    fn zero_batch_rejected() {
        let m = model();
        assert!(BatchedInferenceEngine::new(&m, 0).is_err());
    }

    #[test]
    fn slot_reuse_recycles_kv_caches() {
        let m = model();
        let mut engine = BatchedInferenceEngine::new(&m, 1).unwrap();
        engine.submit(request(&m, "first", 1));
        engine.run_to_completion().unwrap();
        assert_eq!(engine.spare_kvs.len(), 1);
        engine.submit(request(&m, "second", 2));
        engine.run_to_completion().unwrap();
        assert_eq!(engine.spare_kvs.len(), 1, "cache is recycled, not leaked");
    }

    #[test]
    fn speculative_outcomes_match_solo_bitwise() {
        let mut rng = TensorRng::seed_from(9);
        let m = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
        let mut engine = BatchedInferenceEngine::new(&m, 3).unwrap();
        let mut requests = Vec::new();
        for (i, (depth, k)) in [(1usize, 2usize), (2, 4), (3, 1)].iter().enumerate() {
            let mut r = request(&m, &format!("spec{i}"), i as u64);
            r.decoding = Decoding::SelfSpeculative {
                draft_depth: *depth,
                k: *k,
            };
            r.max_new_tokens = 4;
            requests.push(r);
        }
        // a greedy batch-mate shares the engine with the speculative slots
        requests.push(request(&m, "greedy", 7));
        for r in &requests {
            engine.submit(r.clone());
        }
        let outcomes = engine.run_to_completion().unwrap();
        for req in &requests {
            let solo = run_solo(&m, req).unwrap();
            let batched = outcomes.iter().find(|o| o.id == req.id).unwrap();
            assert_outcome_bit_equal(batched, &solo);
        }
        let report = engine.report();
        assert!(report.spec_rounds > 0);
        assert!(report.spec_accepted >= report.spec_rounds);
        assert!(report.spec_tokens_per_verify_pass().unwrap() >= 1.0);
    }

    #[test]
    fn speculative_stream_equals_greedy_stream() {
        let mut rng = TensorRng::seed_from(10);
        let m = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
        let mut greedy = request(&m, "r", 1);
        greedy.max_new_tokens = 4;
        let mut spec = greedy.clone();
        spec.decoding = Decoding::SelfSpeculative {
            draft_depth: 1,
            k: 4,
        };
        let a = run_solo(&m, &greedy).unwrap();
        let b = run_solo(&m, &spec).unwrap();
        assert_eq!(a.tokens, b.tokens, "speculation must not change a token");
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn speculative_request_needs_final_exit_voting() {
        let mut rng = TensorRng::seed_from(11);
        let m = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
        let mut r = request(&m, "bad", 0);
        r.decoding = Decoding::SelfSpeculative {
            draft_depth: 1,
            k: 2,
        };
        r.voting = VotingPolicy::all_exits(m.n_layers(), VotingCombiner::Average);
        let mut engine = BatchedInferenceEngine::new(&m, 1).unwrap();
        engine.submit(r.clone());
        let outcomes = engine.run_to_completion().unwrap();
        assert!(matches!(outcomes[0].finish, FinishReason::Rejected { .. }));
        // bad draft parameters are rejected the same way
        let mut r2 = request(&m, "bad2", 0);
        r2.decoding = Decoding::SelfSpeculative {
            draft_depth: 99,
            k: 2,
        };
        engine.submit(r2);
        let outcomes = engine.run_to_completion().unwrap();
        assert!(matches!(outcomes[0].finish, FinishReason::Rejected { .. }));
    }

    #[test]
    fn steps_counter_tracks_forward_passes() {
        let m = model();
        let mut engine = BatchedInferenceEngine::new(&m, 2).unwrap();
        engine.submit(request(&m, "a", 1));
        engine.submit(request(&m, "b", 2));
        engine.run_to_completion().unwrap();
        // both requests feed 5 tokens (3 prompt + 2 generated consumed)
        // and run concurrently, so the engine needs exactly 5 passes
        assert_eq!(engine.steps_run(), 5);
    }
}
