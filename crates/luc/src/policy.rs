use crate::LucError;
use edge_llm_quant::BitWidth;
use std::fmt;

/// The compression assignment for one transformer layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPolicy {
    /// Weight quantization bit-width.
    pub bits: BitWidth,
    /// Unstructured pruning ratio in `[0, 1)`.
    pub prune_ratio: f32,
}

impl LayerPolicy {
    /// Full precision, no pruning.
    pub fn uncompressed() -> Self {
        LayerPolicy {
            bits: BitWidth::W16,
            prune_ratio: 0.0,
        }
    }

    /// Relative compute cost of a layer under this policy, normalized so
    /// that 16-bit dense is `1.0`: `(bits / 16) * (1 - prune_ratio)`.
    ///
    /// This mirrors how an edge accelerator's MAC throughput scales with
    /// operand width and skipped zeros, and is the cost the LUC budget is
    /// expressed in.
    pub fn cost(&self) -> f32 {
        (self.bits.bits() as f32 / 16.0) * (1.0 - self.prune_ratio)
    }

    /// Relative weight-memory footprint, normalized to 16-bit dense.
    pub fn memory(&self) -> f32 {
        // pruned weights still cost index storage ~ 1/4 of a kept element
        let kept = 1.0 - self.prune_ratio;
        (self.bits.bits() as f32 / 16.0) * (kept + 0.25 * self.prune_ratio)
    }

    /// Validates the ratio range.
    ///
    /// # Errors
    ///
    /// Returns [`LucError::BadParameter`] if the ratio is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), LucError> {
        if !(0.0..1.0).contains(&self.prune_ratio) || self.prune_ratio.is_nan() {
            return Err(LucError::BadParameter {
                reason: format!("prune ratio {} outside [0,1)", self.prune_ratio),
            });
        }
        Ok(())
    }
}

impl Default for LayerPolicy {
    fn default() -> Self {
        Self::uncompressed()
    }
}

impl fmt::Display for LayerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·p{:.0}%", self.bits, self.prune_ratio * 100.0)
    }
}

/// A per-layer compression policy for the whole model — LUC's output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompressionPolicy {
    layers: Vec<LayerPolicy>,
}

impl CompressionPolicy {
    /// A policy assigning the same `(bits, ratio)` to every layer — the
    /// uniform-compression baseline LUC is compared against (T2).
    pub fn uniform(n_layers: usize, bits: BitWidth, prune_ratio: f32) -> Self {
        CompressionPolicy {
            layers: vec![LayerPolicy { bits, prune_ratio }; n_layers],
        }
    }

    /// A fully uncompressed policy.
    pub fn identity(n_layers: usize) -> Self {
        Self::uniform(n_layers, BitWidth::W16, 0.0)
    }

    /// Builds from explicit per-layer assignments.
    pub fn from_layers(layers: Vec<LayerPolicy>) -> Self {
        CompressionPolicy { layers }
    }

    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer assignments.
    pub fn layers(&self) -> &[LayerPolicy] {
        &self.layers
    }

    /// The assignment for layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> LayerPolicy {
        self.layers[l]
    }

    /// Replaces the assignment for layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn set_layer(&mut self, l: usize, policy: LayerPolicy) {
        self.layers[l] = policy;
    }

    /// Mean per-layer compute cost (the LUC budget metric).
    pub fn mean_cost(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(LayerPolicy::cost).sum::<f32>() / self.layers.len() as f32
    }

    /// Mean per-layer weight-memory footprint.
    pub fn mean_memory(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(LayerPolicy::memory).sum::<f32>() / self.layers.len() as f32
    }

    /// Average assigned bit-width.
    pub fn mean_bits(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.bits.bits() as f32)
            .sum::<f32>()
            / self.layers.len() as f32
    }

    /// Average assigned pruning ratio.
    pub fn mean_prune_ratio(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.prune_ratio).sum::<f32>() / self.layers.len() as f32
    }

    /// Validates every layer assignment.
    ///
    /// # Errors
    ///
    /// Propagates the first [`LucError::BadParameter`].
    pub fn validate(&self) -> Result<(), LucError> {
        for l in &self.layers {
            l.validate()?;
        }
        Ok(())
    }
}

impl CompressionPolicy {
    /// Serializes to a compact machine-readable string, e.g.
    /// `"4:0.25,8:0,2:0.5"` (bits`:`ratio per layer, comma separated).
    pub fn to_compact_string(&self) -> String {
        self.layers
            .iter()
            .map(|l| format!("{}:{}", l.bits.bits(), l.prune_ratio))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the format produced by
    /// [`CompressionPolicy::to_compact_string`].
    ///
    /// # Errors
    ///
    /// Returns [`LucError::BadParameter`] for malformed input, unknown
    /// bit-widths, or out-of-range ratios.
    pub fn parse_compact(s: &str) -> Result<Self, LucError> {
        let bad = |reason: String| LucError::BadParameter { reason };
        let mut layers = Vec::new();
        for (i, part) in s.split(',').enumerate() {
            let (b, r) = part
                .split_once(':')
                .ok_or_else(|| bad(format!("layer {i}: expected bits:ratio, got {part:?}")))?;
            let bits_raw: u32 = b
                .trim()
                .parse()
                .map_err(|_| bad(format!("layer {i}: bad bits {b:?}")))?;
            let bits = BitWidth::try_from(bits_raw)
                .map_err(|_| bad(format!("layer {i}: unsupported width {bits_raw}")))?;
            let prune_ratio: f32 = r
                .trim()
                .parse()
                .map_err(|_| bad(format!("layer {i}: bad ratio {r:?}")))?;
            let layer = LayerPolicy { bits, prune_ratio };
            layer.validate()?;
            layers.push(layer);
        }
        Ok(CompressionPolicy { layers })
    }
}

impl fmt::Display for CompressionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_extremes() {
        assert_eq!(LayerPolicy::uncompressed().cost(), 1.0);
        let aggressive = LayerPolicy {
            bits: BitWidth::W2,
            prune_ratio: 0.75,
        };
        assert!((aggressive.cost() - (2.0 / 16.0) * 0.25).abs() < 1e-6);
    }

    #[test]
    fn memory_includes_index_overhead() {
        let pruned = LayerPolicy {
            bits: BitWidth::W16,
            prune_ratio: 0.5,
        };
        // 0.5 kept + 0.125 index overhead
        assert!((pruned.memory() - 0.625).abs() < 1e-6);
        assert_eq!(LayerPolicy::uncompressed().memory(), 1.0);
    }

    #[test]
    fn uniform_policy_means() {
        let p = CompressionPolicy::uniform(8, BitWidth::W4, 0.5);
        assert_eq!(p.mean_bits(), 4.0);
        assert_eq!(p.mean_prune_ratio(), 0.5);
        assert!((p.mean_cost() - 0.125).abs() < 1e-6);
    }

    #[test]
    fn identity_policy_cost_is_one() {
        let p = CompressionPolicy::identity(4);
        assert_eq!(p.mean_cost(), 1.0);
    }

    #[test]
    fn set_layer_changes_means() {
        let mut p = CompressionPolicy::identity(2);
        p.set_layer(
            0,
            LayerPolicy {
                bits: BitWidth::W2,
                prune_ratio: 0.0,
            },
        );
        assert_eq!(p.mean_bits(), 9.0);
    }

    #[test]
    fn validate_rejects_bad_ratio() {
        let p = CompressionPolicy::from_layers(vec![LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: 1.0,
        }]);
        assert!(p.validate().is_err());
        assert!(LayerPolicy {
            bits: BitWidth::W4,
            prune_ratio: f32::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn empty_policy_zero_means() {
        let p = CompressionPolicy::default();
        assert_eq!(p.mean_cost(), 0.0);
        assert_eq!(p.mean_bits(), 0.0);
    }

    #[test]
    fn compact_string_roundtrip() {
        let p = CompressionPolicy::from_layers(vec![
            LayerPolicy {
                bits: BitWidth::W4,
                prune_ratio: 0.25,
            },
            LayerPolicy {
                bits: BitWidth::W16,
                prune_ratio: 0.0,
            },
            LayerPolicy {
                bits: BitWidth::W2,
                prune_ratio: 0.5,
            },
        ]);
        let s = p.to_compact_string();
        assert_eq!(s, "4:0.25,16:0,2:0.5");
        assert_eq!(CompressionPolicy::parse_compact(&s).unwrap(), p);
    }

    #[test]
    fn parse_compact_rejects_malformed() {
        assert!(CompressionPolicy::parse_compact("4").is_err());
        assert!(CompressionPolicy::parse_compact("3:0.5").is_err());
        assert!(CompressionPolicy::parse_compact("4:abc").is_err());
        assert!(CompressionPolicy::parse_compact("4:1.5").is_err());
    }

    #[test]
    fn display_roundtrip_contains_layers() {
        let p = CompressionPolicy::uniform(2, BitWidth::W4, 0.25);
        let s = p.to_string();
        assert!(s.contains("4b"));
        assert!(s.contains("25%"));
    }
}
