use crate::policy::CompressionPolicy;

/// A `(cost, quality)` point on the compression trade-off plane, tagged
/// with the policy that produced it (the F4 experiment's raw material).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyPoint {
    /// Mean compute cost (1.0 = uncompressed).
    pub cost: f32,
    /// Quality metric where **lower is better** (loss, or 1 - accuracy).
    pub loss: f32,
    /// The policy behind this point.
    pub policy: CompressionPolicy,
}

/// Extracts the Pareto frontier (minimal cost for minimal loss) from a set
/// of measured policy points.
///
/// A point survives if no other point is at least as good on both axes and
/// strictly better on one. The result is sorted by ascending cost.
pub fn pareto_frontier(points: &[PolicyPoint]) -> Vec<PolicyPoint> {
    let mut frontier: Vec<PolicyPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.cost <= p.cost && q.loss < p.loss) || (q.cost < p.cost && q.loss <= p.loss)
        });
        if !dominated {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.loss
                    .partial_cmp(&b.loss)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    frontier.dedup_by(|a, b| a.cost == b.cost && a.loss == b.loss);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(cost: f32, loss: f32) -> PolicyPoint {
        PolicyPoint {
            cost,
            loss,
            policy: CompressionPolicy::identity(1),
        }
    }

    #[test]
    fn dominated_points_removed() {
        let points = vec![pt(0.5, 1.0), pt(0.5, 2.0), pt(0.3, 1.5), pt(1.0, 0.5)];
        let f = pareto_frontier(&points);
        // (0.5, 2.0) dominated by (0.5, 1.0); others survive
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|p| !(p.cost == 0.5 && p.loss == 2.0)));
    }

    #[test]
    fn frontier_is_sorted_and_monotone() {
        let points = vec![pt(1.0, 0.1), pt(0.2, 0.9), pt(0.5, 0.4), pt(0.7, 0.2)];
        let f = pareto_frontier(&points);
        for w in f.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert!(
                w[0].loss >= w[1].loss,
                "loss must not increase along the frontier"
            );
        }
    }

    #[test]
    fn single_point_survives() {
        let f = pareto_frontier(&[pt(0.5, 0.5)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn duplicate_points_deduped() {
        let f = pareto_frontier(&[pt(0.5, 0.5), pt(0.5, 0.5)]);
        assert_eq!(f.len(), 1);
    }
}
