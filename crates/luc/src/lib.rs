//! Layerwise Unified Compression (LUC) — the first of Edge-LLM's three
//! components.
//!
//! LUC observes that transformer layers differ widely in how much accuracy
//! they lose under pruning and quantization, and assigns each layer its own
//! `(bit-width, pruning ratio)` pair instead of a uniform policy:
//!
//! 1. [`profile`] measures per-layer **sensitivity** — the loss increase
//!    when one layer is compressed while the rest stay full-precision —
//!    through a caller-supplied [`SensitivityOracle`];
//! 2. a [`search_policy`] routine (greedy, dynamic-programming, or
//!    exhaustive) picks the per-layer policy minimizing total predicted
//!    loss under a compute-cost budget;
//! 3. the winning [`CompressionPolicy`] is applied to the model by the
//!    `edge-llm` pipeline crate.
//!
//! # Example
//!
//! ```
//! use edge_llm_luc::{CompressionPolicy, LayerPolicy};
//! use edge_llm_quant::BitWidth;
//!
//! let policy = CompressionPolicy::uniform(4, BitWidth::W4, 0.5);
//! assert_eq!(policy.n_layers(), 4);
//! assert!((policy.mean_cost() - (4.0 / 16.0) * 0.5).abs() < 1e-6);
//! ```

mod pareto;
mod policy;
mod search;
mod sensitivity;

pub use pareto::{pareto_frontier, PolicyPoint};
pub use policy::{CompressionPolicy, LayerPolicy};
pub use search::{search_policy, SearchAlgorithm, SearchOutcome};
pub use sensitivity::{profile, FnOracle, SensitivityOracle, SensitivityProfile};

/// Error type for LUC operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LucError {
    /// A budget outside the achievable range was requested.
    InfeasibleBudget {
        /// Requested mean cost budget.
        budget: f32,
        /// Cheapest achievable mean cost.
        min_achievable: f32,
    },
    /// The profile and policy disagree on layer count or choice sets.
    ProfileMismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// A parameter was out of range.
    BadParameter {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for LucError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LucError::InfeasibleBudget {
                budget,
                min_achievable,
            } => {
                write!(
                    f,
                    "budget {budget} below cheapest achievable mean cost {min_achievable}"
                )
            }
            LucError::ProfileMismatch { reason } => write!(f, "profile mismatch: {reason}"),
            LucError::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
        }
    }
}

impl std::error::Error for LucError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LucError::InfeasibleBudget {
            budget: 0.01,
            min_achievable: 0.1,
        };
        assert!(e.to_string().contains("0.01"));
    }
}
