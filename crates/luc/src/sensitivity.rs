use crate::policy::LayerPolicy;
use crate::LucError;
use edge_llm_quant::BitWidth;
use edge_llm_telemetry as telemetry;

/// Anything that can report the task loss of the model with a single layer
/// compressed — typically a wrapper around `EdgeModel` plus a calibration
/// batch (implemented in the `edge-llm` pipeline crate).
///
/// Keeping the oracle abstract lets this crate's search algorithms be
/// tested against synthetic sensitivity landscapes with known optima.
pub trait SensitivityOracle {
    /// Number of layers in the model.
    fn n_layers(&self) -> usize;

    /// Calibration loss with **only** layer `layer` compressed per `policy`
    /// and every other layer uncompressed.
    fn loss_with(&mut self, layer: usize, policy: LayerPolicy) -> f32;

    /// Calibration loss of the uncompressed model.
    fn baseline_loss(&mut self) -> f32;
}

/// A [`SensitivityOracle`] built from closures (handy in tests and for
/// analytic landscapes).
pub struct FnOracle<F, B>
where
    F: FnMut(usize, LayerPolicy) -> f32,
    B: FnMut() -> f32,
{
    n_layers: usize,
    loss_with: F,
    baseline: B,
}

impl<F, B> FnOracle<F, B>
where
    F: FnMut(usize, LayerPolicy) -> f32,
    B: FnMut() -> f32,
{
    /// Wraps the closures.
    pub fn new(n_layers: usize, loss_with: F, baseline: B) -> Self {
        FnOracle {
            n_layers,
            loss_with,
            baseline,
        }
    }
}

impl<F, B> SensitivityOracle for FnOracle<F, B>
where
    F: FnMut(usize, LayerPolicy) -> f32,
    B: FnMut() -> f32,
{
    fn n_layers(&self) -> usize {
        self.n_layers
    }

    fn loss_with(&mut self, layer: usize, policy: LayerPolicy) -> f32 {
        (self.loss_with)(layer, policy)
    }

    fn baseline_loss(&mut self) -> f32 {
        (self.baseline)()
    }
}

/// Per-layer sensitivity measurements: the loss *increase* over baseline
/// for each candidate bit-width and each candidate pruning ratio, measured
/// independently.
///
/// The policy search assumes the two effects compose additively
/// (`delta(bits, ratio) ≈ delta(bits) + delta(ratio)`) — an approximation
/// the paper's unified policy search also relies on, validated empirically
/// in the T2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityProfile {
    /// Candidate bit-widths (ascending).
    pub bit_choices: Vec<BitWidth>,
    /// Candidate pruning ratios (ascending).
    pub ratio_choices: Vec<f32>,
    /// `quant_delta[layer][bit_idx]`: loss increase at that width.
    pub quant_delta: Vec<Vec<f32>>,
    /// `prune_delta[layer][ratio_idx]`: loss increase at that ratio.
    pub prune_delta: Vec<Vec<f32>>,
    /// Baseline (uncompressed) loss.
    pub baseline: f32,
}

impl SensitivityProfile {
    /// Number of profiled layers.
    pub fn n_layers(&self) -> usize {
        self.quant_delta.len()
    }

    /// Predicted loss increase for assigning `(bit_idx, ratio_idx)` to
    /// `layer` under the additive model.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn predicted_delta(&self, layer: usize, bit_idx: usize, ratio_idx: usize) -> f32 {
        self.quant_delta[layer][bit_idx] + self.prune_delta[layer][ratio_idx]
    }

    /// A per-layer scalar sensitivity score (loss delta at the most
    /// aggressive candidate compression), used to order layers from most
    /// to least robust.
    pub fn layer_scores(&self) -> Vec<f32> {
        (0..self.n_layers())
            .map(|l| {
                let q = self.quant_delta[l].first().copied().unwrap_or(0.0);
                let p = self.prune_delta[l].last().copied().unwrap_or(0.0);
                q + p
            })
            .collect()
    }

    /// Checks internal shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LucError::ProfileMismatch`] on ragged or empty tables.
    pub fn validate(&self) -> Result<(), LucError> {
        if self.bit_choices.is_empty() || self.ratio_choices.is_empty() {
            return Err(LucError::ProfileMismatch {
                reason: "empty choice sets".into(),
            });
        }
        if self.quant_delta.len() != self.prune_delta.len() {
            return Err(LucError::ProfileMismatch {
                reason: "layer count disagreement".into(),
            });
        }
        for (l, (q, p)) in self
            .quant_delta
            .iter()
            .zip(self.prune_delta.iter())
            .enumerate()
        {
            if q.len() != self.bit_choices.len() || p.len() != self.ratio_choices.len() {
                return Err(LucError::ProfileMismatch {
                    reason: format!("ragged row at layer {l}"),
                });
            }
        }
        Ok(())
    }
}

/// Measures a [`SensitivityProfile`] by sweeping each layer through each
/// candidate bit-width and pruning ratio, one at a time.
///
/// Cost: `n_layers * (|bits| + |ratios|)` oracle evaluations plus one
/// baseline — the cheap, embarrassingly parallel measurement loop the paper
/// describes for LUC.
///
/// # Errors
///
/// Returns [`LucError::BadParameter`] for empty choice sets.
pub fn profile(
    oracle: &mut dyn SensitivityOracle,
    bit_choices: &[BitWidth],
    ratio_choices: &[f32],
) -> Result<SensitivityProfile, LucError> {
    let _span = telemetry::span("luc.profile");
    if bit_choices.is_empty() || ratio_choices.is_empty() {
        return Err(LucError::BadParameter {
            reason: "choice sets must be non-empty".into(),
        });
    }
    let baseline = oracle.baseline_loss();
    let n = oracle.n_layers();
    let mut quant_delta = Vec::with_capacity(n);
    let mut prune_delta = Vec::with_capacity(n);
    for layer in 0..n {
        let q: Vec<f32> = bit_choices
            .iter()
            .map(|&bits| {
                let loss = oracle.loss_with(
                    layer,
                    LayerPolicy {
                        bits,
                        prune_ratio: 0.0,
                    },
                );
                (loss - baseline).max(0.0)
            })
            .collect();
        let p: Vec<f32> = ratio_choices
            .iter()
            .map(|&prune_ratio| {
                let loss = oracle.loss_with(
                    layer,
                    LayerPolicy {
                        bits: BitWidth::W16,
                        prune_ratio,
                    },
                );
                (loss - baseline).max(0.0)
            })
            .collect();
        quant_delta.push(q);
        prune_delta.push(p);
    }
    Ok(SensitivityProfile {
        bit_choices: bit_choices.to_vec(),
        ratio_choices: ratio_choices.to_vec(),
        quant_delta,
        prune_delta,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic landscape: layer l has sensitivity weight (l+1); loss
    /// penalty = weight * (16 - bits)/16 + weight * ratio.
    pub(crate) fn synthetic_oracle(n: usize) -> impl SensitivityOracle {
        FnOracle::new(
            n,
            move |layer, p: LayerPolicy| {
                let w = (layer + 1) as f32;
                1.0 + w * ((16.0 - p.bits.bits() as f32) / 16.0) * 0.1 + w * p.prune_ratio * 0.1
            },
            || 1.0,
        )
    }

    #[test]
    fn profile_shapes() {
        let mut oracle = synthetic_oracle(4);
        let prof = profile(
            &mut oracle,
            &[BitWidth::W2, BitWidth::W4, BitWidth::W8],
            &[0.25, 0.5],
        )
        .unwrap();
        prof.validate().unwrap();
        assert_eq!(prof.n_layers(), 4);
        assert_eq!(prof.quant_delta[0].len(), 3);
        assert_eq!(prof.prune_delta[0].len(), 2);
        assert_eq!(prof.baseline, 1.0);
    }

    #[test]
    fn deeper_layers_are_more_sensitive_in_synthetic() {
        let mut oracle = synthetic_oracle(4);
        let prof = profile(&mut oracle, &[BitWidth::W2], &[0.5]).unwrap();
        let scores = prof.layer_scores();
        for w in scores.windows(2) {
            assert!(
                w[1] > w[0],
                "synthetic sensitivity must increase with depth"
            );
        }
    }

    #[test]
    fn narrower_bits_hurt_more() {
        let mut oracle = synthetic_oracle(2);
        let prof = profile(&mut oracle, &[BitWidth::W2, BitWidth::W8], &[0.5]).unwrap();
        assert!(prof.quant_delta[0][0] > prof.quant_delta[0][1]);
    }

    #[test]
    fn empty_choices_rejected() {
        let mut oracle = synthetic_oracle(2);
        assert!(profile(&mut oracle, &[], &[0.5]).is_err());
        assert!(profile(&mut oracle, &[BitWidth::W4], &[]).is_err());
    }

    #[test]
    fn predicted_delta_is_additive() {
        let mut oracle = synthetic_oracle(3);
        let prof = profile(&mut oracle, &[BitWidth::W4], &[0.5]).unwrap();
        let d = prof.predicted_delta(2, 0, 0);
        assert!((d - (prof.quant_delta[2][0] + prof.prune_delta[2][0])).abs() < 1e-7);
    }

    #[test]
    fn validate_catches_ragged_profiles() {
        let mut oracle = synthetic_oracle(2);
        let mut prof = profile(&mut oracle, &[BitWidth::W4], &[0.5]).unwrap();
        prof.quant_delta[1].push(0.0);
        assert!(prof.validate().is_err());
    }
}
