use crate::policy::{CompressionPolicy, LayerPolicy};
use crate::sensitivity::SensitivityProfile;
use crate::LucError;
use edge_llm_telemetry as telemetry;

/// Search strategy for the unified per-layer policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchAlgorithm {
    /// Repeatedly apply the compression move with the best
    /// cost-saved-per-loss-added ratio until the budget is met.
    Greedy,
    /// Multiple-choice knapsack over discretized layer costs — optimal up
    /// to the discretization resolution.
    DynamicProgramming,
    /// Enumerate every assignment (only viable for small models; guarded).
    Exhaustive,
}

/// Result of a policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen per-layer policy.
    pub policy: CompressionPolicy,
    /// Total predicted loss increase under the additive model.
    pub predicted_delta: f32,
    /// Candidate evaluations performed (search-cost metric).
    pub evaluations: usize,
}

#[derive(Debug, Clone, Copy)]
struct Combo {
    bit_idx: usize,
    ratio_idx: usize,
    cost: f32,
}

fn combos(profile: &SensitivityProfile) -> Vec<Combo> {
    let mut out = Vec::new();
    for (bi, &bits) in profile.bit_choices.iter().enumerate() {
        for (ri, &prune_ratio) in profile.ratio_choices.iter().enumerate() {
            let cost = LayerPolicy { bits, prune_ratio }.cost();
            out.push(Combo {
                bit_idx: bi,
                ratio_idx: ri,
                cost,
            });
        }
    }
    out
}

fn policy_of(profile: &SensitivityProfile, picks: &[Combo]) -> CompressionPolicy {
    CompressionPolicy::from_layers(
        picks
            .iter()
            .map(|c| LayerPolicy {
                bits: profile.bit_choices[c.bit_idx],
                prune_ratio: profile.ratio_choices[c.ratio_idx],
            })
            .collect(),
    )
}

fn total_delta(profile: &SensitivityProfile, picks: &[Combo]) -> f32 {
    picks
        .iter()
        .enumerate()
        .map(|(l, c)| profile.predicted_delta(l, c.bit_idx, c.ratio_idx))
        .sum()
}

/// Searches for the per-layer policy minimizing predicted loss increase
/// subject to `mean cost <= budget`.
///
/// `budget` is in the normalized cost units of [`LayerPolicy::cost`]
/// (1.0 = 16-bit dense everywhere).
///
/// # Errors
///
/// Returns [`LucError::InfeasibleBudget`] when even the cheapest combo per
/// layer exceeds the budget, [`LucError::ProfileMismatch`] for invalid
/// profiles, and [`LucError::BadParameter`] when an exhaustive search would
/// exceed its safety bound.
pub fn search_policy(
    profile: &SensitivityProfile,
    budget: f32,
    algorithm: SearchAlgorithm,
) -> Result<SearchOutcome, LucError> {
    let _span = telemetry::span("luc.search");
    profile.validate()?;
    let all = combos(profile);
    let n = profile.n_layers();
    let min_cost = all.iter().map(|c| c.cost).fold(f32::INFINITY, f32::min);
    if budget < min_cost {
        return Err(LucError::InfeasibleBudget {
            budget,
            min_achievable: min_cost,
        });
    }
    let outcome = match algorithm {
        SearchAlgorithm::Greedy => greedy(profile, &all, budget, n),
        SearchAlgorithm::DynamicProgramming => dp(profile, &all, budget, n),
        SearchAlgorithm::Exhaustive => exhaustive(profile, &all, budget, n),
    };
    if let Ok(outcome) = &outcome {
        telemetry::counter("luc.evaluations", outcome.evaluations as u64);
    }
    outcome
}

fn cheapest_per_delta(profile: &SensitivityProfile, all: &[Combo], layer: usize) -> Combo {
    // The combo with the lowest predicted delta (ties -> lower cost).
    let mut best = all[0];
    let mut best_key = (f32::INFINITY, f32::INFINITY);
    for &c in all {
        let d = profile.predicted_delta(layer, c.bit_idx, c.ratio_idx);
        let key = (d, c.cost);
        if key < best_key {
            best_key = key;
            best = c;
        }
    }
    best
}

fn greedy(
    profile: &SensitivityProfile,
    all: &[Combo],
    budget: f32,
    n: usize,
) -> Result<SearchOutcome, LucError> {
    let mut picks: Vec<Combo> = (0..n)
        .map(|l| cheapest_per_delta(profile, all, l))
        .collect();
    let mut evaluations = n * all.len();
    let target_total = budget * n as f32;
    loop {
        let current: f32 = picks.iter().map(|c| c.cost).sum();
        if current <= target_total + 1e-6 {
            break;
        }
        // best move: maximize cost saved per unit of added delta
        let mut best: Option<(usize, Combo, f32)> = None;
        for (l, &cur) in picks.iter().enumerate() {
            let cur_delta = profile.predicted_delta(l, cur.bit_idx, cur.ratio_idx);
            for &cand in all {
                evaluations += 1;
                if cand.cost >= cur.cost - 1e-9 {
                    continue;
                }
                let delta = profile.predicted_delta(l, cand.bit_idx, cand.ratio_idx);
                let added = (delta - cur_delta).max(1e-9);
                let score = (cur.cost - cand.cost) / added;
                if best.as_ref().is_none_or(|&(_, _, s)| score > s) {
                    best = Some((l, cand, score));
                }
            }
        }
        match best {
            Some((l, cand, _)) => picks[l] = cand,
            None => break, // no cheaper move exists
        }
    }
    let policy = policy_of(profile, &picks);
    let predicted_delta = total_delta(profile, &picks);
    Ok(SearchOutcome {
        policy,
        predicted_delta,
        evaluations,
    })
}

const DP_RESOLUTION: f32 = 320.0;

fn dp(
    profile: &SensitivityProfile,
    all: &[Combo],
    budget: f32,
    n: usize,
) -> Result<SearchOutcome, LucError> {
    let units = |c: f32| (c * DP_RESOLUTION).ceil() as usize;
    let budget_units = (budget * n as f32 * DP_RESOLUTION).floor() as usize;
    let mut dp_cost = vec![f32::INFINITY; budget_units + 1];
    let mut parents: Vec<Vec<Option<(usize, usize)>>> = Vec::with_capacity(n);
    dp_cost[0] = 0.0;
    let mut evaluations = 0usize;
    for l in 0..n {
        let mut next = vec![f32::INFINITY; budget_units + 1];
        let mut parent = vec![None; budget_units + 1];
        for (ci, &c) in all.iter().enumerate() {
            let cu = units(c.cost);
            let d = profile.predicted_delta(l, c.bit_idx, c.ratio_idx);
            evaluations += 1;
            for u in cu..=budget_units {
                let prev = dp_cost[u - cu];
                if prev.is_finite() && prev + d < next[u] {
                    next[u] = prev + d;
                    parent[u] = Some((ci, u - cu));
                }
            }
        }
        dp_cost = next;
        parents.push(parent);
    }
    // best reachable state; on equal predicted delta prefer the state that
    // uses more of the budget (the least aggressive compression)
    let (best_u, _) = dp_cost
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .min_by(|a, b| {
            a.1.partial_cmp(b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(&a.0))
        })
        .ok_or(LucError::InfeasibleBudget {
            budget,
            min_achievable: all.iter().map(|c| c.cost).fold(f32::INFINITY, f32::min),
        })?;
    // reconstruct
    let mut picks = vec![all[0]; n];
    let mut u = best_u;
    for l in (0..n).rev() {
        let (ci, pu) = parents[l][u].expect("reachable state must have a parent");
        picks[l] = all[ci];
        u = pu;
    }
    let policy = policy_of(profile, &picks);
    let predicted_delta = total_delta(profile, &picks);
    Ok(SearchOutcome {
        policy,
        predicted_delta,
        evaluations,
    })
}

const EXHAUSTIVE_LIMIT: u128 = 2_000_000;

fn exhaustive(
    profile: &SensitivityProfile,
    all: &[Combo],
    budget: f32,
    n: usize,
) -> Result<SearchOutcome, LucError> {
    let states = (all.len() as u128)
        .checked_pow(n as u32)
        .unwrap_or(u128::MAX);
    if states > EXHAUSTIVE_LIMIT {
        return Err(LucError::BadParameter {
            reason: format!("exhaustive search space {states} exceeds limit {EXHAUSTIVE_LIMIT}"),
        });
    }
    let target_total = budget * n as f32;
    let mut best: Option<(Vec<Combo>, f32)> = None;
    let mut picks = vec![all[0]; n];
    let mut evaluations = 0usize;
    let mut idx = vec![0usize; n];
    loop {
        for l in 0..n {
            picks[l] = all[idx[l]];
        }
        evaluations += 1;
        let cost: f32 = picks.iter().map(|c| c.cost).sum();
        if cost <= target_total + 1e-6 {
            let d = total_delta(profile, &picks);
            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                best = Some((picks.clone(), d));
            }
        }
        // odometer increment
        let mut l = 0;
        loop {
            if l == n {
                let (picks, predicted_delta) = best.ok_or(LucError::InfeasibleBudget {
                    budget,
                    min_achievable: all.iter().map(|c| c.cost).fold(f32::INFINITY, f32::min),
                })?;
                return Ok(SearchOutcome {
                    policy: policy_of(profile, &picks),
                    predicted_delta,
                    evaluations,
                });
            }
            idx[l] += 1;
            if idx[l] < all.len() {
                break;
            }
            idx[l] = 0;
            l += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{profile as run_profile, FnOracle};
    use edge_llm_quant::BitWidth;

    fn synthetic_profile(n: usize) -> SensitivityProfile {
        let mut oracle = FnOracle::new(
            n,
            move |layer, p: LayerPolicy| {
                let w = (layer + 1) as f32;
                1.0 + w * ((16.0 - p.bits.bits() as f32) / 16.0) * 0.1 + w * p.prune_ratio * 0.1
            },
            || 1.0,
        );
        run_profile(
            &mut oracle,
            &[BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16],
            &[0.0, 0.25, 0.5, 0.75],
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_respect_budget() {
        let prof = synthetic_profile(4);
        for algo in [
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
            SearchAlgorithm::Exhaustive,
        ] {
            let out = search_policy(&prof, 0.25, algo).unwrap();
            assert!(
                out.policy.mean_cost() <= 0.25 + 1e-4,
                "{algo:?}: {}",
                out.policy.mean_cost()
            );
            assert_eq!(out.policy.n_layers(), 4);
        }
    }

    #[test]
    fn luc_beats_uniform_at_matched_budget() {
        // the essence of T2: at equal mean cost, layer-wise allocation has a
        // smaller predicted loss increase than the uniform assignment
        let prof = synthetic_profile(6);
        let uniform = CompressionPolicy::uniform(6, BitWidth::W4, 0.0);
        let budget = uniform.mean_cost();
        let uniform_delta: f32 = (0..6)
            .map(|l| prof.predicted_delta(l, 1 /* W4 */, 0 /* 0.0 */))
            .sum();
        // DP is optimal over the discretized space, so it must match or
        // beat uniform; greedy is a heuristic and only has to stay close.
        let dp = search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming).unwrap();
        assert!(
            dp.predicted_delta <= uniform_delta + 1e-5,
            "dp: searched {} vs uniform {uniform_delta}",
            dp.predicted_delta
        );
        let greedy = search_policy(&prof, budget, SearchAlgorithm::Greedy).unwrap();
        assert!(
            greedy.predicted_delta <= uniform_delta * 1.1,
            "greedy: searched {} vs uniform {uniform_delta}",
            greedy.predicted_delta
        );
    }

    #[test]
    fn dp_matches_exhaustive_on_small_problem() {
        let prof = synthetic_profile(3);
        let dp = search_policy(&prof, 0.3, SearchAlgorithm::DynamicProgramming).unwrap();
        let ex = search_policy(&prof, 0.3, SearchAlgorithm::Exhaustive).unwrap();
        assert!(
            (dp.predicted_delta - ex.predicted_delta).abs() < 1e-3,
            "dp {} vs exhaustive {}",
            dp.predicted_delta,
            ex.predicted_delta
        );
    }

    #[test]
    fn greedy_is_no_worse_than_double_optimal_here() {
        let prof = synthetic_profile(3);
        let gr = search_policy(&prof, 0.3, SearchAlgorithm::Greedy).unwrap();
        let ex = search_policy(&prof, 0.3, SearchAlgorithm::Exhaustive).unwrap();
        assert!(gr.predicted_delta <= 2.0 * ex.predicted_delta.max(1e-6));
    }

    #[test]
    fn sensitive_layers_get_gentler_compression() {
        let prof = synthetic_profile(6);
        let out = search_policy(&prof, 0.3, SearchAlgorithm::DynamicProgramming).unwrap();
        // layer 5 is 6x more sensitive than layer 0 in the synthetic
        // landscape, so its assigned cost should be at least layer 0's
        let c0 = out.policy.layer(0).cost();
        let c5 = out.policy.layer(5).cost();
        assert!(c5 >= c0, "sensitive layer got cheaper config: {c5} < {c0}");
    }

    #[test]
    fn infeasible_budget_errors() {
        let prof = synthetic_profile(2);
        assert!(matches!(
            search_policy(&prof, 0.001, SearchAlgorithm::Greedy),
            Err(LucError::InfeasibleBudget { .. })
        ));
    }

    #[test]
    fn exhaustive_guards_large_spaces() {
        let prof = synthetic_profile(12);
        assert!(matches!(
            search_policy(&prof, 0.5, SearchAlgorithm::Exhaustive),
            Err(LucError::BadParameter { .. })
        ));
    }

    #[test]
    fn relaxed_budget_returns_uncompressed() {
        let prof = synthetic_profile(3);
        let out = search_policy(&prof, 1.0, SearchAlgorithm::DynamicProgramming).unwrap();
        assert!(
            out.predicted_delta < 1e-6,
            "full budget should allow zero-delta policy"
        );
    }
}
