//! Property-based tests of LUC policy search invariants on randomized
//! sensitivity landscapes, driven by the in-repo seeded case harness
//! (`edge_llm_tensor::check`).

use edge_llm_luc::{
    pareto_frontier, profile, search_policy, CompressionPolicy, FnOracle, LayerPolicy, PolicyPoint,
    SearchAlgorithm, SensitivityProfile,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::check::run_cases;

fn random_profile(n_layers: usize, seed: u64) -> SensitivityProfile {
    let mut weights = Vec::new();
    let mut s = seed;
    for _ in 0..n_layers {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        weights.push(0.2 + (s >> 33) as f32 / u32::MAX as f32 * 3.0);
    }
    let mut oracle = FnOracle::new(
        n_layers,
        move |layer, p: LayerPolicy| {
            let w = weights[layer];
            1.0 + w * ((16.0 - p.bits.bits() as f32) / 16.0) * 0.1 + w * p.prune_ratio * 0.1
        },
        || 1.0,
    );
    profile(
        &mut oracle,
        &[BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16],
        &[0.0, 0.25, 0.5, 0.75],
    )
    .unwrap()
}

#[test]
fn every_algorithm_respects_random_budgets() {
    run_cases("search respects budgets", 32, |g| {
        let n = g.usize_in(2, 7);
        let budget = g.f32_in(0.05, 1.0);
        let prof = random_profile(n, g.u64());
        for algo in [SearchAlgorithm::Greedy, SearchAlgorithm::DynamicProgramming] {
            let out = search_policy(&prof, budget, algo).unwrap();
            assert!(
                out.policy.mean_cost() <= budget + 1e-4,
                "{:?} at budget {}: cost {}",
                algo,
                budget,
                out.policy.mean_cost()
            );
            assert_eq!(out.policy.n_layers(), n);
            assert!(out.policy.validate().is_ok());
            assert!(out.predicted_delta >= 0.0);
        }
    });
}

#[test]
fn dp_matches_exhaustive_within_discretization() {
    run_cases("dp vs exhaustive", 32, |g| {
        let budget = g.f32_in(0.1, 0.9);
        let prof = random_profile(3, g.u64());
        let dp = search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming).unwrap();
        let ex = search_policy(&prof, budget, SearchAlgorithm::Exhaustive).unwrap();
        // ceil-discretized DP can only lose a sliver of the budget
        assert!(
            dp.predicted_delta <= ex.predicted_delta + 0.05,
            "dp {} vs exhaustive {}",
            dp.predicted_delta,
            ex.predicted_delta
        );
    });
}

#[test]
fn looser_budgets_never_increase_delta() {
    run_cases("budget monotonicity", 32, |g| {
        let prof = random_profile(4, g.u64());
        let mut prev = f32::INFINITY;
        for budget in [0.1f32, 0.2, 0.4, 0.8, 1.0] {
            let out = search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming).unwrap();
            assert!(
                out.predicted_delta <= prev + 1e-5,
                "budget {} made things worse: {} > {}",
                budget,
                out.predicted_delta,
                prev
            );
            prev = out.predicted_delta;
        }
    });
}

#[test]
fn pareto_frontier_is_monotone_and_minimal() {
    run_cases("pareto frontier", 32, |g| {
        let n_points = g.usize_in(2, 20);
        let points: Vec<PolicyPoint> = (0..n_points)
            .map(|_| {
                let s = g.u64();
                PolicyPoint {
                    cost: ((s >> 5) % 1000) as f32 / 1000.0,
                    loss: ((s >> 25) % 1000) as f32 / 1000.0,
                    policy: CompressionPolicy::identity(1),
                }
            })
            .collect();
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert!(w[0].loss >= w[1].loss);
        }
        // no frontier point is dominated by any input point
        for f in &frontier {
            for p in &points {
                let dominates =
                    (p.cost <= f.cost && p.loss < f.loss) || (p.cost < f.cost && p.loss <= f.loss);
                assert!(!dominates);
            }
        }
    });
}

#[test]
fn policy_cost_bounds() {
    run_cases("policy cost bounds", 32, |g| {
        let bits = *g.choose(&BitWidth::ALL);
        let ratio = g.f32_in(0.0, 0.99);
        let p = LayerPolicy {
            bits,
            prune_ratio: ratio,
        };
        assert!(p.cost() > 0.0);
        assert!(p.cost() <= 1.0);
        assert!(p.memory() > 0.0);
        assert!(p.memory() <= 1.0 + 1e-6);
        assert!(p.validate().is_ok());
    });
}
