//! `edgellm` — the Edge-LLM reproduction's command-line interface.

use edge_llm_cli::{parse_args, run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{}", edge_llm_cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = run(&command, &mut stdout) {
        match e {
            CliError::Usage(_) => {
                eprintln!("{e}\n\n{}", edge_llm_cli::USAGE);
                std::process::exit(2);
            }
            CliError::Run(_) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
