//! Command-line interface for the Edge-LLM reproduction.
//!
//! Six subcommands cover the on-device lifecycle:
//!
//! ```text
//! edgellm adapt    --corpus notes.txt --budget 0.25 --out model.ckpt
//! edgellm generate --ckpt model.ckpt --prompt "monday:" --tokens 40
//! edgellm serve    --ckpt model.ckpt --requests queue.txt --batch 4
//! edgellm loadgen  --scenario burst --workers 2
//! edgellm inspect  --ckpt model.ckpt
//! edgellm policy   --corpus notes.txt --budget 0.25
//! ```
//!
//! Argument parsing and command execution live in this library so they are
//! unit-testable; `src/main.rs` is a thin wrapper.

use edge_llm::compress::apply_policy;
use edge_llm::oracle::ModelOracle;
use edge_llm::resilience::{resilient_adapt, ResilienceConfig};
use edge_llm_data::{Dataset, TaskGenerator, TextLmTask};
use edge_llm_fleet::{run_fleet_with_adapters, FleetConfig, ScenarioSpec};
use edge_llm_luc::{profile, search_policy, CompressionPolicy, SearchAlgorithm};
use edge_llm_model::{
    generate, load_model, save_model, AdapterTarget, AdaptiveTuner, Decoding, EdgeModel,
    ModelConfig, Sgd, TenantAdapter, TrainingCheckpoint, VotingCombiner, VotingPolicy,
    WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_serve::{BatchedInferenceEngine, FinishReason, ServeRequest};
use edge_llm_telemetry as telemetry;
use edge_llm_tensor::TensorRng;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The candidate bit-widths and ratios the `policy`/`adapt` commands sweep.
const BIT_CHOICES: [BitWidth; 4] = [BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16];
const RATIO_CHOICES: [f32; 4] = [0.0, 0.25, 0.5, 0.75];

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Adapt a model to a text corpus and write a checkpoint.
    Adapt {
        /// Path to the UTF-8 corpus file.
        corpus: String,
        /// Output checkpoint path.
        out: String,
        /// LUC mean-cost budget (1.0 = no compression).
        budget: f32,
        /// Backprop window depth.
        window: usize,
        /// Adaptation iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
        /// Write a resumable training state every N iterations (0 = off).
        checkpoint_every: usize,
        /// Resume from a training state written by `--checkpoint-every`.
        resume: Option<String>,
        /// Kernel worker threads (`0` = all cores). `None` leaves the
        /// `EDGELLM_THREADS` environment default in place.
        threads: Option<usize>,
        /// Write a JSON-lines telemetry trace to this path. `None` falls
        /// back to the `EDGELLM_TRACE` environment variable.
        trace_out: Option<String>,
    },
    /// Generate a continuation from an adapted checkpoint.
    Generate {
        /// Checkpoint path (written by `adapt`).
        ckpt: String,
        /// Prompt text (printable ASCII).
        prompt: String,
        /// Number of tokens to generate.
        tokens: usize,
        /// Top-k pool size (0 = greedy).
        top_k: usize,
        /// Sampling temperature.
        temperature: f32,
        /// RNG seed.
        seed: u64,
        /// Draft exit layer for self-speculative decoding (`Some` turns
        /// it on, overriding `top_k`; output equals greedy decode).
        draft_depth: Option<usize>,
        /// Draft tokens per verify pass when self-speculating.
        draft_k: usize,
    },
    /// Serve a batch of generation requests from a request file through
    /// the continuous-batching engine.
    Serve {
        /// Checkpoint path (written by `adapt`).
        ckpt: String,
        /// Path to the request file (one request per line, see `help`).
        requests: String,
        /// Maximum requests per batched forward pass.
        batch: usize,
        /// Kernel worker threads (`0` = all cores). `None` leaves the
        /// `EDGELLM_THREADS` environment default in place.
        threads: Option<usize>,
        /// Write a JSON-lines telemetry trace to this path. `None` falls
        /// back to the `EDGELLM_TRACE` environment variable.
        trace_out: Option<String>,
    },
    /// Drive a seeded traffic scenario through the sharded serving
    /// fleet and print the fleet report.
    Loadgen {
        /// Built-in scenario name (steady|burst|crash|stall).
        scenario: String,
        /// Number of engine workers.
        workers: usize,
        /// Batch slots per worker.
        batch: usize,
        /// Bounded per-worker queue depth.
        queue: usize,
        /// Replay budget per session after a worker crash.
        retries: usize,
        /// Shed sessions that queue longer than this many ticks.
        slo: Option<u64>,
        /// Override the scenario's traffic seed.
        seed: Option<u64>,
        /// Spread sessions across this many tenants, each with its own
        /// seeded LoRA adapter over the shared frozen base (0 = all
        /// sessions on the base).
        tenants: usize,
        /// Kernel worker threads (`0` = all cores). `None` leaves the
        /// `EDGELLM_THREADS` environment default in place.
        threads: Option<usize>,
        /// Write a JSON-lines telemetry trace to this path. `None` falls
        /// back to the `EDGELLM_TRACE` environment variable.
        trace_out: Option<String>,
    },
    /// Run, analyze, or gate a declarative experiment spec through the
    /// lab runner.
    Lab(LabCommand),
    /// Print a checkpoint's configuration and size.
    Inspect {
        /// Checkpoint path.
        ckpt: String,
    },
    /// Search and print a LUC policy for a corpus without adapting.
    Policy {
        /// Path to the UTF-8 corpus file.
        corpus: String,
        /// LUC mean-cost budget.
        budget: f32,
        /// RNG seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// The `edgellm lab` sub-subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum LabCommand {
    /// Execute every trial of an experiment spec and build its analysis
    /// tables.
    Run {
        /// Path to the experiment spec (JSONL, see `experiments/`).
        spec: String,
        /// Root directory for run artifacts.
        out_dir: String,
        /// Explicit run id (default: spec name + content digest).
        run_id: Option<String>,
        /// Kernel worker threads (`0` = all cores). `None` leaves the
        /// `EDGELLM_THREADS` environment default in place.
        threads: Option<usize>,
    },
    /// Rebuild the analysis tables for an existing run directory.
    Analyze {
        /// Run directory (`.lab/runs/<run_id>`).
        run: String,
    },
    /// Gate a run against a stored baseline (or regenerate it).
    Check {
        /// Run directory (`.lab/runs/<run_id>`).
        run: String,
        /// Baseline file (see `experiments/baselines/`).
        baseline: String,
        /// Regenerate the baseline from this run instead of checking.
        update: bool,
    },
}

/// CLI error: bad arguments or a failed command.
#[derive(Debug)]
pub enum CliError {
    /// The arguments did not parse.
    Usage(String),
    /// A command failed while running.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `edgellm help`.
pub const USAGE: &str = "\
edgellm — on-device LLM adaptation (Edge-LLM reproduction)

USAGE:
  edgellm adapt    --corpus <file> --out <ckpt> [--budget 0.25] [--window 2]
                   [--iterations 400] [--seed 42] [--checkpoint-every N]
                   [--resume <ckpt>.state] [--threads N] [--trace-out <path>]
  edgellm generate --ckpt <ckpt> --prompt <text> [--tokens 40] [--top-k 3]
                   [--temperature 0.8] [--seed 42]
                   [--draft-depth N [--draft-k 4]]
  edgellm serve    --ckpt <ckpt> --requests <file> [--batch 4] [--threads N]
                   [--trace-out <path>]
  edgellm loadgen  --scenario <steady|burst|crash|stall> [--workers 2]
                   [--batch 4] [--queue 16] [--retries 2] [--slo N]
                   [--seed N] [--tenants N] [--threads N]
                   [--trace-out <path>]
  edgellm lab run     --spec <file.jsonl> [--out-dir .lab] [--run-id <id>]
                      [--threads N]
  edgellm lab analyze --run <.lab/runs/ID>
  edgellm lab check   --run <.lab/runs/ID> --baseline <file.json> [--update]
  edgellm inspect  --ckpt <ckpt>
  edgellm policy   --corpus <file> [--budget 0.25] [--seed 42]
  edgellm help

Request file (serve): one request per line, '#' starts a comment line.
Key=value options, then ' :: ', then the prompt text:
  id=r1 tokens=20 mode=topk k=3 temp=0.9 seed=7 voting=conf deadline=40 :: monday:
Options (all optional): id, tokens (max new tokens), mode
(greedy|sample|topk|spec), k, depth (spec draft exit layer), temp,
seed, voting (final|last|conf|avg; spec defaults to final), deadline
(max fed tokens), tenant (decode with that tenant's LoRA adapter over
the shared frozen base; the adapter is seeded from the tenant name).
Each request decodes exactly as it would alone: batching never changes
outputs, only throughput — and a tenant's stream never changes with
who shares the batch.

Self-speculative decoding (generate --draft-depth N, serve mode=spec):
drafts k tokens from exit layer N's logits, verifies them in one
full-depth pass, and accepts the longest agreeing prefix plus the
verifier's correction. Output is bit-identical to greedy full-depth
decode — only throughput changes.

Load generation (loadgen): drives a seeded traffic scenario through the
sharded serving fleet against a synthetic tiny model — no checkpoint
needed. Scenarios bundle arrival patterns, priority mixes, and fault
schedules (worker crashes/stalls); the same scenario and seed always
produce the same sessions, shed decisions, and token streams, so fleet
behaviour under overload is a reproducible experiment. Only the
wall-clock decode latency line varies between runs. --tenants N spreads
sessions across N tenants, each decoding with its own seeded LoRA
adapter over the one frozen base on every worker.

Experiments (lab): a spec under experiments/ is a JSONL grid of seeded
scenarios (spec_decode|tenants|fleet|igemm families) with A/B variant
plans. `lab run` executes every (task x variant x repeat) trial
in-process, writes trial records under <out-dir>/runs/<run_id>/, builds
JSONL analysis tables (metrics, summaries, deltas, timing, oracles),
and fails if any differential oracle breaks — repeats must be
byte-identical, and declared variants_equal metrics must agree.
`lab check` gates the analysis against a stored baseline; with
--update it regenerates the baseline from the run (baselines are
generated, never hand-edited).

Kernel threads: results are bit-identical for every thread count, so
--threads only changes speed. 0 means all cores; the EDGELLM_THREADS
environment variable sets the default when the flag is absent.

Tracing: --trace-out <path> (or the EDGELLM_TRACE environment variable)
writes a JSON-lines span/counter trace of the run. Recording never
changes results, only observes them.
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value {v:?} for {flag}"))),
    }
}

fn parse_opt_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, CliError> {
    flag_value(args, flag)
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("invalid value {v:?} for {flag}")))
        })
        .transpose()
}

fn required_flag(args: &[String], flag: &str) -> Result<String, CliError> {
    flag_value(args, flag)
        .map(str::to_string)
        .ok_or_else(|| CliError::Usage(format!("missing required flag {flag}")))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown subcommands, missing required
/// flags, or unparseable values.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "adapt" => Ok(Command::Adapt {
            corpus: required_flag(rest, "--corpus")?,
            out: required_flag(rest, "--out")?,
            budget: parse_flag(rest, "--budget", 0.25)?,
            window: parse_flag(rest, "--window", 2)?,
            iterations: parse_flag(rest, "--iterations", 400)?,
            seed: parse_flag(rest, "--seed", 42)?,
            checkpoint_every: parse_flag(rest, "--checkpoint-every", 0)?,
            resume: flag_value(rest, "--resume").map(str::to_string),
            threads: parse_opt_flag(rest, "--threads")?,
            trace_out: flag_value(rest, "--trace-out").map(str::to_string),
        }),
        "generate" => Ok(Command::Generate {
            ckpt: required_flag(rest, "--ckpt")?,
            prompt: required_flag(rest, "--prompt")?,
            tokens: parse_flag(rest, "--tokens", 40)?,
            top_k: parse_flag(rest, "--top-k", 3)?,
            temperature: parse_flag(rest, "--temperature", 0.8)?,
            seed: parse_flag(rest, "--seed", 42)?,
            draft_depth: parse_opt_flag(rest, "--draft-depth")?,
            draft_k: parse_flag(rest, "--draft-k", 4)?,
        }),
        "serve" => Ok(Command::Serve {
            ckpt: required_flag(rest, "--ckpt")?,
            requests: required_flag(rest, "--requests")?,
            batch: parse_flag(rest, "--batch", 4)?,
            threads: parse_opt_flag(rest, "--threads")?,
            trace_out: flag_value(rest, "--trace-out").map(str::to_string),
        }),
        "loadgen" => Ok(Command::Loadgen {
            scenario: required_flag(rest, "--scenario")?,
            workers: parse_flag(rest, "--workers", 2)?,
            batch: parse_flag(rest, "--batch", 4)?,
            queue: parse_flag(rest, "--queue", 16)?,
            retries: parse_flag(rest, "--retries", 2)?,
            slo: parse_opt_flag(rest, "--slo")?,
            seed: parse_opt_flag(rest, "--seed")?,
            tenants: parse_flag(rest, "--tenants", 0)?,
            threads: parse_opt_flag(rest, "--threads")?,
            trace_out: flag_value(rest, "--trace-out").map(str::to_string),
        }),
        "lab" => {
            let Some(action) = rest.first() else {
                return Err(CliError::Usage(
                    "lab needs an action: run|analyze|check".to_string(),
                ));
            };
            let rest = &rest[1..];
            match action.as_str() {
                "run" => Ok(Command::Lab(LabCommand::Run {
                    spec: required_flag(rest, "--spec")?,
                    out_dir: flag_value(rest, "--out-dir").unwrap_or(".lab").to_string(),
                    run_id: flag_value(rest, "--run-id").map(str::to_string),
                    threads: parse_opt_flag(rest, "--threads")?,
                })),
                "analyze" => Ok(Command::Lab(LabCommand::Analyze {
                    run: required_flag(rest, "--run")?,
                })),
                "check" => Ok(Command::Lab(LabCommand::Check {
                    run: required_flag(rest, "--run")?,
                    baseline: required_flag(rest, "--baseline")?,
                    update: rest.iter().any(|a| a == "--update"),
                })),
                other => Err(CliError::Usage(format!(
                    "unknown lab action {other:?} (run|analyze|check)"
                ))),
            }
        }
        "inspect" => Ok(Command::Inspect {
            ckpt: required_flag(rest, "--ckpt")?,
        }),
        "policy" => Ok(Command::Policy {
            corpus: required_flag(rest, "--corpus")?,
            budget: parse_flag(rest, "--budget", 0.25)?,
            seed: parse_flag(rest, "--seed", 42)?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

fn run_err<E: fmt::Display>(e: E) -> CliError {
    CliError::Run(e.to_string())
}

/// Turns recording on when a trace destination is configured (flag first,
/// then `EDGELLM_TRACE`); returns the destination path.
fn start_trace(trace_out: &Option<String>) -> Option<String> {
    let path = trace_out.clone().or_else(telemetry::env_trace_path)?;
    telemetry::enable(std::sync::Arc::new(telemetry::MonotonicClock::default()));
    Some(path)
}

/// Stops recording and writes the collected events as JSON lines.
fn finish_trace<W: std::io::Write>(path: &str, out: &mut W) -> Result<(), CliError> {
    let events = telemetry::disable();
    let file = fs::File::create(path)
        .map_err(|e| CliError::Run(format!("cannot create trace file {path}: {e}")))?;
    let mut w = std::io::BufWriter::new(file);
    telemetry::write_jsonl(&mut w, &events).map_err(run_err)?;
    w.flush().map_err(run_err)?;
    writeln!(out, "trace written to {path} ({} events)", events.len()).map_err(run_err)
}

fn text_task(corpus_path: &str) -> Result<TextLmTask, CliError> {
    let corpus = fs::read_to_string(corpus_path)
        .map_err(|e| CliError::Run(format!("cannot read corpus {corpus_path}: {e}")))?;
    TextLmTask::new(&corpus).map_err(run_err)
}

/// Derives a deterministic per-tenant LoRA adapter from the tenant name
/// alone (FNV-1a of the name seeds the factors), so `serve` and
/// `loadgen` agree on what any tenant's adapter looks like without a
/// registry file. Rank-1 deltas on the first layer's attention input
/// and the last layer's FFN output are enough to make each tenant's
/// stream distinct while staying tiny next to the packed base.
fn seeded_tenant_adapter(cfg: &ModelConfig, tenant: &str) -> TenantAdapter {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let sites = [
        (0, AdapterTarget::Qkv),
        (cfg.n_layers - 1, AdapterTarget::Fc2),
    ];
    TenantAdapter::seeded(cfg, seed, 1, &sites)
}

fn cli_model_config(vocab: usize) -> ModelConfig {
    ModelConfig::tiny()
        .with_layers(4)
        .with_d_model(64, 4)
        .with_seq_len(48)
        .with_vocab(vocab)
}

fn search_corpus_policy(
    model: &EdgeModel,
    task: &TextLmTask,
    budget: f32,
    rng: &mut TensorRng,
) -> Result<CompressionPolicy, CliError> {
    let seq = model.config().seq_len;
    let calib: Vec<_> = (0..4).map(|_| task.sample(seq, rng)).collect();
    let tokens: Vec<usize> = calib.iter().flat_map(|s| s.tokens.clone()).collect();
    let targets: Vec<usize> = calib.iter().flat_map(|s| s.targets.clone()).collect();
    let mut oracle = ModelOracle::new(model, &tokens, &targets, 4);
    let prof = profile(&mut oracle, &BIT_CHOICES, &RATIO_CHOICES).map_err(run_err)?;
    Ok(
        search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming)
            .map_err(run_err)?
            .policy,
    )
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Run`] when file access, adaptation, or generation
/// fails.
pub fn run<W: std::io::Write>(command: &Command, out: &mut W) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}").map_err(run_err)?;
        }
        Command::Policy {
            corpus,
            budget,
            seed,
        } => {
            let task = text_task(corpus)?;
            let mut rng = TensorRng::seed_from(*seed);
            let model =
                EdgeModel::new(cli_model_config(task.vocab_size()), &mut rng).map_err(run_err)?;
            // brief warmup so sensitivity is meaningful
            let mut model = model;
            adapt_model(&mut model, &task, 100, 1, &mut rng)?;
            let policy = search_corpus_policy(&model, &task, *budget, &mut rng)?;
            writeln!(out, "policy: {policy}").map_err(run_err)?;
            writeln!(out, "compact: {}", policy.to_compact_string()).map_err(run_err)?;
            writeln!(
                out,
                "mean cost: {:.3}  mean bits: {:.1}",
                policy.mean_cost(),
                policy.mean_bits()
            )
            .map_err(run_err)?;
        }
        Command::Adapt {
            corpus,
            out: ckpt,
            budget,
            window,
            iterations,
            seed,
            checkpoint_every,
            resume,
            threads,
            trace_out,
        } => {
            if let Some(t) = threads {
                edge_llm_tensor::set_configured_threads(*t);
            }
            let trace_path = start_trace(trace_out);
            let task = text_task(corpus)?;
            // Dataset sampling uses its own seed-derived stream so a resumed
            // run can regenerate the identical dataset from the checkpoint.
            let (mut model, mut opt, mut rng, policy, data_seed, window, start) = match resume {
                Some(path) => {
                    let tc = TrainingCheckpoint::load_file(Path::new(path))
                        .map_err(|e| CliError::Run(format!("cannot resume from {path}: {e}")))?;
                    let (policy, data_seed, window) = decode_run_extra(&tc.extra)?;
                    let mut model = tc.build_model().map_err(run_err)?;
                    if model.config().vocab_size != task.vocab_size() {
                        return Err(CliError::Run(format!(
                            "training state vocabulary {} does not match corpus vocabulary {}",
                            model.config().vocab_size,
                            task.vocab_size()
                        )));
                    }
                    // Params first, then the policy: pruning re-selects the
                    // already-zeroed weights, so the mask is reproduced.
                    apply_policy(&mut model, &policy).map_err(run_err)?;
                    let start = tc.iteration as usize;
                    (
                        model,
                        tc.optimizer(),
                        tc.rng(),
                        policy,
                        data_seed,
                        window,
                        start,
                    )
                }
                None => {
                    let mut rng = TensorRng::seed_from(*seed);
                    let mut model = EdgeModel::new(cli_model_config(task.vocab_size()), &mut rng)
                        .map_err(run_err)?;
                    // warmup -> policy -> compressed windowed adaptation
                    let full_depth = model.n_layers();
                    adapt_model(&mut model, &task, iterations / 4, full_depth, &mut rng)?;
                    let policy = if *budget < 1.0 {
                        let p = search_corpus_policy(&model, &task, *budget, &mut rng)?;
                        apply_policy(&mut model, &p).map_err(run_err)?;
                        p
                    } else {
                        CompressionPolicy::identity(model.n_layers())
                    };
                    let data_seed = seed ^ 0xDA7A_5EED;
                    (model, Sgd::new(0.1), rng, policy, data_seed, *window, 0)
                }
            };
            let cfg = model.config().clone();
            let mut data_rng = TensorRng::seed_from(data_seed);
            let ds = Dataset::from_samples(
                (0..32)
                    .map(|_| task.sample(cfg.seq_len, &mut data_rng))
                    .collect(),
            );
            let schedule = if window >= cfg.n_layers {
                WindowSchedule::FullDepth
            } else {
                WindowSchedule::RoundRobin {
                    depth: window.max(1),
                }
            };
            let mut tuner = AdaptiveTuner::new(schedule);
            tuner.set_iteration(start);
            let state_path = format!("{ckpt}.state");
            let res = ResilienceConfig {
                checkpoint_every: *checkpoint_every,
                checkpoint_path: (*checkpoint_every > 0).then(|| PathBuf::from(&state_path)),
                ..ResilienceConfig::default()
            };
            let extra = encode_run_extra(&policy, data_seed, window);
            let run = resilient_adapt(
                &mut model,
                &mut opt,
                &mut tuner,
                &mut rng,
                &ds,
                4,
                *iterations,
                extra,
                &res,
            )
            .map_err(run_err)?;
            let mut file = fs::File::create(ckpt)
                .map_err(|e| CliError::Run(format!("cannot create {ckpt}: {e}")))?;
            save_model(&model, &mut file).map_err(run_err)?;
            file.flush().map_err(run_err)?;
            if run.steps_executed == 0 {
                writeln!(
                    out,
                    "nothing to do: resumed at iteration {start} of {iterations}"
                )
                .map_err(run_err)?;
            } else {
                writeln!(out, "adapted on {corpus}: final loss {:.3}", run.final_loss)
                    .map_err(run_err)?;
            }
            writeln!(out, "policy: {}", policy.to_compact_string()).map_err(run_err)?;
            if !run.journal.is_empty() {
                writeln!(out, "recovery journal:").map_err(run_err)?;
                write!(out, "{}", run.journal).map_err(run_err)?;
            }
            writeln!(out, "checkpoint written to {ckpt}").map_err(run_err)?;
            if *checkpoint_every > 0 {
                writeln!(out, "training state written to {state_path}").map_err(run_err)?;
            }
            if run.steps_executed > 0 {
                let p = run.phases;
                let ms = |ns: u64| ns as f64 / 1e6;
                writeln!(
                    out,
                    "phase totals: forward {:.1}ms backward {:.1}ms optimizer {:.1}ms \
                     checkpoint {:.1}ms ({} layer requants, {} cache evictions)",
                    ms(p.forward_ns),
                    ms(p.backward_ns),
                    ms(p.optimizer_ns),
                    ms(p.checkpoint_ns),
                    p.requant_layers,
                    p.cache_invalidations
                )
                .map_err(run_err)?;
            }
            if let Some(path) = &trace_path {
                finish_trace(path, out)?;
            }
        }
        Command::Generate {
            ckpt,
            prompt,
            tokens,
            top_k,
            temperature,
            seed,
            draft_depth,
            draft_k,
        } => {
            let mut file = fs::File::open(ckpt)
                .map_err(|e| CliError::Run(format!("cannot open {ckpt}: {e}")))?;
            let model = load_model(&mut file).map_err(run_err)?;
            let tok = edge_llm_data::CharTokenizer::new();
            if model.config().vocab_size != tok.vocab_size() {
                return Err(CliError::Run(format!(
                    "checkpoint vocabulary {} is not a text-model vocabulary ({})",
                    model.config().vocab_size,
                    tok.vocab_size()
                )));
            }
            let mut rng = TensorRng::seed_from(*seed);
            // --draft-depth switches to self-speculative decoding, which
            // verifies (and emits) the final exit's greedy tokens — so it
            // pins the voting policy to final-only.
            let (decoding, voting) = if let Some(depth) = draft_depth {
                (
                    Decoding::SelfSpeculative {
                        draft_depth: *depth,
                        k: *draft_k,
                    },
                    VotingPolicy::final_only(model.n_layers()),
                )
            } else {
                let decoding = if *top_k == 0 {
                    Decoding::Greedy
                } else {
                    Decoding::TopK {
                        k: *top_k,
                        temperature: *temperature,
                    }
                };
                (
                    decoding,
                    VotingPolicy::all_exits(
                        model.n_layers(),
                        VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
                    ),
                )
            };
            let ids = tok.encode(prompt);
            // Generation never mutates weights: pack any quantized layers
            // so decode runs off integer codes (no-op on dense models).
            model.pack_frozen_weights().map_err(run_err)?;
            let generated =
                generate(&model, &voting, &ids, *tokens, decoding, &mut rng).map_err(run_err)?;
            writeln!(out, "{}", tok.decode(&generated)).map_err(run_err)?;
        }
        Command::Serve {
            ckpt,
            requests,
            batch,
            threads,
            trace_out,
        } => {
            if let Some(t) = threads {
                edge_llm_tensor::set_configured_threads(*t);
            }
            let trace_path = start_trace(trace_out);
            let mut file = fs::File::open(ckpt)
                .map_err(|e| CliError::Run(format!("cannot open {ckpt}: {e}")))?;
            let model = load_model(&mut file).map_err(run_err)?;
            let tok = edge_llm_data::CharTokenizer::new();
            if model.config().vocab_size != tok.vocab_size() {
                return Err(CliError::Run(format!(
                    "checkpoint vocabulary {} is not a text-model vocabulary ({})",
                    model.config().vocab_size,
                    tok.vocab_size()
                )));
            }
            let text = fs::read_to_string(requests)
                .map_err(|e| CliError::Run(format!("cannot read requests {requests}: {e}")))?;
            let parsed = parse_request_file(&text, &tok, model.n_layers())?;
            if parsed.is_empty() {
                return Err(CliError::Run(format!("no requests in {requests}")));
            }
            let mut engine = BatchedInferenceEngine::new(&model, *batch).map_err(run_err)?;
            // every tenant named in the file gets its name-seeded adapter
            // registered up front; requests without one run the base
            let mut tenants: Vec<String> = Vec::new();
            for t in parsed.iter().filter_map(|r| r.tenant.clone()) {
                if !tenants.contains(&t) {
                    tenants.push(t);
                }
            }
            for t in &tenants {
                engine
                    .register_adapter(t, seeded_tenant_adapter(model.config(), t))
                    .map_err(run_err)?;
            }
            let ids: Vec<String> = parsed.iter().map(|r| r.id.clone()).collect();
            for r in parsed {
                engine.submit(r);
            }
            let t0 = std::time::Instant::now();
            let outcomes = engine.run_to_completion().map_err(run_err)?;
            let elapsed = t0.elapsed().as_secs_f64();
            let mut total_tokens = 0usize;
            for id in &ids {
                let o = outcomes
                    .iter()
                    .find(|o| &o.id == id)
                    .expect("every submission produces an outcome");
                match &o.finish {
                    FinishReason::Rejected { reason } => {
                        writeln!(out, "{id} [rejected: {reason}]").map_err(run_err)?;
                    }
                    finish => {
                        let status = match finish {
                            FinishReason::Completed => "completed",
                            FinishReason::DeadlineExceeded => "deadline exceeded",
                            FinishReason::CapacityExhausted => "capacity exhausted",
                            FinishReason::Rejected { .. } => unreachable!("handled above"),
                        };
                        total_tokens += o.tokens.len();
                        writeln!(
                            out,
                            "{id} [{status}, {} tokens, {} steps]: {}",
                            o.tokens.len(),
                            o.steps,
                            tok.decode(&o.tokens)
                        )
                        .map_err(run_err)?;
                    }
                }
            }
            writeln!(
                out,
                "served {} requests in {elapsed:.2}s: {total_tokens} tokens, \
                 {:.1} tokens/s, {} batched passes, {} resident weight bytes",
                ids.len(),
                total_tokens as f64 / elapsed.max(1e-9),
                engine.steps_run(),
                engine.weight_resident_bytes()
            )
            .map_err(run_err)?;
            let report = engine.report();
            writeln!(
                out,
                "latency: queue wait {} | decode token {}",
                report.queue_wait, report.decode_token
            )
            .map_err(run_err)?;
            if report.spec_rounds > 0 {
                // a round with zero drafts has no acceptance rate — print
                // n/a rather than a fabricated 0.00
                let ratio = |v: Option<f64>| match v {
                    Some(v) => format!("{v:.2}"),
                    None => "n/a".to_string(),
                };
                writeln!(
                    out,
                    "speculative: {} rounds, acceptance rate {}, \
                     {} tokens/verify pass",
                    report.spec_rounds,
                    ratio(report.spec_acceptance_rate()),
                    ratio(report.spec_tokens_per_verify_pass())
                )
                .map_err(run_err)?;
            }
            if !tenants.is_empty() {
                let resident: Vec<String> = report
                    .adapter_resident_bytes
                    .iter()
                    .map(|(t, b)| format!("{t}={b}B"))
                    .collect();
                writeln!(
                    out,
                    "adapters: {} hits, {} misses, {} lru + {} replaced evictions; \
                     resident: {}",
                    report.adapter_hits,
                    report.adapter_misses,
                    report.adapter_evictions_lru,
                    report.adapter_evictions_replaced,
                    if resident.is_empty() {
                        "none".to_string()
                    } else {
                        resident.join(" ")
                    }
                )
                .map_err(run_err)?;
            }
            if let Some(path) = &trace_path {
                finish_trace(path, out)?;
            }
        }
        Command::Loadgen {
            scenario,
            workers,
            batch,
            queue,
            retries,
            slo,
            seed,
            tenants,
            threads,
            trace_out,
        } => {
            if let Some(t) = threads {
                edge_llm_tensor::set_configured_threads(*t);
            }
            let trace_path = start_trace(trace_out);
            let mut spec = ScenarioSpec::builtin(scenario).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown scenario {scenario:?} (expected one of {})",
                    ScenarioSpec::builtin_names().join(", ")
                ))
            })?;
            if let Some(s) = seed {
                spec.seed = *s;
            }
            spec.tenants = *tenants;
            // the fleet is exercised against a synthetic tiny model: the
            // scenario is about router behaviour, not model quality
            let mut rng = TensorRng::seed_from(17);
            let model = EdgeModel::new(ModelConfig::tiny(), &mut rng).map_err(run_err)?;
            let traffic = spec.generate(model.config().vocab_size, model.n_layers());
            let cfg = FleetConfig {
                workers: *workers,
                batch_per_worker: *batch,
                queue_depth: *queue,
                max_retries: *retries,
                slo_queue_ticks: *slo,
                faults: spec.faults.clone(),
            };
            writeln!(
                out,
                "scenario {} (seed {}): {} sessions over {} ticks, \
                 {} workers x {} slots, queue {}, retries {}",
                spec.name,
                spec.seed,
                traffic.len(),
                spec.span_ticks,
                workers,
                batch,
                queue,
                retries
            )
            .map_err(run_err)?;
            for fault in &spec.faults {
                writeln!(
                    out,
                    "  fault @tick {}: {}",
                    fault.at_iteration,
                    fault.kind.label()
                )
                .map_err(run_err)?;
            }
            let adapters: Vec<(String, TenantAdapter)> = (0..*tenants)
                .map(|i| {
                    let name = format!("tenant-{i}");
                    let adapter = seeded_tenant_adapter(model.config(), &name);
                    (name, adapter)
                })
                .collect();
            if !adapters.is_empty() {
                writeln!(
                    out,
                    "  {} tenant adapters over one frozen base",
                    adapters.len()
                )
                .map_err(run_err)?;
            }
            let run =
                run_fleet_with_adapters(&model, &cfg, &adapters, &traffic).map_err(run_err)?;
            writeln!(out, "{}", run.report).map_err(run_err)?;
            if let Some(path) = &trace_path {
                finish_trace(path, out)?;
            }
        }
        Command::Lab(lab) => run_lab(lab, out)?,
        Command::Inspect { ckpt } => {
            let mut file = fs::File::open(ckpt)
                .map_err(|e| CliError::Run(format!("cannot open {ckpt}: {e}")))?;
            let model = load_model(&mut file).map_err(run_err)?;
            let cfg = model.config();
            writeln!(out, "layers: {}", cfg.n_layers).map_err(run_err)?;
            writeln!(out, "d_model: {} ({} heads)", cfg.d_model, cfg.n_heads).map_err(run_err)?;
            writeln!(out, "seq_len: {}", cfg.seq_len).map_err(run_err)?;
            writeln!(out, "vocab: {}", cfg.vocab_size).map_err(run_err)?;
            writeln!(out, "parameters: {}", model.num_params()).map_err(run_err)?;
        }
    }
    Ok(())
}

/// Executes one `edgellm lab` action. Oracle or gate failures exit
/// through [`CliError::Run`] after every violation is printed, so a red
/// verify shows the whole picture, not just the first break.
fn run_lab<W: std::io::Write>(lab: &LabCommand, out: &mut W) -> Result<(), CliError> {
    match lab {
        LabCommand::Run {
            spec,
            out_dir,
            run_id,
            threads,
        } => {
            if let Some(t) = threads {
                edge_llm_tensor::set_configured_threads(*t);
            }
            let spec_text = fs::read_to_string(spec)
                .map_err(|e| CliError::Run(format!("cannot read {spec}: {e}")))?;
            let parsed = edge_llm_lab::ExperimentSpec::parse_jsonl(&spec_text).map_err(run_err)?;
            let opts = edge_llm_lab::RunOptions {
                out_dir: PathBuf::from(out_dir),
                run_id: run_id.clone(),
            };
            let outcome =
                edge_llm_lab::run_experiment(&parsed, &spec_text, &opts).map_err(run_err)?;
            writeln!(
                out,
                "experiment {}: {} trials -> {}",
                parsed.name,
                outcome.trials,
                outcome.run_dir.display()
            )
            .map_err(run_err)?;
            let report = edge_llm_lab::analyze_run(&outcome.run_dir).map_err(run_err)?;
            print_analysis(&report, out)?;
            if !report.oracle_failures.is_empty() {
                return Err(CliError::Run(format!(
                    "{} differential oracle(s) failed",
                    report.oracle_failures.len()
                )));
            }
        }
        LabCommand::Analyze { run } => {
            let report = edge_llm_lab::analyze_run(Path::new(run)).map_err(run_err)?;
            print_analysis(&report, out)?;
            if !report.oracle_failures.is_empty() {
                return Err(CliError::Run(format!(
                    "{} differential oracle(s) failed",
                    report.oracle_failures.len()
                )));
            }
        }
        LabCommand::Check {
            run,
            baseline,
            update,
        } => {
            let report = edge_llm_lab::check_run(Path::new(run), Path::new(baseline), *update)
                .map_err(run_err)?;
            if report.updated {
                writeln!(out, "baseline regenerated: {baseline}").map_err(run_err)?;
                return Ok(());
            }
            for failure in &report.failures {
                writeln!(out, "FAIL {failure}").map_err(run_err)?;
            }
            if report.failures.is_empty() {
                writeln!(
                    out,
                    "check passed: {} assertions against {baseline}",
                    report.checked
                )
                .map_err(run_err)?;
            } else {
                return Err(CliError::Run(format!(
                    "{} of {} checks failed against {baseline}",
                    report.failures.len(),
                    report.checked
                )));
            }
        }
    }
    Ok(())
}

fn print_analysis<W: std::io::Write>(
    report: &edge_llm_lab::AnalysisReport,
    out: &mut W,
) -> Result<(), CliError> {
    for (table, rows) in &report.table_rows {
        writeln!(out, "  analysis/{table}: {rows} rows").map_err(run_err)?;
    }
    for failure in &report.oracle_failures {
        writeln!(out, "ORACLE FAIL {failure}").map_err(run_err)?;
    }
    Ok(())
}

/// Parses a serve request file: one request per line, `#` comment lines
/// and blank lines skipped. Each line is `key=value ... :: prompt text`.
fn parse_request_file(
    text: &str,
    tok: &edge_llm_data::CharTokenizer,
    n_layers: usize,
) -> Result<Vec<ServeRequest>, CliError> {
    let mut requests = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let n = lineno + 1;
        // a line may start at the separator (no options at all)
        let (head, prompt_text) = if let Some(rest) = line.strip_prefix(":: ") {
            ("", rest)
        } else if let Some(split) = line.split_once(" :: ") {
            split
        } else {
            return Err(CliError::Usage(format!(
                "request line {n}: missing ' :: ' between options and prompt"
            )));
        };
        let mut id = format!("req{}", requests.len() + 1);
        let mut tokens = 20usize;
        let mut mode = "greedy".to_string();
        let mut k = 3usize;
        let mut temp = 0.8f32;
        let mut seed = 42u64;
        let mut depth = 1usize;
        let mut voting_name: Option<String> = None;
        let mut deadline = None;
        let mut tenant = None;
        for pair in head.split_whitespace() {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(CliError::Usage(format!(
                    "request line {n}: expected key=value, got {pair:?}"
                )));
            };
            let bad_value = || {
                CliError::Usage(format!(
                    "request line {n}: invalid value {value:?} for {key}"
                ))
            };
            match key {
                "id" => id = value.to_string(),
                "tokens" => tokens = value.parse().map_err(|_| bad_value())?,
                "mode" => mode = value.to_string(),
                "k" => k = value.parse().map_err(|_| bad_value())?,
                "depth" => depth = value.parse().map_err(|_| bad_value())?,
                "temp" => temp = value.parse().map_err(|_| bad_value())?,
                "seed" => seed = value.parse().map_err(|_| bad_value())?,
                "voting" => voting_name = Some(value.to_string()),
                "deadline" => deadline = Some(value.parse().map_err(|_| bad_value())?),
                "tenant" => {
                    if value.is_empty() {
                        return Err(bad_value());
                    }
                    tenant = Some(value.to_string());
                }
                other => {
                    return Err(CliError::Usage(format!(
                        "request line {n}: unknown option {other:?}"
                    )));
                }
            }
        }
        let decoding = match mode.as_str() {
            "greedy" => Decoding::Greedy,
            "sample" => Decoding::Sample { temperature: temp },
            "topk" => Decoding::TopK {
                k,
                temperature: temp,
            },
            "spec" => Decoding::SelfSpeculative {
                draft_depth: depth,
                k,
            },
            other => {
                return Err(CliError::Usage(format!(
                    "request line {n}: unknown mode {other:?} (greedy|sample|topk|spec)"
                )));
            }
        };
        // spec requests verify against the final exit, so default the
        // voting to `final` instead of the multi-exit blend
        let voting_name = voting_name
            .unwrap_or_else(|| if mode == "spec" { "final" } else { "conf" }.to_string());
        let voting = match voting_name.as_str() {
            "final" => VotingPolicy::final_only(n_layers),
            "last" => VotingPolicy::all_exits(n_layers, VotingCombiner::LastExit),
            "conf" => VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            ),
            "avg" => VotingPolicy::all_exits(n_layers, VotingCombiner::Average),
            other => {
                return Err(CliError::Usage(format!(
                    "request line {n}: unknown voting {other:?} (final|last|conf|avg)"
                )));
            }
        };
        let prompt = tok.encode(prompt_text);
        if prompt.is_empty() {
            return Err(CliError::Usage(format!("request line {n}: empty prompt")));
        }
        requests.push(ServeRequest {
            id,
            prompt,
            max_new_tokens: tokens,
            decoding,
            voting,
            seed,
            deadline_steps: deadline,
            tenant,
        });
    }
    Ok(requests)
}

/// Encodes everything a resumed `adapt` needs beyond the training state
/// itself: the applied policy, the dataset seed, and the window depth.
fn encode_run_extra(policy: &CompressionPolicy, data_seed: u64, window: usize) -> Vec<u8> {
    format!(
        "policy={}\ndata_seed={data_seed}\nwindow={window}\n",
        policy.to_compact_string()
    )
    .into_bytes()
}

fn decode_run_extra(extra: &[u8]) -> Result<(CompressionPolicy, u64, usize), CliError> {
    let text = std::str::from_utf8(extra)
        .map_err(|_| CliError::Run("training state metadata is not UTF-8".into()))?;
    let mut policy = None;
    let mut data_seed = None;
    let mut window = None;
    for line in text.lines() {
        match line.split_once('=') {
            Some(("policy", v)) => {
                policy = Some(CompressionPolicy::parse_compact(v).map_err(run_err)?);
            }
            Some(("data_seed", v)) => data_seed = v.parse::<u64>().ok(),
            Some(("window", v)) => window = v.parse::<usize>().ok(),
            _ => {}
        }
    }
    match (policy, data_seed, window) {
        (Some(p), Some(d), Some(w)) => Ok((p, d, w)),
        _ => Err(CliError::Run(
            "training state was not written by `edgellm adapt` (missing run metadata)".into(),
        )),
    }
}

fn adapt_model(
    model: &mut EdgeModel,
    task: &TextLmTask,
    iterations: usize,
    window: usize,
    rng: &mut TensorRng,
) -> Result<f32, CliError> {
    let cfg = model.config().clone();
    let ds = Dataset::from_samples((0..32).map(|_| task.sample(cfg.seq_len, rng)).collect());
    let schedule = if window >= cfg.n_layers {
        WindowSchedule::FullDepth
    } else {
        WindowSchedule::RoundRobin {
            depth: window.max(1),
        }
    };
    let mut tuner = AdaptiveTuner::new(schedule);
    let mut opt = Sgd::new(0.1);
    let mut last = f32::NAN;
    for it in 0..iterations {
        let b = ds.batch_at(it * 4, 4);
        last = tuner
            .step(model, &mut opt, &b.tokens, &b.targets, b.batch)
            .map_err(run_err)?
            .loss;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_adapt_with_defaults() {
        let cmd = parse_args(&argv("adapt --corpus notes.txt --out m.ckpt")).unwrap();
        assert_eq!(
            cmd,
            Command::Adapt {
                corpus: "notes.txt".into(),
                out: "m.ckpt".into(),
                budget: 0.25,
                window: 2,
                iterations: 400,
                seed: 42,
                checkpoint_every: 0,
                resume: None,
                threads: None,
                trace_out: None,
            }
        );
    }

    #[test]
    fn parse_trace_out_flag() {
        let cmd = parse_args(&argv("adapt --corpus a --out b --trace-out trace.jsonl")).unwrap();
        match cmd {
            Command::Adapt { trace_out, .. } => {
                assert_eq!(trace_out.as_deref(), Some("trace.jsonl"))
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&argv("serve --ckpt m --requests q --trace-out t.jsonl")).unwrap();
        match cmd {
            Command::Serve { trace_out, .. } => assert_eq!(trace_out.as_deref(), Some("t.jsonl")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_adapt_threads_flag() {
        let cmd = parse_args(&argv("adapt --corpus notes.txt --out m.ckpt --threads 4")).unwrap();
        match cmd {
            Command::Adapt { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse_args(&argv("adapt --corpus a --out b --threads many")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_adapt_resilience_flags() {
        let cmd = parse_args(&argv(
            "adapt --corpus notes.txt --out m.ckpt --checkpoint-every 25 --resume m.ckpt.state",
        ))
        .unwrap();
        match cmd {
            Command::Adapt {
                checkpoint_every,
                resume,
                ..
            } => {
                assert_eq!(checkpoint_every, 25);
                assert_eq!(resume.as_deref(), Some("m.ckpt.state"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_generate_flags() {
        let cmd = parse_args(&argv(
            "generate --ckpt m.ckpt --prompt hello --tokens 10 --top-k 0 --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                tokens,
                top_k,
                seed,
                ..
            } => {
                assert_eq!(tokens, 10);
                assert_eq!(top_k, 0);
                assert_eq!(seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_generate_draft_flags() {
        let cmd = parse_args(&argv(
            "generate --ckpt m.ckpt --prompt hi --draft-depth 2 --draft-k 8",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                draft_depth,
                draft_k,
                ..
            } => {
                assert_eq!(draft_depth, Some(2));
                assert_eq!(draft_k, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
        // speculation is off by default
        match parse_args(&argv("generate --ckpt m.ckpt --prompt hi")).unwrap() {
            Command::Generate {
                draft_depth,
                draft_k,
                ..
            } => {
                assert_eq!(draft_depth, None);
                assert_eq!(draft_k, 4);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse_args(&argv("generate --ckpt m --prompt p --draft-depth deep")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(matches!(
            parse_args(&argv("adapt --out x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("inspect")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bad_value_errors() {
        assert!(matches!(
            parse_args(&argv("adapt --corpus a --out b --budget abc")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(matches!(
            parse_args(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn empty_args_are_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        let mut buf = Vec::new();
        run(&Command::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("edgellm adapt"));
    }

    #[test]
    fn end_to_end_adapt_inspect_generate() {
        let dir = std::env::temp_dir().join("edgellm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("notes.txt");
        let ckpt_path = dir.join("model.ckpt");
        std::fs::write(
            &corpus_path,
            "water the plants. water the plants. check the sensors. water the plants. ",
        )
        .unwrap();
        let adapt = Command::Adapt {
            corpus: corpus_path.to_string_lossy().into_owned(),
            out: ckpt_path.to_string_lossy().into_owned(),
            budget: 0.5,
            window: 2,
            iterations: 20,
            seed: 1,
            checkpoint_every: 0,
            resume: None,
            threads: None,
            trace_out: None,
        };
        let mut buf = Vec::new();
        run(&adapt, &mut buf).unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("checkpoint written"));

        let mut buf = Vec::new();
        run(
            &Command::Inspect {
                ckpt: ckpt_path.to_string_lossy().into_owned(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("layers: 4"));
        assert!(text.contains("vocab: 96"));

        let mut buf = Vec::new();
        run(
            &Command::Generate {
                ckpt: ckpt_path.to_string_lossy().into_owned(),
                prompt: "water".into(),
                tokens: 8,
                top_k: 0,
                temperature: 1.0,
                seed: 2,
                draft_depth: None,
                draft_k: 4,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("water"));
        assert!(text.trim_end().len() >= "water".len() + 8);

        // self-speculative decode emits the final exit's greedy stream, so
        // its text is identical for every draft depth and k
        let spec_text = |depth: usize, k: usize| {
            let mut buf = Vec::new();
            run(
                &Command::Generate {
                    ckpt: ckpt_path.to_string_lossy().into_owned(),
                    prompt: "water".into(),
                    tokens: 8,
                    top_k: 0,
                    temperature: 1.0,
                    seed: 2,
                    draft_depth: Some(depth),
                    draft_k: k,
                },
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let reference = spec_text(1, 2);
        assert!(reference.starts_with("water"), "{reference}");
        assert_eq!(spec_text(2, 4), reference);
        assert_eq!(spec_text(3, 8), reference);
    }

    fn adapt_cmd(corpus: &Path, ckpt: &Path, iterations: usize) -> Command {
        Command::Adapt {
            corpus: corpus.to_string_lossy().into_owned(),
            out: ckpt.to_string_lossy().into_owned(),
            budget: 1.0,
            window: 2,
            iterations,
            seed: 3,
            checkpoint_every: 0,
            resume: None,
            threads: None,
            trace_out: None,
        }
    }

    #[test]
    fn checkpoint_every_writes_state_and_resume_continues() {
        let dir = std::env::temp_dir().join("edgellm-cli-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("notes.txt");
        let ckpt_path = dir.join("model.ckpt");
        std::fs::write(&corpus_path, "check the sensors. water the plants. ").unwrap();

        let mut first = adapt_cmd(&corpus_path, &ckpt_path, 12);
        if let Command::Adapt {
            checkpoint_every, ..
        } = &mut first
        {
            *checkpoint_every = 6;
        }
        let mut buf = Vec::new();
        run(&first, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("training state written"));
        let state_path = dir.join("model.ckpt.state");
        assert!(state_path.exists());

        // resume past the recorded iteration and finish the run
        let mut second = adapt_cmd(&corpus_path, &ckpt_path, 16);
        if let Command::Adapt { resume, .. } = &mut second {
            *resume = Some(state_path.to_string_lossy().into_owned());
        }
        let mut buf = Vec::new();
        run(&second, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("adapted on"), "resume did not run: {text}");
        assert!(text.contains("checkpoint written"));

        // resuming at-or-past the target is a clean no-op, not an error
        let mut third = adapt_cmd(&corpus_path, &ckpt_path, 6);
        if let Command::Adapt { resume, .. } = &mut third {
            *resume = Some(state_path.to_string_lossy().into_owned());
        }
        let mut buf = Vec::new();
        run(&third, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("nothing to do"));
    }

    #[test]
    fn resume_rejects_corrupt_state() {
        let dir = std::env::temp_dir().join("edgellm-cli-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("notes.txt");
        let ckpt_path = dir.join("model.ckpt");
        std::fs::write(&corpus_path, "water the plants. check the sensors. ").unwrap();

        let mut first = adapt_cmd(&corpus_path, &ckpt_path, 8);
        if let Command::Adapt {
            checkpoint_every, ..
        } = &mut first
        {
            *checkpoint_every = 4;
        }
        run(&first, &mut Vec::new()).unwrap();
        let state_path = dir.join("model.ckpt.state");

        // flip one payload byte: the checksum must catch it
        let mut bytes = std::fs::read(&state_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let flipped = dir.join("flipped.state");
        std::fs::write(&flipped, &bytes).unwrap();
        let mut cmd = adapt_cmd(&corpus_path, &ckpt_path, 16);
        if let Command::Adapt { resume, .. } = &mut cmd {
            *resume = Some(flipped.to_string_lossy().into_owned());
        }
        match run(&cmd, &mut Vec::new()) {
            Err(CliError::Run(msg)) => assert!(msg.contains("cannot resume"), "message: {msg}"),
            other => panic!("corrupt state accepted: {other:?}"),
        }

        // truncation is rejected too
        let truncated = dir.join("truncated.state");
        std::fs::write(&truncated, &std::fs::read(&state_path).unwrap()[..20]).unwrap();
        if let Command::Adapt { resume, .. } = &mut cmd {
            *resume = Some(truncated.to_string_lossy().into_owned());
        }
        assert!(matches!(run(&cmd, &mut Vec::new()), Err(CliError::Run(_))));

        // a model-only (v1) checkpoint is a version mismatch, not a panic
        if let Command::Adapt { resume, .. } = &mut cmd {
            *resume = Some(ckpt_path.to_string_lossy().into_owned());
        }
        match run(&cmd, &mut Vec::new()) {
            Err(CliError::Run(msg)) => {
                assert!(msg.contains("format v1"), "message: {msg}");
            }
            other => panic!("v1 checkpoint accepted as training state: {other:?}"),
        }
    }

    #[test]
    fn parse_serve_flags() {
        let cmd = parse_args(&argv(
            "serve --ckpt m.ckpt --requests q.txt --batch 8 --threads 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                ckpt: "m.ckpt".into(),
                requests: "q.txt".into(),
                batch: 8,
                threads: Some(2),
                trace_out: None,
            }
        );
        assert!(matches!(
            parse_args(&argv("serve --ckpt m.ckpt")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_loadgen_flags() {
        let cmd = parse_args(&argv(
            "loadgen --scenario burst --workers 4 --slo 8 --tenants 3",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Loadgen {
                scenario: "burst".into(),
                workers: 4,
                batch: 4,
                queue: 16,
                retries: 2,
                slo: Some(8),
                seed: None,
                tenants: 3,
                threads: None,
                trace_out: None,
            }
        );
        assert!(matches!(
            parse_args(&argv("loadgen --workers 2")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn loadgen_rejects_unknown_scenarios() {
        let cmd = parse_args(&argv("loadgen --scenario banana")).unwrap();
        match run(&cmd, &mut Vec::new()) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("banana"), "{msg}");
                assert!(msg.contains("steady"), "names not listed: {msg}");
            }
            other => panic!("unknown scenario accepted: {other:?}"),
        }
    }

    #[test]
    fn end_to_end_loadgen_reports_fleet_behaviour() {
        let cmd = parse_args(&argv(
            "loadgen --scenario crash --workers 2 --batch 2 --queue 4 --retries 2",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("scenario crash"), "{text}");
        assert!(text.contains("fault @tick 4: worker-crash(0)"), "{text}");
        assert!(text.contains("fleet:"), "{text}");
        assert!(text.contains("queue wait (ticks)"), "{text}");
        // the crash scenario actually forces replays through the router
        assert!(!text.contains("0 replays"), "{text}");
    }

    #[test]
    fn request_file_parses_options_and_defaults() {
        let tok = edge_llm_data::CharTokenizer::new();
        let text = "\
# queue for the morning
id=r1 tokens=12 mode=topk k=3 temp=0.9 seed=7 voting=avg deadline=40 tenant=alice :: monday:

 :: bare prompt with defaults
";
        let reqs = parse_request_file(text, &tok, 4).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].id, "r1");
        assert_eq!(reqs[0].tenant.as_deref(), Some("alice"));
        assert_eq!(reqs[1].tenant, None);
        assert_eq!(reqs[0].max_new_tokens, 12);
        assert_eq!(
            reqs[0].decoding,
            Decoding::TopK {
                k: 3,
                temperature: 0.9
            }
        );
        assert_eq!(reqs[0].seed, 7);
        assert_eq!(reqs[0].deadline_steps, Some(40));
        assert_eq!(reqs[0].voting.combiner, VotingCombiner::Average);
        assert_eq!(reqs[0].prompt, tok.encode("monday:"));
        // second line: everything defaulted
        assert_eq!(reqs[1].id, "req2");
        assert_eq!(reqs[1].max_new_tokens, 20);
        assert_eq!(reqs[1].decoding, Decoding::Greedy);
        assert_eq!(reqs[1].deadline_steps, None);

        for bad in [
            "no separator here",
            "id=r1 stray :: p",
            "mode=banana :: p",
            "voting=banana :: p",
            "tokens=many :: p",
            "tenant= :: p",
            " :: ",
        ] {
            assert!(
                matches!(parse_request_file(bad, &tok, 4), Err(CliError::Usage(_))),
                "line accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn request_file_parses_spec_mode() {
        let tok = edge_llm_data::CharTokenizer::new();
        let text = "\
id=s1 mode=spec :: drafted
id=s2 mode=spec depth=2 k=6 voting=last :: tuned
";
        let reqs = parse_request_file(text, &tok, 4).unwrap();
        // spec defaults: depth 1, the shared k default, final-exit voting
        assert_eq!(
            reqs[0].decoding,
            Decoding::SelfSpeculative {
                draft_depth: 1,
                k: 3
            }
        );
        assert_eq!(reqs[0].voting, VotingPolicy::final_only(4));
        assert_eq!(
            reqs[1].decoding,
            Decoding::SelfSpeculative {
                draft_depth: 2,
                k: 6
            }
        );
        // explicit voting wins over the spec default (and is rejected
        // later by request validation, not the parser)
        assert_eq!(reqs[1].voting.combiner, VotingCombiner::LastExit);

        let err = parse_request_file("mode=banana :: p", &tok, 4).unwrap_err();
        assert!(err.to_string().contains("spec"), "{err}");
        assert!(matches!(
            parse_request_file("mode=spec depth=deep :: p", &tok, 4),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn end_to_end_loadgen_serves_tenants_over_one_base() {
        let cmd = parse_args(&argv("loadgen --scenario steady --workers 2 --tenants 3")).unwrap();
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3 tenant adapters"), "{text}");
        assert!(text.contains("24 served"), "every session serves: {text}");
    }

    #[test]
    fn end_to_end_serve_reports_outcomes_and_throughput() {
        let dir = std::env::temp_dir().join("edgellm-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("notes.txt");
        let ckpt_path = dir.join("model.ckpt");
        std::fs::write(
            &corpus_path,
            "water the plants. water the plants. check the sensors. ",
        )
        .unwrap();
        run(&adapt_cmd(&corpus_path, &ckpt_path, 8), &mut Vec::new()).unwrap();

        let requests_path = dir.join("queue.txt");
        std::fs::write(
            &requests_path,
            "\
id=morning tokens=6 voting=final :: water
id=evening tokens=4 mode=topk k=2 temp=0.9 seed=5 :: check
id=late tokens=8 deadline=2 :: sensors
id=drafty tokens=6 mode=spec depth=1 k=4 :: water
id=tenanted tokens=6 voting=final tenant=alice :: water
",
        )
        .unwrap();
        let trace_path = dir.join("trace.jsonl");
        let cmd = Command::Serve {
            ckpt: ckpt_path.to_string_lossy().into_owned(),
            requests: requests_path.to_string_lossy().into_owned(),
            batch: 2,
            threads: None,
            trace_out: Some(trace_path.to_string_lossy().into_owned()),
        };
        let mut buf = Vec::new();
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("morning [completed, 6 tokens"), "{text}");
        assert!(text.contains("evening [completed, 4 tokens"), "{text}");
        // deadline of 2 fed tokens stops "late" during its 7-token prompt
        assert!(text.contains("late [deadline exceeded, 0 tokens"), "{text}");
        assert!(text.contains("drafty [completed, 6 tokens"), "{text}");
        assert!(text.contains("tenanted [completed, 6 tokens"), "{text}");
        assert!(text.contains("served 5 requests"), "{text}");
        // one tenant, admitted once: a single adapter miss, resident after
        assert!(text.contains("adapters: 0 hits, 1 misses"), "{text}");
        assert!(text.contains("resident: alice="), "{text}");
        assert!(text.contains("tokens/s"), "{text}");
        assert!(text.contains("batched passes"), "{text}");
        assert!(text.contains("latency: queue wait"), "{text}");
        assert!(text.contains("speculative:"), "{text}");
        assert!(text.contains("tokens/verify pass"), "{text}");
        assert!(text.contains("trace written to"), "{text}");
        // the spec request and the greedy request share prompt, length,
        // and (by bit-identity) output text
        let line = |id: &str| {
            text.lines()
                .find(|l| l.starts_with(id))
                .unwrap_or_else(|| panic!("no line for {id}: {text}"))
                .split("]: ")
                .nth(1)
                .unwrap()
                .to_string()
        };
        assert_eq!(line("morning"), line("drafty"), "{text}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.lines().count() > 0, "trace file is empty");
        assert!(trace.contains("\"serve.step\""), "{trace}");
        assert!(trace.contains("serve.evict.completed"), "{trace}");
    }

    #[test]
    fn serve_rejects_missing_inputs() {
        let cmd = Command::Serve {
            ckpt: "/nonexistent/nope.ckpt".into(),
            requests: "/nonexistent/queue.txt".into(),
            batch: 4,
            threads: None,
            trace_out: None,
        };
        assert!(matches!(run(&cmd, &mut Vec::new()), Err(CliError::Run(_))));
    }

    #[test]
    fn generate_rejects_missing_checkpoint() {
        let cmd = Command::Generate {
            ckpt: "/nonexistent/nope.ckpt".into(),
            prompt: "x".into(),
            tokens: 1,
            top_k: 0,
            temperature: 1.0,
            seed: 1,
            draft_depth: None,
            draft_k: 4,
        };
        let mut buf = Vec::new();
        assert!(matches!(run(&cmd, &mut buf), Err(CliError::Run(_))));
    }
}
