//! Command-line interface for the Edge-LLM reproduction.
//!
//! Four subcommands cover the on-device lifecycle:
//!
//! ```text
//! edgellm adapt    --corpus notes.txt --budget 0.25 --out model.ckpt
//! edgellm generate --ckpt model.ckpt --prompt "monday:" --tokens 40
//! edgellm inspect  --ckpt model.ckpt
//! edgellm policy   --corpus notes.txt --budget 0.25
//! ```
//!
//! Argument parsing and command execution live in this library so they are
//! unit-testable; `src/main.rs` is a thin wrapper.

use edge_llm::compress::apply_policy;
use edge_llm::oracle::ModelOracle;
use edge_llm_data::{Dataset, TaskGenerator, TextLmTask};
use edge_llm_luc::{profile, search_policy, CompressionPolicy, SearchAlgorithm};
use edge_llm_model::{
    generate, load_model, save_model, AdaptiveTuner, Decoding, EdgeModel, ModelConfig, Sgd,
    VotingCombiner, VotingPolicy, WindowSchedule,
};
use edge_llm_quant::BitWidth;
use edge_llm_tensor::TensorRng;
use std::fmt;
use std::fs;
use std::io::Write as _;

/// The candidate bit-widths and ratios the `policy`/`adapt` commands sweep.
const BIT_CHOICES: [BitWidth; 4] = [BitWidth::W2, BitWidth::W4, BitWidth::W8, BitWidth::W16];
const RATIO_CHOICES: [f32; 4] = [0.0, 0.25, 0.5, 0.75];

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Adapt a model to a text corpus and write a checkpoint.
    Adapt {
        /// Path to the UTF-8 corpus file.
        corpus: String,
        /// Output checkpoint path.
        out: String,
        /// LUC mean-cost budget (1.0 = no compression).
        budget: f32,
        /// Backprop window depth.
        window: usize,
        /// Adaptation iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Generate a continuation from an adapted checkpoint.
    Generate {
        /// Checkpoint path (written by `adapt`).
        ckpt: String,
        /// Prompt text (printable ASCII).
        prompt: String,
        /// Number of tokens to generate.
        tokens: usize,
        /// Top-k pool size (0 = greedy).
        top_k: usize,
        /// Sampling temperature.
        temperature: f32,
        /// RNG seed.
        seed: u64,
    },
    /// Print a checkpoint's configuration and size.
    Inspect {
        /// Checkpoint path.
        ckpt: String,
    },
    /// Search and print a LUC policy for a corpus without adapting.
    Policy {
        /// Path to the UTF-8 corpus file.
        corpus: String,
        /// LUC mean-cost budget.
        budget: f32,
        /// RNG seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// CLI error: bad arguments or a failed command.
#[derive(Debug)]
pub enum CliError {
    /// The arguments did not parse.
    Usage(String),
    /// A command failed while running.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `edgellm help`.
pub const USAGE: &str = "\
edgellm — on-device LLM adaptation (Edge-LLM reproduction)

USAGE:
  edgellm adapt    --corpus <file> --out <ckpt> [--budget 0.25] [--window 2]
                   [--iterations 400] [--seed 42]
  edgellm generate --ckpt <ckpt> --prompt <text> [--tokens 40] [--top-k 3]
                   [--temperature 0.8] [--seed 42]
  edgellm inspect  --ckpt <ckpt>
  edgellm policy   --corpus <file> [--budget 0.25] [--seed 42]
  edgellm help
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| CliError::Usage(format!("invalid value {v:?} for {flag}")))
        }
    }
}

fn required_flag(args: &[String], flag: &str) -> Result<String, CliError> {
    flag_value(args, flag)
        .map(str::to_string)
        .ok_or_else(|| CliError::Usage(format!("missing required flag {flag}")))
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown subcommands, missing required
/// flags, or unparseable values.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "adapt" => Ok(Command::Adapt {
            corpus: required_flag(rest, "--corpus")?,
            out: required_flag(rest, "--out")?,
            budget: parse_flag(rest, "--budget", 0.25)?,
            window: parse_flag(rest, "--window", 2)?,
            iterations: parse_flag(rest, "--iterations", 400)?,
            seed: parse_flag(rest, "--seed", 42)?,
        }),
        "generate" => Ok(Command::Generate {
            ckpt: required_flag(rest, "--ckpt")?,
            prompt: required_flag(rest, "--prompt")?,
            tokens: parse_flag(rest, "--tokens", 40)?,
            top_k: parse_flag(rest, "--top-k", 3)?,
            temperature: parse_flag(rest, "--temperature", 0.8)?,
            seed: parse_flag(rest, "--seed", 42)?,
        }),
        "inspect" => Ok(Command::Inspect { ckpt: required_flag(rest, "--ckpt")? }),
        "policy" => Ok(Command::Policy {
            corpus: required_flag(rest, "--corpus")?,
            budget: parse_flag(rest, "--budget", 0.25)?,
            seed: parse_flag(rest, "--seed", 42)?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

fn run_err<E: fmt::Display>(e: E) -> CliError {
    CliError::Run(e.to_string())
}

fn text_task(corpus_path: &str) -> Result<TextLmTask, CliError> {
    let corpus = fs::read_to_string(corpus_path)
        .map_err(|e| CliError::Run(format!("cannot read corpus {corpus_path}: {e}")))?;
    TextLmTask::new(&corpus).map_err(run_err)
}

fn cli_model_config(vocab: usize) -> ModelConfig {
    ModelConfig::tiny().with_layers(4).with_d_model(64, 4).with_seq_len(48).with_vocab(vocab)
}

fn search_corpus_policy(
    model: &EdgeModel,
    task: &TextLmTask,
    budget: f32,
    rng: &mut TensorRng,
) -> Result<CompressionPolicy, CliError> {
    let seq = model.config().seq_len;
    let calib: Vec<_> = (0..4).map(|_| task.sample(seq, rng)).collect();
    let tokens: Vec<usize> = calib.iter().flat_map(|s| s.tokens.clone()).collect();
    let targets: Vec<usize> = calib.iter().flat_map(|s| s.targets.clone()).collect();
    let mut oracle = ModelOracle::new(model, &tokens, &targets, 4);
    let prof = profile(&mut oracle, &BIT_CHOICES, &RATIO_CHOICES).map_err(run_err)?;
    Ok(search_policy(&prof, budget, SearchAlgorithm::DynamicProgramming).map_err(run_err)?.policy)
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Run`] when file access, adaptation, or generation
/// fails.
pub fn run<W: std::io::Write>(command: &Command, out: &mut W) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}").map_err(run_err)?;
        }
        Command::Policy { corpus, budget, seed } => {
            let task = text_task(corpus)?;
            let mut rng = TensorRng::seed_from(*seed);
            let model = EdgeModel::new(cli_model_config(task.vocab_size()), &mut rng)
                .map_err(run_err)?;
            // brief warmup so sensitivity is meaningful
            let mut model = model;
            adapt_model(&mut model, &task, 100, 1, &mut rng)?;
            let policy = search_corpus_policy(&model, &task, *budget, &mut rng)?;
            writeln!(out, "policy: {policy}").map_err(run_err)?;
            writeln!(out, "compact: {}", policy.to_compact_string()).map_err(run_err)?;
            writeln!(out, "mean cost: {:.3}  mean bits: {:.1}", policy.mean_cost(), policy.mean_bits())
                .map_err(run_err)?;
        }
        Command::Adapt { corpus, out: ckpt, budget, window, iterations, seed } => {
            let task = text_task(corpus)?;
            let mut rng = TensorRng::seed_from(*seed);
            let mut model = EdgeModel::new(cli_model_config(task.vocab_size()), &mut rng)
                .map_err(run_err)?;
            // warmup -> policy -> compressed windowed adaptation
            let full_depth = model.n_layers();
            adapt_model(&mut model, &task, iterations / 4, full_depth, &mut rng)?;
            let policy = if *budget < 1.0 {
                let p = search_corpus_policy(&model, &task, *budget, &mut rng)?;
                apply_policy(&mut model, &p).map_err(run_err)?;
                p
            } else {
                CompressionPolicy::identity(model.n_layers())
            };
            let final_loss = adapt_model(&mut model, &task, *iterations, *window, &mut rng)?;
            let mut file = fs::File::create(ckpt)
                .map_err(|e| CliError::Run(format!("cannot create {ckpt}: {e}")))?;
            save_model(&mut model, &mut file).map_err(run_err)?;
            file.flush().map_err(run_err)?;
            writeln!(out, "adapted on {corpus}: final loss {final_loss:.3}").map_err(run_err)?;
            writeln!(out, "policy: {}", policy.to_compact_string()).map_err(run_err)?;
            writeln!(out, "checkpoint written to {ckpt}").map_err(run_err)?;
        }
        Command::Generate { ckpt, prompt, tokens, top_k, temperature, seed } => {
            let mut file = fs::File::open(ckpt)
                .map_err(|e| CliError::Run(format!("cannot open {ckpt}: {e}")))?;
            let model = load_model(&mut file).map_err(run_err)?;
            let tok = edge_llm_data::CharTokenizer::new();
            if model.config().vocab_size != tok.vocab_size() {
                return Err(CliError::Run(format!(
                    "checkpoint vocabulary {} is not a text-model vocabulary ({})",
                    model.config().vocab_size,
                    tok.vocab_size()
                )));
            }
            let mut rng = TensorRng::seed_from(*seed);
            let decoding = if *top_k == 0 {
                Decoding::Greedy
            } else {
                Decoding::TopK { k: *top_k, temperature: *temperature }
            };
            let voting = VotingPolicy::all_exits(
                model.n_layers(),
                VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
            );
            let ids = tok.encode(prompt);
            let generated =
                generate(&model, &voting, &ids, *tokens, decoding, &mut rng).map_err(run_err)?;
            writeln!(out, "{}", tok.decode(&generated)).map_err(run_err)?;
        }
        Command::Inspect { ckpt } => {
            let mut file = fs::File::open(ckpt)
                .map_err(|e| CliError::Run(format!("cannot open {ckpt}: {e}")))?;
            let model = load_model(&mut file).map_err(run_err)?;
            let cfg = model.config();
            writeln!(out, "layers: {}", cfg.n_layers).map_err(run_err)?;
            writeln!(out, "d_model: {} ({} heads)", cfg.d_model, cfg.n_heads).map_err(run_err)?;
            writeln!(out, "seq_len: {}", cfg.seq_len).map_err(run_err)?;
            writeln!(out, "vocab: {}", cfg.vocab_size).map_err(run_err)?;
            writeln!(out, "parameters: {}", model.num_params()).map_err(run_err)?;
        }
    }
    Ok(())
}

fn adapt_model(
    model: &mut EdgeModel,
    task: &TextLmTask,
    iterations: usize,
    window: usize,
    rng: &mut TensorRng,
) -> Result<f32, CliError> {
    let cfg = model.config().clone();
    let ds = Dataset::from_samples((0..32).map(|_| task.sample(cfg.seq_len, rng)).collect());
    let schedule = if window >= cfg.n_layers {
        WindowSchedule::FullDepth
    } else {
        WindowSchedule::RoundRobin { depth: window.max(1) }
    };
    let mut tuner = AdaptiveTuner::new(schedule);
    let mut opt = Sgd::new(0.1);
    let mut last = f32::NAN;
    for it in 0..iterations {
        let b = ds.batch_at(it * 4, 4);
        last = tuner
            .step(model, &mut opt, &b.tokens, &b.targets, b.batch)
            .map_err(run_err)?
            .loss;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_adapt_with_defaults() {
        let cmd = parse_args(&argv("adapt --corpus notes.txt --out m.ckpt")).unwrap();
        assert_eq!(
            cmd,
            Command::Adapt {
                corpus: "notes.txt".into(),
                out: "m.ckpt".into(),
                budget: 0.25,
                window: 2,
                iterations: 400,
                seed: 42,
            }
        );
    }

    #[test]
    fn parse_generate_flags() {
        let cmd = parse_args(&argv(
            "generate --ckpt m.ckpt --prompt hello --tokens 10 --top-k 0 --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Generate { tokens, top_k, seed, .. } => {
                assert_eq!(tokens, 10);
                assert_eq!(top_k, 0);
                assert_eq!(seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(matches!(parse_args(&argv("adapt --out x")), Err(CliError::Usage(_))));
        assert!(matches!(parse_args(&argv("inspect")), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_value_errors() {
        assert!(matches!(
            parse_args(&argv("adapt --corpus a --out b --budget abc")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(matches!(parse_args(&argv("frobnicate")), Err(CliError::Usage(_))));
    }

    #[test]
    fn empty_args_are_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        let mut buf = Vec::new();
        run(&Command::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("edgellm adapt"));
    }

    #[test]
    fn end_to_end_adapt_inspect_generate() {
        let dir = std::env::temp_dir().join("edgellm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("notes.txt");
        let ckpt_path = dir.join("model.ckpt");
        std::fs::write(
            &corpus_path,
            "water the plants. water the plants. check the sensors. water the plants. ",
        )
        .unwrap();
        let adapt = Command::Adapt {
            corpus: corpus_path.to_string_lossy().into_owned(),
            out: ckpt_path.to_string_lossy().into_owned(),
            budget: 0.5,
            window: 2,
            iterations: 20,
            seed: 1,
        };
        let mut buf = Vec::new();
        run(&adapt, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("checkpoint written"));

        let mut buf = Vec::new();
        run(&Command::Inspect { ckpt: ckpt_path.to_string_lossy().into_owned() }, &mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("layers: 4"));
        assert!(text.contains("vocab: 96"));

        let mut buf = Vec::new();
        run(
            &Command::Generate {
                ckpt: ckpt_path.to_string_lossy().into_owned(),
                prompt: "water".into(),
                tokens: 8,
                top_k: 0,
                temperature: 1.0,
                seed: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("water"));
        assert!(text.trim_end().len() >= "water".len() + 8);
    }

    #[test]
    fn generate_rejects_missing_checkpoint() {
        let cmd = Command::Generate {
            ckpt: "/nonexistent/nope.ckpt".into(),
            prompt: "x".into(),
            tokens: 1,
            top_k: 0,
            temperature: 1.0,
            seed: 1,
        };
        let mut buf = Vec::new();
        assert!(matches!(run(&cmd, &mut buf), Err(CliError::Run(_))));
    }
}
