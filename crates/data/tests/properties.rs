//! Property-based tests of the task generators and batching pipeline.

use edge_llm_data::{
    ClozeQaTask, CopyTask, MarkovTextTask, ModArithTask, ReverseTask, TaskGenerator,
};
use edge_llm_tensor::{TensorRng, IGNORE_TARGET};
use proptest::prelude::*;

fn check_sample_invariants(task: &dyn TaskGenerator, seq_len: usize, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = TensorRng::seed_from(seed);
    let s = task.sample(seq_len, &mut rng);
    prop_assert_eq!(s.tokens.len(), seq_len);
    prop_assert_eq!(s.targets.len(), seq_len);
    prop_assert!(s.tokens.iter().all(|&t| t < task.vocab_size()), "token out of vocab");
    prop_assert!(
        s.targets.iter().all(|&t| t == IGNORE_TARGET || t < task.vocab_size()),
        "target out of vocab"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_generators_respect_shape_and_vocab(seq in 4usize..64, seed in any::<u64>()) {
        check_sample_invariants(&ClozeQaTask::new(8, 3), seq, seed)?;
        check_sample_invariants(&CopyTask::new(6), seq, seed)?;
        check_sample_invariants(&ReverseTask::new(6), seq, seed)?;
        check_sample_invariants(&ModArithTask::new(7), seq, seed)?;
        check_sample_invariants(&MarkovTextTask::new(16, 3, 1), seq, seed)?;
    }

    #[test]
    fn generators_are_deterministic(seq in 4usize..32, seed in any::<u64>()) {
        let task = ClozeQaTask::new(8, 3);
        let mut r1 = TensorRng::seed_from(seed);
        let mut r2 = TensorRng::seed_from(seed);
        prop_assert_eq!(task.sample(seq, &mut r1), task.sample(seq, &mut r2));
    }

    #[test]
    fn markov_supervises_every_position(seq in 2usize..32, seed in any::<u64>()) {
        let mut rng = TensorRng::seed_from(seed);
        let s = MarkovTextTask::new(16, 3, 2).sample(seq, &mut rng);
        prop_assert!(s.targets.iter().all(|&t| t != IGNORE_TARGET));
    }

    #[test]
    fn transduction_masks_prompts(seq in 6usize..40, seed in any::<u64>()) {
        let mut rng = TensorRng::seed_from(seed);
        let s = CopyTask::new(6).sample(seq, &mut rng);
        let supervised = s.targets.iter().filter(|&&t| t != IGNORE_TARGET).count();
        let payload = (seq - 1) / 2;
        prop_assert_eq!(supervised, payload.min(seq.saturating_sub(payload + 1)));
    }

    #[test]
    fn batches_concatenate_samples(n in 1usize..10, batch in 1usize..6, seed in any::<u64>()) {
        let mut rng = TensorRng::seed_from(seed);
        let task = ClozeQaTask::new(6, 2);
        let ds = task.dataset(n, 12, &mut rng);
        let b = ds.batch_at(0, batch);
        prop_assert_eq!(b.tokens.len(), batch * 12);
        for i in 0..batch {
            let expect = &ds.samples()[i % n];
            prop_assert_eq!(&b.tokens[i * 12..(i + 1) * 12], &expect.tokens[..]);
            prop_assert_eq!(&b.targets[i * 12..(i + 1) * 12], &expect.targets[..]);
        }
    }

    #[test]
    fn split_partitions_dataset(n in 2usize..30, frac in 0.0f32..1.0, seed in any::<u64>()) {
        let mut rng = TensorRng::seed_from(seed);
        let ds = ClozeQaTask::new(6, 2).dataset(n, 8, &mut rng);
        let (train, eval) = ds.split(frac);
        prop_assert_eq!(train.len() + eval.len(), n);
    }

    #[test]
    fn cloze_answers_are_kb_consistent(seq in 8usize..48, seed in any::<u64>()) {
        let task = ClozeQaTask::new(10, 3);
        let mut rng = TensorRng::seed_from(seed);
        let s = task.sample(seq, &mut rng);
        // every 4-token fact must agree with the KB
        let rel_base = 10;
        let obj_base = 13;
        let n_facts = seq / 4;
        for f in 0..n_facts {
            let base = f * 4;
            let subj = s.tokens[base];
            let rel = s.tokens[base + 1] - rel_base;
            let obj = s.tokens[base + 3] - obj_base;
            prop_assert_eq!(obj, task.answer(subj, rel));
        }
    }
}
