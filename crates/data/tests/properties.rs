//! Property-based tests of the task generators and batching pipeline,
//! driven by the in-repo seeded case harness (`edge_llm_tensor::check`).

use edge_llm_data::{
    ClozeQaTask, CopyTask, MarkovTextTask, ModArithTask, ReverseTask, TaskGenerator,
};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::{TensorRng, IGNORE_TARGET};

fn check_sample_invariants(task: &dyn TaskGenerator, seq_len: usize, seed: u64) {
    let mut rng = TensorRng::seed_from(seed);
    let s = task.sample(seq_len, &mut rng);
    assert_eq!(s.tokens.len(), seq_len);
    assert_eq!(s.targets.len(), seq_len);
    assert!(
        s.tokens.iter().all(|&t| t < task.vocab_size()),
        "token out of vocab"
    );
    assert!(
        s.targets
            .iter()
            .all(|&t| t == IGNORE_TARGET || t < task.vocab_size()),
        "target out of vocab"
    );
}

#[test]
fn all_generators_respect_shape_and_vocab() {
    run_cases("generator invariants", 48, |g| {
        let seq = g.usize_in(4, 64);
        let seed = g.u64();
        check_sample_invariants(&ClozeQaTask::new(8, 3), seq, seed);
        check_sample_invariants(&CopyTask::new(6), seq, seed);
        check_sample_invariants(&ReverseTask::new(6), seq, seed);
        check_sample_invariants(&ModArithTask::new(7), seq, seed);
        check_sample_invariants(&MarkovTextTask::new(16, 3, 1), seq, seed);
    });
}

#[test]
fn generators_are_deterministic() {
    run_cases("generator determinism", 48, |g| {
        let seq = g.usize_in(4, 32);
        let seed = g.u64();
        let task = ClozeQaTask::new(8, 3);
        let mut r1 = TensorRng::seed_from(seed);
        let mut r2 = TensorRng::seed_from(seed);
        assert_eq!(task.sample(seq, &mut r1), task.sample(seq, &mut r2));
    });
}

#[test]
fn markov_supervises_every_position() {
    run_cases("markov full supervision", 48, |g| {
        let seq = g.usize_in(2, 32);
        let mut rng = TensorRng::seed_from(g.u64());
        let s = MarkovTextTask::new(16, 3, 2).sample(seq, &mut rng);
        assert!(s.targets.iter().all(|&t| t != IGNORE_TARGET));
    });
}

#[test]
fn transduction_masks_prompts() {
    run_cases("copy masks prompts", 48, |g| {
        let seq = g.usize_in(6, 40);
        let mut rng = TensorRng::seed_from(g.u64());
        let s = CopyTask::new(6).sample(seq, &mut rng);
        let supervised = s.targets.iter().filter(|&&t| t != IGNORE_TARGET).count();
        let payload = (seq - 1) / 2;
        assert_eq!(supervised, payload.min(seq.saturating_sub(payload + 1)));
    });
}

#[test]
fn batches_concatenate_samples() {
    run_cases("batch concatenation", 48, |g| {
        let n = g.usize_in(1, 10);
        let batch = g.usize_in(1, 6);
        let mut rng = TensorRng::seed_from(g.u64());
        let task = ClozeQaTask::new(6, 2);
        let ds = task.dataset(n, 12, &mut rng);
        let b = ds.batch_at(0, batch);
        assert_eq!(b.tokens.len(), batch * 12);
        for i in 0..batch {
            let expect = &ds.samples()[i % n];
            assert_eq!(&b.tokens[i * 12..(i + 1) * 12], &expect.tokens[..]);
            assert_eq!(&b.targets[i * 12..(i + 1) * 12], &expect.targets[..]);
        }
    });
}

#[test]
fn split_partitions_dataset() {
    run_cases("split partitions", 48, |g| {
        let n = g.usize_in(2, 30);
        let frac = g.f32_in(0.0, 1.0);
        let mut rng = TensorRng::seed_from(g.u64());
        let ds = ClozeQaTask::new(6, 2).dataset(n, 8, &mut rng);
        let (train, eval) = ds.split(frac);
        assert_eq!(train.len() + eval.len(), n);
    });
}

#[test]
fn cloze_answers_are_kb_consistent() {
    run_cases("cloze KB consistency", 48, |g| {
        let seq = g.usize_in(8, 48);
        let task = ClozeQaTask::new(10, 3);
        let mut rng = TensorRng::seed_from(g.u64());
        let s = task.sample(seq, &mut rng);
        // every 4-token fact must agree with the KB
        let rel_base = 10;
        let obj_base = 13;
        let n_facts = seq / 4;
        for f in 0..n_facts {
            let base = f * 4;
            let subj = s.tokens[base];
            let rel = s.tokens[base + 1] - rel_base;
            let obj = s.tokens[base + 3] - obj_base;
            assert_eq!(obj, task.answer(subj, rel));
        }
    });
}

#[test]
fn tokenizer_round_trips_printable_ascii() {
    use edge_llm_data::CharTokenizer;
    let tok = CharTokenizer::new();
    run_cases("tokenizer round-trip", 64, |g| {
        let len = g.usize_in(0, 256);
        let text: String = (0..len)
            .map(|_| (0x20 + g.usize_in(0, 94) as u8) as char)
            .collect();
        let ids = tok.encode(&text);
        assert_eq!(ids.len(), text.len());
        assert!(ids.iter().all(|&id| id < tok.vocab_size()));
        assert_eq!(tok.decode(&ids), text, "printable ASCII must round-trip");
    });
}

#[test]
fn tokenizer_maps_non_printable_to_unknown() {
    use edge_llm_data::CharTokenizer;
    let tok = CharTokenizer::new();
    run_cases("tokenizer unknowns", 32, |g| {
        // control chars, DEL, and multi-byte UTF-8 all land on unk -> '?'
        let bad = *g.choose(&['\t', '\n', '\x7F', 'é', '日', '\u{1F600}']);
        let text = format!("ok{bad}ok");
        let ids = tok.encode(&text);
        assert!(ids.contains(&tok.unk_id()));
        let back = tok.decode(&ids);
        assert!(back.starts_with("ok") && back.ends_with("ok"));
        assert!(back.contains('?'), "unknowns decode to '?': {back:?}");
        // decode is total: out-of-range ids also map to '?', no panic
        assert_eq!(tok.decode(&[tok.vocab_size() + 7]), "?");
    });
}

#[test]
fn tokenizer_handles_degenerate_inputs() {
    use edge_llm_data::CharTokenizer;
    let tok = CharTokenizer::new();
    assert_eq!(tok.encode(""), Vec::<usize>::new());
    assert_eq!(tok.decode(&[]), "");
    let spaces = "   ";
    assert_eq!(tok.decode(&tok.encode(spaces)), spaces);
    let max_len = "~".repeat(1 << 16);
    assert_eq!(tok.decode(&tok.encode(&max_len)), max_len);
}

#[test]
fn cloze_answers_are_consistent_with_samples() {
    run_cases("cloze consistency", 48, |g| {
        let subjects = g.usize_in(2, 10);
        let relations = g.usize_in(1, 4);
        let task = ClozeQaTask::with_seed(subjects, relations, g.u64());
        assert_eq!(task.n_facts(), subjects * relations);
        // the fact table itself stays inside the vocabulary
        for s in 0..subjects {
            for r in 0..relations {
                assert!(task.answer(s, r) < task.vocab_size());
            }
        }
        // sampling never panics even at the minimum viable length
        let seq = g.usize_in(1, 48);
        let sample = task.sample(seq, g.rng());
        assert_eq!(sample.tokens.len(), seq);
        assert_eq!(sample.targets.len(), seq);
    });
}
