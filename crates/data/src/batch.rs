use crate::Sample;
use edge_llm_tensor::TensorRng;

/// A flattened batch ready for the model: `batch * seq_len` tokens and
/// targets in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Flattened token ids.
    pub tokens: Vec<usize>,
    /// Flattened targets (with ignore markers).
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
}

/// An in-memory dataset of fixed-length samples.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Wraps a vector of samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Immutable access to the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Splits into `(train, eval)` at `train_fraction` (clamped to `[0,1]`).
    pub fn split(self, train_fraction: f32) -> (Dataset, Dataset) {
        let n = self.samples.len();
        let cut = ((train_fraction.clamp(0.0, 1.0) as f64) * n as f64).round() as usize;
        let mut samples = self.samples;
        let eval = samples.split_off(cut.min(n));
        (Dataset { samples }, Dataset { samples: eval })
    }

    /// Builds a batch from `batch` samples starting at `start` (wrapping
    /// around the dataset).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `batch == 0`.
    pub fn batch_at(&self, start: usize, batch: usize) -> Batch {
        assert!(!self.samples.is_empty(), "cannot batch an empty dataset");
        assert!(batch > 0, "batch size must be positive");
        let seq_len = self.samples[0].tokens.len();
        let mut tokens = Vec::with_capacity(batch * seq_len);
        let mut targets = Vec::with_capacity(batch * seq_len);
        for i in 0..batch {
            let s = &self.samples[(start + i) % self.samples.len()];
            tokens.extend_from_slice(&s.tokens);
            targets.extend_from_slice(&s.targets);
        }
        Batch {
            tokens,
            targets,
            batch,
            seq_len,
        }
    }

    /// Shuffles sample order in place.
    pub fn shuffle(&mut self, rng: &mut TensorRng) {
        rng.shuffle(&mut self.samples);
    }

    /// Iterates over consecutive batches covering one epoch (the tail
    /// wraps around so every batch is full).
    pub fn epoch_batches(&self, batch: usize) -> impl Iterator<Item = Batch> + '_ {
        let n_batches = self.len().div_ceil(batch.max(1)).max(1);
        (0..n_batches).map(move |i| self.batch_at(i * batch, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClozeQaTask, TaskGenerator};

    fn make_dataset(n: usize) -> Dataset {
        let mut rng = TensorRng::seed_from(1);
        ClozeQaTask::new(8, 4).dataset(n, 16, &mut rng)
    }

    #[test]
    fn batch_flattening() {
        let ds = make_dataset(4);
        let b = ds.batch_at(0, 2);
        assert_eq!(b.tokens.len(), 2 * 16);
        assert_eq!(&b.tokens[..16], &ds.samples()[0].tokens[..]);
        assert_eq!(&b.tokens[16..], &ds.samples()[1].tokens[..]);
    }

    #[test]
    fn batch_wraps_around() {
        let ds = make_dataset(3);
        let b = ds.batch_at(2, 2);
        assert_eq!(&b.tokens[..16], &ds.samples()[2].tokens[..]);
        assert_eq!(&b.tokens[16..], &ds.samples()[0].tokens[..]);
    }

    #[test]
    fn split_fractions() {
        let ds = make_dataset(10);
        let (train, eval) = ds.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(eval.len(), 2);
        let (all, none) = make_dataset(5).split(1.5);
        assert_eq!(all.len(), 5);
        assert!(none.is_empty());
    }

    #[test]
    fn epoch_covers_dataset() {
        let ds = make_dataset(7);
        let batches: Vec<Batch> = ds.epoch_batches(3).collect();
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.batch == 3));
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut ds = make_dataset(20);
        let before: Vec<Vec<usize>> = ds.samples().iter().map(|s| s.tokens.clone()).collect();
        let mut rng = TensorRng::seed_from(9);
        ds.shuffle(&mut rng);
        let mut after: Vec<Vec<usize>> = ds.samples().iter().map(|s| s.tokens.clone()).collect();
        let mut sorted_before = before.clone();
        sorted_before.sort();
        after.sort();
        assert_eq!(sorted_before, after);
        assert_ne!(
            before,
            ds.samples()
                .iter()
                .map(|s| s.tokens.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic]
    fn empty_dataset_batch_panics() {
        let ds = Dataset::default();
        let _ = ds.batch_at(0, 1);
    }
}
