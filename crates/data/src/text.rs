use crate::tokenizer::CharTokenizer;
use crate::{Sample, TaskGenerator};
use edge_llm_tensor::TensorRng;

/// Character-level language modelling over a user-supplied text corpus —
/// the "adapt the model to my own notes" edge scenario.
///
/// Samples are random windows of the tokenized corpus with every position
/// supervised on its successor.
///
/// # Example
///
/// ```
/// use edge_llm_data::{TaskGenerator, TextLmTask};
/// use edge_llm_tensor::TensorRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let task = TextLmTask::new("the cat sat on the mat. the cat sat.")?;
/// let mut rng = TensorRng::seed_from(0);
/// let s = task.sample(16, &mut rng);
/// assert_eq!(s.tokens.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TextLmTask {
    ids: Vec<usize>,
    tokenizer: CharTokenizer,
}

/// Error returned when the corpus is too short to sample from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusTooShortError {
    /// Characters provided.
    pub len: usize,
}

impl std::fmt::Display for CorpusTooShortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corpus of {} characters is too short (need at least 2)",
            self.len
        )
    }
}

impl std::error::Error for CorpusTooShortError {}

impl TextLmTask {
    /// Tokenizes `corpus` with the printable-ASCII tokenizer.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusTooShortError`] for corpora under 2 characters.
    pub fn new(corpus: &str) -> Result<Self, CorpusTooShortError> {
        let tokenizer = CharTokenizer::new();
        let ids = tokenizer.encode(corpus);
        if ids.len() < 2 {
            return Err(CorpusTooShortError { len: ids.len() });
        }
        Ok(TextLmTask { ids, tokenizer })
    }

    /// Corpus length in tokens.
    pub fn corpus_len(&self) -> usize {
        self.ids.len()
    }

    /// The tokenizer used (for decoding generated continuations).
    pub fn tokenizer(&self) -> CharTokenizer {
        self.tokenizer
    }
}

impl TaskGenerator for TextLmTask {
    fn vocab_size(&self) -> usize {
        self.tokenizer.vocab_size()
    }

    fn name(&self) -> &str {
        "text-lm"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        // window of seq_len + 1 tokens (wrapping) -> inputs + shifted targets
        let n = self.ids.len();
        let start = rng.index(n);
        let mut window = Vec::with_capacity(seq_len + 1);
        for i in 0..=seq_len {
            window.push(self.ids[(start + i) % n]);
        }
        Sample {
            tokens: window[..seq_len].to_vec(),
            targets: window[1..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_tensor::IGNORE_TARGET;

    const CORPUS: &str = "It is a truth universally acknowledged, that a single model \
                          in possession of good weights must be in want of adaptation.";

    #[test]
    fn windows_come_from_the_corpus() {
        let task = TextLmTask::new(CORPUS).unwrap();
        let mut rng = TensorRng::seed_from(1);
        let tok = task.tokenizer();
        // the doubled corpus contains every wrapped window
        let doubled: String = format!("{CORPUS}{CORPUS}");
        for _ in 0..10 {
            let s = task.sample(12, &mut rng);
            let text = tok.decode(&s.tokens);
            assert!(doubled.contains(&text), "window {text:?} not in corpus");
        }
    }

    #[test]
    fn targets_are_next_characters() {
        let task = TextLmTask::new(CORPUS).unwrap();
        let mut rng = TensorRng::seed_from(2);
        let s = task.sample(20, &mut rng);
        assert_eq!(&s.targets[..19], &s.tokens[1..]);
        assert!(s.targets.iter().all(|&t| t != IGNORE_TARGET));
    }

    #[test]
    fn short_corpus_rejected() {
        assert!(TextLmTask::new("").is_err());
        assert!(TextLmTask::new("x").is_err());
        assert!(TextLmTask::new("xy").is_ok());
    }

    #[test]
    fn window_longer_than_corpus_wraps() {
        let task = TextLmTask::new("abc").unwrap();
        let mut rng = TensorRng::seed_from(3);
        let s = task.sample(8, &mut rng);
        assert_eq!(s.tokens.len(), 8);
        let tok = task.tokenizer();
        let text = tok.decode(&s.tokens);
        assert!("abcabcabcabc".contains(&text));
    }

    #[test]
    fn corpus_len_counts_tokens() {
        assert_eq!(TextLmTask::new("hello").unwrap().corpus_len(), 5);
    }
}
