//! Algorithmic transduction tasks: copy, reverse, and modular arithmetic.
//!
//! Each sample is laid out as `prompt | separator | answer`, with targets
//! masked ([`IGNORE_TARGET`]) on prompt positions so only answer tokens are
//! supervised — the same shape as instruction-tuning data.

use crate::{Sample, TaskGenerator};
use edge_llm_tensor::{TensorRng, IGNORE_TARGET};

/// Copy task: emit the prompt symbols again after the separator.
#[derive(Debug, Clone)]
pub struct CopyTask {
    vocab: usize,
}

/// Reverse task: emit the prompt symbols in reverse order.
#[derive(Debug, Clone)]
pub struct ReverseTask {
    vocab: usize,
}

/// Modular arithmetic: the prompt encodes `a [op] b =` over a small modulus
/// and the answer is the result digitized in the same vocabulary.
#[derive(Debug, Clone)]
pub struct ModArithTask {
    modulus: usize,
}

impl CopyTask {
    /// Creates a copy task over `vocab` symbols (plus an internal
    /// separator, so the effective vocabulary is `vocab + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2`.
    pub fn new(vocab: usize) -> Self {
        assert!(vocab >= 2, "copy task needs at least 2 symbols");
        CopyTask { vocab }
    }
}

impl ReverseTask {
    /// Creates a reverse task over `vocab` symbols (plus separator).
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2`.
    pub fn new(vocab: usize) -> Self {
        assert!(vocab >= 2, "reverse task needs at least 2 symbols");
        ReverseTask { vocab }
    }
}

impl ModArithTask {
    /// Creates an arithmetic task modulo `modulus`; tokens `0..modulus` are
    /// digits, then `+`, `*`, `=`, and padding, so the vocabulary is
    /// `modulus + 4`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn new(modulus: usize) -> Self {
        assert!(modulus >= 2, "modulus must be at least 2");
        ModArithTask { modulus }
    }
}

/// Builds a transduction sample: `payload SEP answer`, padded/truncated to
/// `seq_len`, with only answer positions supervised.
fn transduce(
    payload: &[usize],
    answer: &[usize],
    sep: usize,
    pad: usize,
    seq_len: usize,
) -> Sample {
    let mut tokens = Vec::with_capacity(seq_len);
    tokens.extend_from_slice(payload);
    tokens.push(sep);
    tokens.extend_from_slice(answer);
    tokens.truncate(seq_len);
    while tokens.len() < seq_len {
        tokens.push(pad);
    }
    // target[t] = tokens[t+1] but only supervised where tokens[t+1] is part
    // of the answer region
    let answer_start = payload.len() + 1;
    let answer_end = (answer_start + answer.len()).min(seq_len);
    let mut targets = vec![IGNORE_TARGET; seq_len];
    for (t, target) in targets
        .iter_mut()
        .enumerate()
        .take(seq_len.saturating_sub(1))
    {
        let next = t + 1;
        if next >= answer_start && next < answer_end {
            *target = tokens[next];
        }
    }
    Sample { tokens, targets }
}

impl TaskGenerator for CopyTask {
    fn vocab_size(&self) -> usize {
        self.vocab + 1
    }

    fn name(&self) -> &str {
        "copy"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let payload_len = (seq_len.saturating_sub(1)) / 2;
        let payload: Vec<usize> = (0..payload_len).map(|_| rng.index(self.vocab)).collect();
        let answer = payload.clone();
        transduce(&payload, &answer, self.vocab, 0, seq_len)
    }
}

impl TaskGenerator for ReverseTask {
    fn vocab_size(&self) -> usize {
        self.vocab + 1
    }

    fn name(&self) -> &str {
        "reverse"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let payload_len = (seq_len.saturating_sub(1)) / 2;
        let payload: Vec<usize> = (0..payload_len).map(|_| rng.index(self.vocab)).collect();
        let answer: Vec<usize> = payload.iter().rev().copied().collect();
        transduce(&payload, &answer, self.vocab, 0, seq_len)
    }
}

impl TaskGenerator for ModArithTask {
    fn vocab_size(&self) -> usize {
        self.modulus + 4
    }

    fn name(&self) -> &str {
        "mod-arith"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let m = self.modulus;
        let (plus, times, eq, pad) = (m, m + 1, m + 2, m + 3);
        let a = rng.index(m);
        let b = rng.index(m);
        let mul = rng.bernoulli(0.5);
        let (op, result) = if mul {
            (times, (a * b) % m)
        } else {
            (plus, (a + b) % m)
        };
        let payload = vec![a, op, b];
        let answer = vec![result];
        transduce(&payload, &answer, eq, pad, seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_answer_matches_payload() {
        let mut rng = TensorRng::seed_from(1);
        let task = CopyTask::new(8);
        let s = task.sample(16, &mut rng);
        let payload_len = 7;
        assert_eq!(s.tokens[payload_len], 8, "separator after payload");
        assert_eq!(
            &s.tokens[payload_len + 1..2 * payload_len + 1],
            &s.tokens[..payload_len]
        );
    }

    #[test]
    fn reverse_answer_is_reversed() {
        let mut rng = TensorRng::seed_from(2);
        let task = ReverseTask::new(8);
        let s = task.sample(16, &mut rng);
        let p = 7;
        let fwd: Vec<usize> = s.tokens[..p].to_vec();
        let rev: Vec<usize> = s.tokens[p + 1..2 * p + 1].to_vec();
        let mut fr = fwd.clone();
        fr.reverse();
        assert_eq!(rev, fr);
    }

    #[test]
    fn prompt_positions_are_masked() {
        let mut rng = TensorRng::seed_from(3);
        let task = CopyTask::new(8);
        let s = task.sample(16, &mut rng);
        let p = 7;
        // every target before the answer region is ignored
        for t in 0..p - 1 {
            assert_eq!(s.targets[t], IGNORE_TARGET, "position {t}");
        }
        // supervised positions exist and point at answer tokens
        let supervised: Vec<usize> = s
            .targets
            .iter()
            .copied()
            .filter(|&t| t != IGNORE_TARGET)
            .collect();
        assert_eq!(supervised.len(), p);
        assert_eq!(supervised, s.tokens[p + 1..2 * p + 1].to_vec());
    }

    #[test]
    fn mod_arith_results_are_correct() {
        let mut rng = TensorRng::seed_from(4);
        let task = ModArithTask::new(7);
        for _ in 0..50 {
            let s = task.sample(8, &mut rng);
            let (a, op, b, result) = (s.tokens[0], s.tokens[1], s.tokens[2], s.tokens[4]);
            let expect = if op == 7 { (a + b) % 7 } else { (a * b) % 7 };
            assert_eq!(result, expect, "a={a} op={op} b={b}");
            // exactly one supervised position: the answer
            let n_sup = s.targets.iter().filter(|&&t| t != IGNORE_TARGET).count();
            assert_eq!(n_sup, 1);
            assert_eq!(s.targets[3], result);
        }
    }

    #[test]
    fn all_tokens_in_vocab() {
        let mut rng = TensorRng::seed_from(5);
        for seq in [4usize, 9, 16, 33] {
            let t1 = CopyTask::new(5);
            let t2 = ModArithTask::new(5);
            let s1 = t1.sample(seq, &mut rng);
            let s2 = t2.sample(seq, &mut rng);
            assert!(s1.tokens.iter().all(|&t| t < t1.vocab_size()));
            assert!(s2.tokens.iter().all(|&t| t < t2.vocab_size()));
            assert_eq!(s1.tokens.len(), seq);
            assert_eq!(s2.tokens.len(), seq);
        }
    }

    #[test]
    #[should_panic]
    fn tiny_vocab_panics() {
        let _ = CopyTask::new(1);
    }
}
