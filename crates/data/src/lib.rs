//! Synthetic adaptation tasks and data pipeline for the Edge-LLM
//! reproduction.
//!
//! The paper tunes LLaMA-class models on commonsense-QA / MMLU-style data.
//! Those corpora are not redistributable here, so this crate generates
//! synthetic tasks with the same *shape*: a prompt region whose tokens are
//! loss-masked and an answer region the model must learn — plus plain
//! language-modelling streams for perplexity tracking. Every generator is
//! seeded and deterministic, which is what makes the benchmark tables
//! reproducible.
//!
//! * [`CharTokenizer`] — a printable-ASCII tokenizer (vocab 96),
//! * [`MarkovTextTask`] — language modelling over a random Markov chain,
//! * [`CopyTask`] / [`ReverseTask`] — algorithmic sequence transduction,
//! * [`ModArithTask`] — modular-arithmetic cloze questions,
//! * [`ClozeQaTask`] — templated subject–relation–object QA (the stand-in
//!   for commonsense QA),
//! * [`Dataset`] / [`Batch`] — batching with loss masks,
//! * [`accuracy`] / [`perplexity`] — task metrics.
//!
//! # Example
//!
//! ```
//! use edge_llm_data::{ClozeQaTask, TaskGenerator};
//! use edge_llm_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from(0);
//! let task = ClozeQaTask::new(16, 8);
//! let sample = task.sample(32, &mut rng);
//! assert_eq!(sample.tokens.len(), 32);
//! assert_eq!(sample.targets.len(), 32);
//! ```

mod batch;
mod cloze;
mod markov;
mod metrics;
mod mixture;
mod tasks;
mod text;
mod tokenizer;

pub use batch::{Batch, Dataset};
pub use cloze::ClozeQaTask;
pub use markov::MarkovTextTask;
pub use metrics::{accuracy, perplexity};
pub use mixture::{EmptyMixtureError, MixtureTask};
pub use tasks::{CopyTask, ModArithTask, ReverseTask};
pub use text::{CorpusTooShortError, TextLmTask};
pub use tokenizer::CharTokenizer;

use edge_llm_tensor::TensorRng;

/// One training/eval sample: a token sequence and its next-token targets,
/// with prompt positions masked by [`edge_llm_tensor::IGNORE_TARGET`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Input token ids, length `seq_len`.
    pub tokens: Vec<usize>,
    /// Per-position next-token targets (`IGNORE_TARGET` on masked
    /// positions), length `seq_len`.
    pub targets: Vec<usize>,
}

/// A deterministic, seedable task that emits fixed-length samples.
///
/// All Edge-LLM experiments consume tasks through this trait, so adding a
/// new workload means implementing one method.
pub trait TaskGenerator {
    /// Vocabulary size the task's tokens are drawn from.
    fn vocab_size(&self) -> usize;

    /// A short stable name used in experiment tables.
    fn name(&self) -> &str;

    /// Generates one sample of exactly `seq_len` tokens.
    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample;

    /// Generates a [`Dataset`] of `n` samples.
    fn dataset(&self, n: usize, seq_len: usize, rng: &mut TensorRng) -> Dataset
    where
        Self: Sized,
    {
        Dataset::from_samples((0..n).map(|_| self.sample(seq_len, rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_default_method_sizes() {
        let mut rng = TensorRng::seed_from(1);
        let task = ClozeQaTask::new(8, 4);
        let ds = task.dataset(5, 16, &mut rng);
        assert_eq!(ds.len(), 5);
    }
}
