use crate::{Sample, TaskGenerator};
use edge_llm_tensor::TensorRng;

/// Language modelling over a randomly generated first-order Markov chain.
///
/// A seed builds a sparse transition table over the vocabulary (each state
/// has `branching` successors with random probabilities); samples are walks
/// through the chain, and every position is a supervised next-token target.
/// Because the chain has bounded entropy, a capable model's perplexity
/// converges well below the uniform baseline — giving the experiments a
/// smooth "language-like" difficulty knob.
#[derive(Debug, Clone)]
pub struct MarkovTextTask {
    vocab: usize,
    successors: Vec<Vec<(usize, f32)>>,
    name: String,
}

impl MarkovTextTask {
    /// Builds a chain over `vocab` states with `branching` successors per
    /// state, using `seed` for the chain structure (samples use the RNG
    /// passed to [`TaskGenerator::sample`]).
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `branching == 0`.
    pub fn new(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(
            vocab > 0 && branching > 0,
            "vocab and branching must be positive"
        );
        let mut rng = TensorRng::seed_from(seed);
        let branching = branching.min(vocab);
        let successors = (0..vocab)
            .map(|_| {
                let mut succ = Vec::with_capacity(branching);
                let mut total = 0.0f32;
                for _ in 0..branching {
                    let next = rng.index(vocab);
                    let w = rng.uniform(0.1, 1.0);
                    total += w;
                    succ.push((next, w));
                }
                for s in &mut succ {
                    s.1 /= total;
                }
                succ
            })
            .collect();
        MarkovTextTask {
            vocab,
            successors,
            name: format!("markov-b{branching}"),
        }
    }

    fn step(&self, state: usize, rng: &mut TensorRng) -> usize {
        let mut u = rng.uniform(0.0, 1.0);
        for &(next, p) in &self.successors[state] {
            if u < p {
                return next;
            }
            u -= p;
        }
        self.successors[state].last().map(|&(n, _)| n).unwrap_or(0)
    }

    /// The entropy rate upper bound implied by the branching factor, in
    /// nats (useful as a perplexity target in experiments).
    pub fn entropy_bound(&self) -> f32 {
        (self.successors[0].len() as f32).ln()
    }
}

impl TaskGenerator for MarkovTextTask {
    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let mut tokens = Vec::with_capacity(seq_len);
        let mut state = rng.index(self.vocab);
        for _ in 0..seq_len {
            tokens.push(state);
            state = self.step(state, rng);
        }
        // next-token targets: shift left, last target is the next walk step
        let mut targets: Vec<usize> = tokens[1..].to_vec();
        targets.push(state);
        Sample { tokens, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure_is_seed_deterministic() {
        let mut r1 = TensorRng::seed_from(5);
        let mut r2 = TensorRng::seed_from(5);
        let t1 = MarkovTextTask::new(32, 3, 9).sample(16, &mut r1);
        let t2 = MarkovTextTask::new(32, 3, 9).sample(16, &mut r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn targets_are_shifted_tokens() {
        let mut rng = TensorRng::seed_from(1);
        let s = MarkovTextTask::new(16, 2, 3).sample(10, &mut rng);
        assert_eq!(&s.targets[..9], &s.tokens[1..]);
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let mut rng = TensorRng::seed_from(2);
        let task = MarkovTextTask::new(8, 4, 7);
        for _ in 0..20 {
            let s = task.sample(32, &mut rng);
            assert!(s.tokens.iter().all(|&t| t < 8));
            assert!(s.targets.iter().all(|&t| t < 8));
        }
    }

    #[test]
    fn transitions_follow_the_table() {
        let mut rng = TensorRng::seed_from(3);
        let task = MarkovTextTask::new(16, 2, 11);
        let s = task.sample(64, &mut rng);
        for w in s.tokens.windows(2) {
            let allowed: Vec<usize> = task.successors[w[0]].iter().map(|&(n, _)| n).collect();
            assert!(allowed.contains(&w[1]), "{} -> {} not an edge", w[0], w[1]);
        }
    }

    #[test]
    fn entropy_bound_positive() {
        assert!(MarkovTextTask::new(8, 3, 1).entropy_bound() > 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_vocab_panics() {
        let _ = MarkovTextTask::new(0, 2, 1);
    }
}
