/// A printable-ASCII character tokenizer with a vocabulary of 96 ids:
/// ids 0–94 map to characters `' '`(0x20) through `'~'`(0x7E), id 95 is the
/// unknown marker.
///
/// # Example
///
/// ```
/// use edge_llm_data::CharTokenizer;
///
/// let tok = CharTokenizer::new();
/// let ids = tok.encode("Hi!");
/// assert_eq!(tok.decode(&ids), "Hi!");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CharTokenizer;

const FIRST: u8 = 0x20;
const LAST: u8 = 0x7E;

impl CharTokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        CharTokenizer
    }

    /// Vocabulary size (95 printable characters + unknown).
    pub fn vocab_size(&self) -> usize {
        (LAST - FIRST) as usize + 2
    }

    /// The id reserved for characters outside printable ASCII.
    pub fn unk_id(&self) -> usize {
        self.vocab_size() - 1
    }

    /// Encodes a string to token ids.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.bytes()
            .map(|b| {
                if (FIRST..=LAST).contains(&b) {
                    (b - FIRST) as usize
                } else {
                    self.unk_id()
                }
            })
            .collect()
    }

    /// Decodes token ids back to a string; unknown and out-of-range ids
    /// become `'?'`.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&id| {
                if id < self.unk_id() {
                    (FIRST + id as u8) as char
                } else {
                    '?'
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_printable_ascii() {
        let tok = CharTokenizer::new();
        let s = "The 7 quick brown foxes! (all of them) ~";
        assert_eq!(tok.decode(&tok.encode(s)), s);
    }

    #[test]
    fn vocab_size_is_96() {
        assert_eq!(CharTokenizer::new().vocab_size(), 96);
    }

    #[test]
    fn non_printable_maps_to_unk() {
        let tok = CharTokenizer::new();
        let ids = tok.encode("a\nb\u{00e9}");
        assert!(ids.contains(&tok.unk_id()));
        // all ids are in range
        assert!(ids.iter().all(|&id| id < tok.vocab_size()));
    }

    #[test]
    fn decode_out_of_range_is_question_mark() {
        let tok = CharTokenizer::new();
        assert_eq!(tok.decode(&[9999]), "?");
    }
}
