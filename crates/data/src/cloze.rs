use crate::{Sample, TaskGenerator};
use edge_llm_tensor::{TensorRng, IGNORE_TARGET};

/// Templated subject–relation–object cloze QA — the stand-in for the
/// paper's commonsense-QA adaptation sets.
///
/// A seeded knowledge base assigns each (subject, relation) pair a unique
/// object. A sample renders `subject relation = object` with only the
/// object position supervised, so task accuracy is exact-match retrieval —
/// the model must *memorize the KB during adaptation*, which is precisely
/// the behaviour on-device tuning is meant to deliver.
#[derive(Debug, Clone)]
pub struct ClozeQaTask {
    n_subjects: usize,
    n_relations: usize,
    kb: Vec<usize>,
    n_objects: usize,
}

impl ClozeQaTask {
    /// Builds a KB with `n_subjects * n_relations` facts; objects are drawn
    /// from a pool the same size as the subject pool. The KB derives from a
    /// fixed internal seed so tasks of equal shape are identical across
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_subjects: usize, n_relations: usize) -> Self {
        Self::with_seed(n_subjects, n_relations, 0x5eed)
    }

    /// Builds a KB with an explicit structure seed.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_seed(n_subjects: usize, n_relations: usize, seed: u64) -> Self {
        assert!(
            n_subjects > 0 && n_relations > 0,
            "kb dimensions must be positive"
        );
        let n_objects = n_subjects;
        let mut rng = TensorRng::seed_from(seed);
        let kb = (0..n_subjects * n_relations)
            .map(|_| rng.index(n_objects))
            .collect();
        ClozeQaTask {
            n_subjects,
            n_relations,
            kb,
            n_objects,
        }
    }

    /// Number of facts in the KB.
    pub fn n_facts(&self) -> usize {
        self.kb.len()
    }

    /// The ground-truth object for `(subject, relation)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn answer(&self, subject: usize, relation: usize) -> usize {
        assert!(subject < self.n_subjects && relation < self.n_relations);
        self.kb[subject * self.n_relations + relation]
    }

    fn token_ids(&self) -> (usize, usize, usize) {
        // layout: subjects, relations, objects, '=', pad
        let rel_base = self.n_subjects;
        let obj_base = rel_base + self.n_relations;
        let eq = obj_base + self.n_objects;
        (rel_base, obj_base, eq)
    }
}

impl TaskGenerator for ClozeQaTask {
    fn vocab_size(&self) -> usize {
        self.n_subjects + self.n_relations + self.n_objects + 2
    }

    fn name(&self) -> &str {
        "cloze-qa"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let (rel_base, obj_base, eq) = self.token_ids();
        let pad = eq + 1;
        let mut tokens = Vec::with_capacity(seq_len);
        let mut targets = vec![IGNORE_TARGET; seq_len];
        // pack as many facts as fit: s r = o  (4 tokens each)
        while tokens.len() + 4 <= seq_len {
            let s = rng.index(self.n_subjects);
            let r = rng.index(self.n_relations);
            let o = self.answer(s, r);
            let base = tokens.len();
            tokens.extend_from_slice(&[s, rel_base + r, eq, obj_base + o]);
            // supervise only the object, predicted from '='
            targets[base + 2] = obj_base + o;
        }
        while tokens.len() < seq_len {
            tokens.push(pad);
        }
        Sample { tokens, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_is_deterministic() {
        let a = ClozeQaTask::new(8, 4);
        let b = ClozeQaTask::new(8, 4);
        for s in 0..8 {
            for r in 0..4 {
                assert_eq!(a.answer(s, r), b.answer(s, r));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ClozeQaTask::with_seed(16, 8, 1);
        let b = ClozeQaTask::with_seed(16, 8, 2);
        let same = (0..16)
            .flat_map(|s| (0..8).map(move |r| (s, r)))
            .all(|(s, r)| a.answer(s, r) == b.answer(s, r));
        assert!(!same);
    }

    #[test]
    fn sample_layout_and_supervision() {
        let mut rng = TensorRng::seed_from(1);
        let task = ClozeQaTask::new(8, 4);
        let s = task.sample(16, &mut rng);
        assert_eq!(s.tokens.len(), 16);
        let (rel_base, obj_base, eq) = task.token_ids();
        for fact in 0..4 {
            let base = fact * 4;
            let subj = s.tokens[base];
            let rel = s.tokens[base + 1] - rel_base;
            assert_eq!(s.tokens[base + 2], eq);
            let obj = s.tokens[base + 3] - obj_base;
            assert_eq!(obj, task.answer(subj, rel));
            // supervised object at '=' position
            assert_eq!(s.targets[base + 2], obj_base + obj);
            assert_eq!(s.targets[base], IGNORE_TARGET);
            assert_eq!(s.targets[base + 1], IGNORE_TARGET);
        }
    }

    #[test]
    fn short_sequences_are_padded() {
        let mut rng = TensorRng::seed_from(2);
        let task = ClozeQaTask::new(4, 2);
        let s = task.sample(6, &mut rng);
        assert_eq!(s.tokens.len(), 6);
        // one fact (4 tokens) + 2 pads
        let pad = task.vocab_size() - 1;
        assert_eq!(s.tokens[4], pad);
        assert_eq!(s.tokens[5], pad);
    }

    #[test]
    fn vocab_covers_all_tokens() {
        let mut rng = TensorRng::seed_from(3);
        let task = ClozeQaTask::new(5, 3);
        let s = task.sample(20, &mut rng);
        assert!(s.tokens.iter().all(|&t| t < task.vocab_size()));
    }
}
