use crate::{Sample, TaskGenerator};
use edge_llm_tensor::TensorRng;

/// A weighted mixture of task generators sharing one padded vocabulary —
/// multi-domain adaptation data (e.g. QA plus language modelling), the
/// setting continual on-device adaptation actually faces.
///
/// Component tasks keep their own token ids; the mixture's vocabulary is
/// the maximum of the components', so ids never collide across the shared
/// embedding table.
///
/// # Example
///
/// ```
/// use edge_llm_data::{ClozeQaTask, CopyTask, MixtureTask, TaskGenerator};
/// use edge_llm_tensor::TensorRng;
///
/// # fn main() -> Result<(), edge_llm_data::EmptyMixtureError> {
/// let mix = MixtureTask::new(vec![
///     (1.0, Box::new(ClozeQaTask::new(8, 2)) as Box<dyn TaskGenerator>),
///     (2.0, Box::new(CopyTask::new(6))),
/// ])?;
/// let mut rng = TensorRng::seed_from(0);
/// let s = mix.sample(16, &mut rng);
/// assert!(s.tokens.iter().all(|&t| t < mix.vocab_size()));
/// # Ok(())
/// # }
/// ```
pub struct MixtureTask {
    components: Vec<(f32, Box<dyn TaskGenerator>)>,
    total_weight: f32,
    vocab: usize,
}

/// Error returned when a mixture has no usable components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyMixtureError;

impl std::fmt::Display for EmptyMixtureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mixture needs at least one component with positive weight"
        )
    }
}

impl std::error::Error for EmptyMixtureError {}

impl MixtureTask {
    /// Builds a mixture from `(weight, task)` pairs. Non-positive weights
    /// are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyMixtureError`] if no component has positive weight.
    pub fn new(components: Vec<(f32, Box<dyn TaskGenerator>)>) -> Result<Self, EmptyMixtureError> {
        let components: Vec<_> = components
            .into_iter()
            .filter(|(w, _)| *w > 0.0 && w.is_finite())
            .collect();
        if components.is_empty() {
            return Err(EmptyMixtureError);
        }
        let total_weight = components.iter().map(|(w, _)| *w).sum();
        let vocab = components
            .iter()
            .map(|(_, t)| t.vocab_size())
            .max()
            .unwrap_or(1);
        Ok(MixtureTask {
            components,
            total_weight,
            vocab,
        })
    }

    /// Number of component tasks.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }
}

impl std::fmt::Debug for MixtureTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.components.iter().map(|(_, t)| t.name()).collect();
        write!(f, "MixtureTask({names:?})")
    }
}

impl TaskGenerator for MixtureTask {
    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn name(&self) -> &str {
        "mixture"
    }

    fn sample(&self, seq_len: usize, rng: &mut TensorRng) -> Sample {
        let mut u = rng.uniform(0.0, self.total_weight);
        for (w, task) in &self.components {
            if u < *w {
                return task.sample(seq_len, rng);
            }
            u -= w;
        }
        self.components
            .last()
            .expect("non-empty by construction")
            .1
            .sample(seq_len, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClozeQaTask, CopyTask, MarkovTextTask};

    fn mixture() -> MixtureTask {
        MixtureTask::new(vec![
            (
                1.0,
                Box::new(ClozeQaTask::new(8, 2)) as Box<dyn TaskGenerator>,
            ),
            (3.0, Box::new(MarkovTextTask::new(16, 2, 1))),
        ])
        .unwrap()
    }

    #[test]
    fn vocab_is_component_max() {
        let mix = mixture();
        let cloze_vocab = ClozeQaTask::new(8, 2).vocab_size();
        assert_eq!(mix.vocab_size(), cloze_vocab.max(16));
    }

    #[test]
    fn samples_respect_weights_roughly() {
        let mix = mixture();
        let mut rng = TensorRng::seed_from(5);
        // markov samples supervise every position; cloze masks some
        let mut markov_like = 0;
        let n = 400;
        for _ in 0..n {
            let s = mix.sample(16, &mut rng);
            if s.targets
                .iter()
                .all(|&t| t != edge_llm_tensor::IGNORE_TARGET)
            {
                markov_like += 1;
            }
        }
        let frac = markov_like as f32 / n as f32;
        assert!(
            (frac - 0.75).abs() < 0.1,
            "markov fraction {frac}, expected ~0.75"
        );
    }

    #[test]
    fn empty_or_nonpositive_mixture_rejected() {
        assert!(MixtureTask::new(vec![]).is_err());
        assert!(MixtureTask::new(vec![(
            0.0,
            Box::new(CopyTask::new(4)) as Box<dyn TaskGenerator>
        )])
        .is_err());
        assert!(MixtureTask::new(vec![(
            f32::NAN,
            Box::new(CopyTask::new(4)) as Box<dyn TaskGenerator>
        )])
        .is_err());
    }

    #[test]
    fn tokens_stay_in_mixture_vocab() {
        let mix = mixture();
        let mut rng = TensorRng::seed_from(6);
        for _ in 0..50 {
            let s = mix.sample(12, &mut rng);
            assert!(s.tokens.iter().all(|&t| t < mix.vocab_size()));
        }
    }

    #[test]
    fn debug_lists_components() {
        let mix = mixture();
        let d = format!("{mix:?}");
        assert!(d.contains("cloze-qa"));
        assert_eq!(mix.n_components(), 2);
    }
}
