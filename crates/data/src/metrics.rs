use edge_llm_tensor::{Tensor, IGNORE_TARGET};

/// Exact-match accuracy of argmax predictions on supervised positions.
///
/// Positions whose target is [`IGNORE_TARGET`] are skipped. Returns `0.0`
/// when no position is supervised.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()`.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(targets.len(), logits.rows(), "one target per logit row");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_TARGET {
            continue;
        }
        total += 1;
        let row = logits.row(r);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (c, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        if best == t {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    }
}

/// Perplexity `exp(mean NLL)` over supervised positions.
///
/// Returns `f32::INFINITY` if any supervised target has ~zero probability,
/// and `1.0` when nothing is supervised.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()`.
pub fn perplexity(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(targets.len(), logits.rows(), "one target per logit row");
    let probs = edge_llm_tensor::softmax_rows(logits);
    let mut nll = 0.0f64;
    let mut total = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_TARGET {
            continue;
        }
        total += 1;
        let p = probs.get(r, t) as f64;
        if p <= 1e-30 {
            return f32::INFINITY;
        }
        nll -= p.ln();
    }
    if total == 0 {
        1.0
    } else {
        ((nll / total as f64).exp()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let logits = Tensor::from_vec(2, 3, vec![5., 0., 0., 0., 0., 5.]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 2]), 1.0);
        assert!(perplexity(&logits, &[0, 2]) < 1.1);
    }

    #[test]
    fn wrong_predictions() {
        let logits = Tensor::from_vec(2, 3, vec![5., 0., 0., 0., 0., 5.]).unwrap();
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert!(perplexity(&logits, &[1, 0]) > 10.0);
    }

    #[test]
    fn ignored_positions_skipped() {
        let logits = Tensor::from_vec(2, 3, vec![5., 0., 0., 5., 0., 0.]).unwrap();
        assert_eq!(accuracy(&logits, &[0, IGNORE_TARGET]), 1.0);
        assert_eq!(accuracy(&logits, &[IGNORE_TARGET, IGNORE_TARGET]), 0.0);
        assert_eq!(perplexity(&logits, &[IGNORE_TARGET, IGNORE_TARGET]), 1.0);
    }

    #[test]
    fn uniform_logits_give_vocab_perplexity() {
        let logits = Tensor::zeros(4, 10);
        let ppl = perplexity(&logits, &[0, 1, 2, 3]);
        assert!((ppl - 10.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let logits = Tensor::zeros(2, 3);
        let _ = accuracy(&logits, &[0]);
    }
}
