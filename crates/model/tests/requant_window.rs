//! Re-quantization accounting across the windowed-adaptation loop, and
//! packed-decode equivalence on compressed models.
//!
//! The PR-4 fix made `visit_params_window` skip frozen blocks without
//! borrowing their parameters mutably, so only the active window's weight
//! caches are invalidated. The new per-layer re-quantization counters make
//! that behaviour directly observable: a depth-1 step must re-quantize
//! exactly one block in steady state, and frozen blocks must keep their
//! packed decode weights across steps.

use edge_llm_model::{
    generate, AdaptiveTuner, Decoding, EdgeModel, LayerWindow, ModelConfig, Sgd, VotingPolicy,
    WindowSchedule,
};
use edge_llm_prune::magnitude_prune;
use edge_llm_quant::{BitWidth, QuantScheme};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::TensorRng;

fn quantized_model(seed: u64, bits: BitWidth) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    let mut model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let scheme = QuantScheme::symmetric(bits);
    for l in 0..model.n_layers() {
        let b = model.block_mut(l);
        b.attn_mut().qkv_mut().set_quant(Some(scheme));
        b.attn_mut().proj_mut().set_quant(Some(scheme));
        b.mlp_mut().fc1_mut().set_quant(Some(scheme));
        b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        let mask = magnitude_prune(b.mlp_mut().fc1_mut().weight(), 0.25).unwrap();
        b.mlp_mut().fc1_mut().set_mask(Some(mask)).unwrap();
    }
    model
}

fn tokens_for(model: &EdgeModel, seed: u64) -> Vec<usize> {
    let mut rng = TensorRng::seed_from(seed);
    (0..model.config().seq_len)
        .map(|_| rng.index(model.config().vocab_size))
        .collect()
}

/// Which blocks advanced their re-quantization counter between two
/// snapshots.
fn advanced(before: &[u64], after: &[u64]) -> Vec<usize> {
    before
        .iter()
        .zip(after)
        .enumerate()
        .filter(|(_, (b, a))| a > b)
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn depth_one_step_requantizes_exactly_one_block() {
    // A depth-1 window pinned at the top of the stack runs the full
    // forward every step and trains exactly one block, so steady state
    // must re-quantize exactly that block — no more (frozen blocks are
    // skipped by `visit_params_window`, the PR-4 fix) and no less.
    let mut model = quantized_model(1, BitWidth::W4);
    let top = LayerWindow {
        start: model.n_layers() - 1,
        end: model.n_layers(),
    };
    let tokens = tokens_for(&model, 2);
    let mut opt = Sgd::new(0.05);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::Ordered(vec![top]));

    // warm every weight cache, then run one step so the loop reaches
    // steady state (each step re-quantizes the block the previous step's
    // optimizer update invalidated)
    model.logits(&tokens, 1).unwrap();
    tuner
        .step(&mut model, &mut opt, &tokens, &tokens, 1)
        .unwrap();

    for it in 0..4 {
        let before = model.block_requant_counts();
        let report = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        let after = model.block_requant_counts();
        let hit = advanced(&before, &after);
        assert_eq!(
            hit,
            vec![top.start],
            "steady-state depth-1 step {it} must re-quantize exactly the trained block"
        );
        assert_eq!(
            report.phases.requant_layers, 1,
            "step report must expose the same count"
        );
        assert!(
            report.phases.cache_invalidations > 0,
            "the window block's caches must be evicted by the update"
        );
    }
}

#[test]
fn round_robin_depth_one_requantizes_one_block_per_step_amortized() {
    // With early-exit forwards a round-robin window re-quantizes a block
    // only when the forward next covers it, so individual steps see 0, 1,
    // or 2 re-quantizations — but a full cycle touches every block exactly
    // once per training visit: n steps, n re-quantizations.
    let mut model = quantized_model(1, BitWidth::W4);
    let n = model.n_layers();
    let tokens = tokens_for(&model, 2);
    let mut opt = Sgd::new(0.05);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    model.logits(&tokens, 1).unwrap();
    // one full warm-up cycle reaches steady state
    for _ in 0..n {
        tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
    }
    for cycle in 0..2 {
        let mut total = 0;
        for _ in 0..n {
            let report = tuner
                .step(&mut model, &mut opt, &tokens, &tokens, 1)
                .unwrap();
            total += report.phases.requant_layers;
        }
        assert_eq!(
            total, n,
            "cycle {cycle}: a depth-1 round-robin cycle re-quantizes each block exactly once"
        );
    }
}

#[test]
fn full_depth_step_requantizes_every_block() {
    let mut model = quantized_model(3, BitWidth::W8);
    let tokens = tokens_for(&model, 4);
    let mut opt = Sgd::new(0.05);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
    model.logits(&tokens, 1).unwrap();
    tuner
        .step(&mut model, &mut opt, &tokens, &tokens, 1)
        .unwrap();
    let report = tuner
        .step(&mut model, &mut opt, &tokens, &tokens, 1)
        .unwrap();
    assert_eq!(
        report.phases.requant_layers,
        model.n_layers(),
        "a full-depth step re-quantizes every block"
    );
}

#[test]
fn frozen_blocks_keep_packed_weights_across_depth_one_steps() {
    let mut model = quantized_model(5, BitWidth::W4);
    let tokens = tokens_for(&model, 6);
    model.pack_frozen_weights().unwrap();
    let packed_blocks = |m: &EdgeModel| -> Vec<bool> {
        (0..m.n_layers())
            .map(|l| {
                let b = m.block(l);
                let (qkv, proj) = b.attn().linears();
                let (fc1, fc2) = b.mlp().linears();
                [qkv, proj, fc1, fc2].iter().all(|lin| lin.is_packed())
            })
            .collect()
    };
    assert!(
        packed_blocks(&model).iter().all(|&p| p),
        "pack_frozen_weights packs every quantized projection"
    );

    let mut opt = Sgd::new(0.05);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    tuner
        .step(&mut model, &mut opt, &tokens, &tokens, 1)
        .unwrap();
    let packed = packed_blocks(&model);
    let still_packed = packed.iter().filter(|&&p| p).count();
    assert_eq!(
        still_packed,
        model.n_layers() - 1,
        "only the trained window block may lose its packed codes: {packed:?}"
    );
}

#[test]
fn packed_decode_matches_unpacked_decode_bitwise() {
    // The packed integer-code decode path must generate the same tokens
    // and probabilities as the dense fake-quant path, for every
    // bit-width, seed, and decoding mode.
    run_cases("packed decode equivalence", 8, |g| {
        let bits = *g.choose(&[BitWidth::W2, BitWidth::W4, BitWidth::W8]);
        let seed = g.u64();
        let packed_model = quantized_model(seed, bits);
        packed_model.pack_frozen_weights().unwrap();
        let unpacked_model = quantized_model(seed, bits);
        let prompt = vec![1, 2, 3];
        let voting = VotingPolicy::final_only(packed_model.n_layers());
        let decoding = if g.bool() {
            Decoding::Greedy
        } else {
            Decoding::TopK {
                k: 3,
                temperature: g.f32_in(0.5, 1.5),
            }
        };
        let gen_seed = g.u64();
        let mut r1 = TensorRng::seed_from(gen_seed);
        let mut r2 = TensorRng::seed_from(gen_seed);
        let a = generate(&packed_model, &voting, &prompt, 4, decoding, &mut r1).unwrap();
        let b = generate(&unpacked_model, &voting, &prompt, 4, decoding, &mut r2).unwrap();
        assert_eq!(a, b, "packed and dense decode diverged ({bits:?})");
    });
}
