//! Staleness suite for the compressed-weight cache.
//!
//! The cache's contract is absolute: after **any** mutation path — an
//! optimizer step through the window visitor, a mask or scheme change,
//! mask enforcement, a LoRA merge written through `weight_mut`, or a
//! checkpoint restore — the cached effective weight must be bit-identical
//! to a freshly recomputed `effective_weight()`. Each test mutates through
//! one path, then asserts exact equality, so a missed invalidation shows
//! up as a bit diff rather than a subtly drifting model.

use edge_llm_model::{
    load_model, save_model, AdaptiveTuner, EdgeModel, Linear, LoraLinear, ModelConfig, Sgd,
    TrainingCheckpoint, WindowSchedule,
};
use edge_llm_prune::magnitude_prune;
use edge_llm_quant::{BitWidth, QuantScheme};
use edge_llm_tensor::TensorRng;

fn quantized_model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    let mut model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let scheme = QuantScheme::symmetric(BitWidth::W4);
    for l in 0..model.n_layers() {
        let b = model.block_mut(l);
        b.attn_mut().qkv_mut().set_quant(Some(scheme));
        b.attn_mut().proj_mut().set_quant(Some(scheme));
        b.mlp_mut().fc1_mut().set_quant(Some(scheme));
        b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        let mask = magnitude_prune(b.mlp_mut().fc1_mut().weight(), 0.4).unwrap();
        b.mlp_mut().fc1_mut().set_mask(Some(mask)).unwrap();
    }
    model
}

fn tokens_for(model: &EdgeModel, seed: u64) -> Vec<usize> {
    let mut rng = TensorRng::seed_from(seed);
    (0..model.config().seq_len)
        .map(|_| rng.index(model.config().vocab_size))
        .collect()
}

/// Every quantized projection's cache must equal a fresh recompute, bit
/// for bit.
fn assert_caches_fresh(model: &EdgeModel, context: &str) {
    for l in 0..model.n_layers() {
        let b = model.block(l);
        let (qkv, proj) = b.attn().linears();
        let (fc1, fc2) = b.mlp().linears();
        for (name, lin) in [("qkv", qkv), ("proj", proj), ("fc1", fc1), ("fc2", fc2)] {
            let cached = lin.cached_effective_weight().unwrap();
            let fresh = lin.effective_weight().unwrap();
            assert_eq!(
                cached.as_slice(),
                fresh.as_slice(),
                "{context}: stale cache in block {l} {name}"
            );
        }
    }
}

#[test]
fn optimizer_steps_keep_caches_fresh() {
    let mut model = quantized_model(1);
    let tokens = tokens_for(&model, 2);
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    // warm every cache, then run several steps; the tuner's window moves,
    // so different layers mutate on different iterations
    model.logits(&tokens, 1).unwrap();
    for it in 0..4 {
        tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        model.logits(&tokens, 1).unwrap();
        assert_caches_fresh(&model, &format!("after step {it}"));
    }
}

#[test]
fn cached_adaptation_is_bit_identical_to_uncached() {
    // The whole-flow differential: same seed, same data, one model with
    // the cache and one recomputing every forward. Logits must agree
    // exactly after every iteration.
    let mut cached = quantized_model(3);
    let mut baseline = quantized_model(3);
    baseline.set_weight_cache_enabled(false);
    let tokens = tokens_for(&cached, 4);
    let mut opt_a = Sgd::with_momentum(0.05, 0.9);
    let mut opt_b = Sgd::with_momentum(0.05, 0.9);
    let mut tuner_a = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    let mut tuner_b = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
    for it in 0..4 {
        let ra = tuner_a
            .step(&mut cached, &mut opt_a, &tokens, &tokens, 1)
            .unwrap();
        let rb = tuner_b
            .step(&mut baseline, &mut opt_b, &tokens, &tokens, 1)
            .unwrap();
        assert_eq!(ra.loss.to_bits(), rb.loss.to_bits(), "loss at step {it}");
        let la = cached.logits(&tokens, 1).unwrap();
        let lb = baseline.logits(&tokens, 1).unwrap();
        assert_eq!(la.as_slice(), lb.as_slice(), "logits at step {it}");
    }
}

#[test]
fn mask_and_scheme_changes_keep_caches_fresh() {
    let mut model = quantized_model(5);
    let tokens = tokens_for(&model, 6);
    model.logits(&tokens, 1).unwrap(); // warm
    {
        let fc2 = model.block_mut(0).mlp_mut().fc2_mut();
        let mask = magnitude_prune(fc2.weight(), 0.6).unwrap();
        fc2.set_mask(Some(mask)).unwrap();
    }
    assert_caches_fresh(&model, "after set_mask");
    model
        .block_mut(1)
        .attn_mut()
        .qkv_mut()
        .set_quant(Some(QuantScheme::symmetric(BitWidth::W2)));
    assert_caches_fresh(&model, "after set_quant");
    model
        .block_mut(1)
        .mlp_mut()
        .fc1_mut()
        .set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
    assert_caches_fresh(&model, "after set_activation_quant");
}

#[test]
fn enforce_mask_keeps_caches_fresh() {
    let mut model = quantized_model(7);
    let tokens = tokens_for(&model, 8);
    model.logits(&tokens, 1).unwrap(); // warm
                                       // perturb a masked weight off zero, as a buggy optimizer would
    {
        let fc1 = model.block_mut(0).mlp_mut().fc1_mut();
        let mask = fc1.mask().unwrap().clone();
        let (rows, cols) = fc1.shape();
        'outer: for r in 0..rows {
            for c in 0..cols {
                if !mask.is_kept(r, c) {
                    fc1.weight_mut().set(r, c, 0.5);
                    break 'outer;
                }
            }
        }
    }
    model.enforce_masks();
    assert_caches_fresh(&model, "after enforce_masks");
}

#[test]
fn lora_merge_through_weight_mut_keeps_caches_fresh() {
    let mut model = quantized_model(9);
    let tokens = tokens_for(&model, 10);
    model.logits(&tokens, 1).unwrap(); // warm
    let mut rng = TensorRng::seed_from(11);
    {
        let proj = model.block_mut(0).attn_mut().proj_mut();
        let mut adapter = LoraLinear::new(proj.weight().clone(), 2, 4.0, &mut rng);
        // train the adapter a little so the merged weight actually moves
        adapter.visit_params(&mut |p, _| {
            for v in p.iter_mut() {
                *v += 0.01;
            }
        });
        let merged = adapter.merge().unwrap();
        *proj.weight_mut() = merged;
    }
    assert_caches_fresh(&model, "after LoRA merge");
}

#[test]
fn checkpoint_restore_keeps_caches_fresh() {
    let mut model = quantized_model(12);
    let tokens = tokens_for(&model, 13);
    model.logits(&tokens, 1).unwrap(); // warm
    let opt = Sgd::new(0.05);
    let rng = TensorRng::seed_from(14);
    let ckpt = TrainingCheckpoint::capture(&model, &opt, 0, &rng, Vec::new());
    // capture is read-only: caches survive
    assert!(model.block(0).attn().linears().0.has_cached_weight());
    // drift the weights, then restore the snapshot
    model.visit_params_all(&mut |_, p, _| {
        for v in p.iter_mut() {
            *v += 0.125;
        }
    });
    ckpt.restore_params(&mut model).unwrap();
    assert_caches_fresh(&model, "after restore_params");
    // restored model behaves identically to one rebuilt from the snapshot
    let rebuilt = ckpt.build_model().unwrap();
    // (rebuilt has no quant schemes — compression is runtime state — so
    // compare the raw parameter stream instead of logits)
    let mut a = Vec::new();
    model.visit_params_all_ro(&mut |_, p| a.extend_from_slice(p));
    let mut b = Vec::new();
    rebuilt.visit_params_all_ro(&mut |_, p| b.extend_from_slice(p));
    assert_eq!(a.len(), b.len());
}

#[test]
fn model_file_roundtrip_keeps_caches_fresh_and_bytes_stable() {
    let model = quantized_model(15);
    let tokens = tokens_for(&model, 16);
    let before = model.logits(&tokens, 1).unwrap();
    // save is read-only: caches survive, and saving twice yields the same
    // bytes (the ro visitor is deterministic)
    let mut bytes = Vec::new();
    save_model(&model, &mut bytes).unwrap();
    assert!(model.block(0).attn().linears().0.has_cached_weight());
    let mut again = Vec::new();
    save_model(&model, &mut again).unwrap();
    assert_eq!(bytes, again);
    // load invalidates by construction (fresh model); once the policy is
    // re-applied the logits match exactly
    let mut loaded = load_model(&mut bytes.as_slice()).unwrap();
    let scheme = QuantScheme::symmetric(BitWidth::W4);
    for l in 0..loaded.n_layers() {
        let b = loaded.block_mut(l);
        b.attn_mut().qkv_mut().set_quant(Some(scheme));
        b.attn_mut().proj_mut().set_quant(Some(scheme));
        b.mlp_mut().fc1_mut().set_quant(Some(scheme));
        b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        let mask = magnitude_prune(b.mlp_mut().fc1_mut().weight(), 0.4).unwrap();
        b.mlp_mut().fc1_mut().set_mask(Some(mask)).unwrap();
    }
    let after = loaded.logits(&tokens, 1).unwrap();
    assert_eq!(before.as_slice(), after.as_slice());
    assert_caches_fresh(&loaded, "after load_model + policy");
}

#[test]
fn packed_decode_stays_fresh_across_repacking() {
    let mut model = quantized_model(17);
    let tokens = tokens_for(&model, 18);
    model.pack_frozen_weights().unwrap();
    let packed = model.logits(&tokens, 1).unwrap();
    // mutate one layer: its packed codes must be dropped and rebuilt
    {
        let qkv = model.block_mut(0).attn_mut().qkv_mut();
        let v = qkv.weight().get(0, 0);
        qkv.weight_mut().set(0, 0, v + 1.0);
        assert!(!qkv.is_packed(), "mutation must drop packed codes");
    }
    let dense = model.logits(&tokens, 1).unwrap();
    assert_ne!(packed.as_slice(), dense.as_slice());
    model.pack_frozen_weights().unwrap();
    let repacked = model.logits(&tokens, 1).unwrap();
    assert_eq!(dense.as_slice(), repacked.as_slice());
    assert_caches_fresh(&model, "after repack");
}

#[test]
fn standalone_linear_staleness_matrix() {
    // The unit-level sweep: one mutation per case, exact equality after.
    let mut rng = TensorRng::seed_from(19);
    let fresh = |l: &Linear| l.effective_weight().unwrap().into_owned();
    type Mutation = Box<dyn Fn(&mut Linear)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        (
            "visit_params",
            Box::new(|l: &mut Linear| {
                l.visit_params(&mut |p, _| {
                    for v in p.iter_mut() {
                        *v *= 1.0625;
                    }
                });
            }),
        ),
        (
            "weight_mut",
            Box::new(|l: &mut Linear| {
                let v = l.weight().get(0, 0);
                l.weight_mut().set(0, 0, v + 0.5);
            }),
        ),
        (
            "set_mask",
            Box::new(|l: &mut Linear| {
                let mask = magnitude_prune(l.weight(), 0.3).unwrap();
                l.set_mask(Some(mask)).unwrap();
            }),
        ),
        (
            "set_quant",
            Box::new(|l: &mut Linear| {
                l.set_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
            }),
        ),
        (
            "enforce_mask",
            Box::new(|l: &mut Linear| {
                let mask = magnitude_prune(l.weight(), 0.5).unwrap();
                l.set_mask(Some(mask)).unwrap();
                l.visit_params(&mut |p, _| {
                    for v in p.iter_mut() {
                        *v += 0.25;
                    }
                });
                l.enforce_mask();
            }),
        ),
    ];
    for (name, mutate) in mutations {
        let mut l = Linear::new(16, 12, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        let _ = l.cached_effective_weight().unwrap();
        l.pack_weights().unwrap();
        mutate(&mut l);
        let cached = l.cached_effective_weight().unwrap();
        assert_eq!(
            cached.as_slice(),
            fresh(&l).as_slice(),
            "stale cache after {name}"
        );
    }
}
