//! Property-based tests of model-level invariants: window schedules,
//! voting distributions, and optimizer behavior — driven by the in-repo
//! seeded case harness (`edge_llm_tensor::check`).

use edge_llm_model::{combine, Adam, Optimizer, Sgd, VotingCombiner, WindowSchedule};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::{Tensor, TensorRng};

#[test]
fn round_robin_windows_cover_and_stay_in_bounds() {
    run_cases("round robin coverage", 48, |g| {
        let n_layers = g.usize_in(1, 16);
        let depth = g.usize_in(1, 8);
        let iters = g.usize_in(1, 64);
        let sched = WindowSchedule::RoundRobin { depth };
        let mut covered = std::collections::HashSet::new();
        for i in 0..iters.max(n_layers.div_ceil(depth.min(n_layers))) {
            let w = sched.window_for(i, n_layers);
            assert!(w.start < w.end);
            assert!(w.end <= n_layers);
            assert_eq!(w.depth(), depth.min(n_layers));
            for l in w.start..w.end {
                covered.insert(l);
            }
        }
        // after a full cycle, every layer has been visited
        assert_eq!(covered.len(), n_layers);
    });
}

#[test]
fn voting_outputs_are_distributions() {
    run_cases("voting distributions", 48, |g| {
        let n_exits = g.usize_in(1, 5);
        let rows = g.usize_in(1, 4);
        let cols = g.usize_in(2, 10);
        let mut rng = TensorRng::seed_from(g.u64());
        let logits: Vec<Tensor> = (0..n_exits)
            .map(|_| Tensor::randn(rows, cols, 2.0, &mut rng))
            .collect();
        for combiner in [
            VotingCombiner::LastExit,
            VotingCombiner::Average,
            VotingCombiner::ConfidenceWeighted { temperature: 0.7 },
        ] {
            let out = combine(&logits, &combiner).unwrap();
            assert_eq!(out.shape(), (rows, cols));
            for r in 0..rows {
                let sum: f32 = out.row(r).iter().sum();
                assert!((sum - 1.0).abs() < 1e-3, "row sums to {sum}");
                assert!(out.row(r).iter().all(|&p| p >= -1e-6));
            }
        }
    });
}

#[test]
fn single_exit_voting_equals_last_exit() {
    run_cases("single-exit voting", 48, |g| {
        let rows = g.usize_in(1, 4);
        let cols = g.usize_in(2, 8);
        let mut rng = TensorRng::seed_from(g.u64());
        let logits = vec![Tensor::randn(rows, cols, 1.0, &mut rng)];
        let avg = combine(&logits, &VotingCombiner::Average).unwrap();
        let last = combine(&logits, &VotingCombiner::LastExit).unwrap();
        let conf = combine(
            &logits,
            &VotingCombiner::ConfidenceWeighted { temperature: 1.0 },
        )
        .unwrap();
        assert!(avg.approx_eq(&last, 1e-5));
        assert!(conf.approx_eq(&last, 1e-4));
    });
}

#[test]
fn sgd_descends_any_convex_quadratic() {
    run_cases("sgd descends", 48, |g| {
        // f(x) = a/2 x^2; lr < 1/a guarantees contraction
        let a = g.f32_in(0.5, 4.0);
        let x0 = g.f32_in(-5.0, 5.0);
        let lr = 0.5 / a;
        let mut opt = Sgd::new(lr);
        let mut p = vec![x0];
        for _ in 0..50 {
            opt.begin_step();
            let mut grad = vec![a * p[0]];
            opt.update(0, &mut p, &mut grad);
        }
        assert!(p[0].abs() <= x0.abs() + 1e-6);
        assert!(p[0].abs() < 0.2 * x0.abs().max(0.1));
    });
}

#[test]
fn adam_descends_any_convex_quadratic() {
    run_cases("adam descends", 48, |g| {
        let a = g.f32_in(0.5, 4.0);
        let x0 = g.f32_in(-5.0, 5.0);
        let mut opt = Adam::new(0.1);
        let mut p = vec![x0];
        let start = x0.abs();
        for _ in 0..200 {
            opt.begin_step();
            let mut grad = vec![a * p[0]];
            opt.update(0, &mut p, &mut grad);
        }
        assert!(p[0].abs() < start.max(0.3), "diverged to {}", p[0]);
    });
}

#[test]
fn optimizers_zero_gradients() {
    run_cases("optimizers zero grads", 48, |g| {
        let len = g.usize_in(1, 32);
        let mut rng = TensorRng::seed_from(g.u64());
        let mut p: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let mut grad: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let mut sgd = Sgd::with_momentum(0.01, 0.9);
        sgd.begin_step();
        sgd.update(3, &mut p, &mut grad);
        assert!(grad.iter().all(|&x| x == 0.0));
        let mut adam = Adam::new(0.01);
        let mut g2: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        adam.begin_step();
        adam.update(9, &mut p, &mut g2);
        assert!(g2.iter().all(|&x| x == 0.0));
    });
}
