//! Property-based tests of model-level invariants: window schedules,
//! voting distributions, and optimizer behavior.

use edge_llm_model::{combine, Adam, Optimizer, Sgd, VotingCombiner, WindowSchedule};
use edge_llm_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_robin_windows_cover_and_stay_in_bounds(n_layers in 1usize..16, depth in 1usize..8, iters in 1usize..64) {
        let sched = WindowSchedule::RoundRobin { depth };
        let mut covered = std::collections::HashSet::new();
        for i in 0..iters.max(n_layers.div_ceil(depth.min(n_layers))) {
            let w = sched.window_for(i, n_layers);
            prop_assert!(w.start < w.end);
            prop_assert!(w.end <= n_layers);
            prop_assert_eq!(w.depth(), depth.min(n_layers));
            for l in w.start..w.end {
                covered.insert(l);
            }
        }
        // after a full cycle, every layer has been visited
        prop_assert_eq!(covered.len(), n_layers);
    }

    #[test]
    fn voting_outputs_are_distributions(seed in any::<u64>(), n_exits in 1usize..5, rows in 1usize..4, cols in 2usize..10) {
        let mut rng = TensorRng::seed_from(seed);
        let logits: Vec<Tensor> = (0..n_exits).map(|_| Tensor::randn(rows, cols, 2.0, &mut rng)).collect();
        for combiner in [
            VotingCombiner::LastExit,
            VotingCombiner::Average,
            VotingCombiner::ConfidenceWeighted { temperature: 0.7 },
        ] {
            let out = combine(&logits, &combiner).unwrap();
            prop_assert_eq!(out.shape(), (rows, cols));
            for r in 0..rows {
                let sum: f32 = out.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-3, "row sums to {}", sum);
                prop_assert!(out.row(r).iter().all(|&p| p >= -1e-6));
            }
        }
    }

    #[test]
    fn single_exit_voting_equals_last_exit(seed in any::<u64>(), rows in 1usize..4, cols in 2usize..8) {
        let mut rng = TensorRng::seed_from(seed);
        let logits = vec![Tensor::randn(rows, cols, 1.0, &mut rng)];
        let avg = combine(&logits, &VotingCombiner::Average).unwrap();
        let last = combine(&logits, &VotingCombiner::LastExit).unwrap();
        let conf = combine(&logits, &VotingCombiner::ConfidenceWeighted { temperature: 1.0 }).unwrap();
        prop_assert!(avg.approx_eq(&last, 1e-5));
        prop_assert!(conf.approx_eq(&last, 1e-4));
    }

    #[test]
    fn sgd_descends_any_convex_quadratic(a in 0.5f32..4.0, x0 in -5.0f32..5.0) {
        // f(x) = a/2 x^2; lr < 1/a guarantees contraction
        let lr = 0.5 / a;
        let mut opt = Sgd::new(lr);
        let mut p = vec![x0];
        for _ in 0..50 {
            opt.begin_step();
            let mut g = vec![a * p[0]];
            opt.update(0, &mut p, &mut g);
        }
        prop_assert!(p[0].abs() <= x0.abs() + 1e-6);
        prop_assert!(p[0].abs() < 0.2 * x0.abs().max(0.1));
    }

    #[test]
    fn adam_descends_any_convex_quadratic(a in 0.5f32..4.0, x0 in -5.0f32..5.0) {
        let mut opt = Adam::new(0.1);
        let mut p = vec![x0];
        let start = x0.abs();
        for _ in 0..200 {
            opt.begin_step();
            let mut g = vec![a * p[0]];
            opt.update(0, &mut p, &mut g);
        }
        prop_assert!(p[0].abs() < start.max(0.3), "diverged to {}", p[0]);
    }

    #[test]
    fn optimizers_zero_gradients(seed in any::<u64>(), len in 1usize..32) {
        let mut rng = TensorRng::seed_from(seed);
        let mut p: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let mut g: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let mut sgd = Sgd::with_momentum(0.01, 0.9);
        sgd.begin_step();
        sgd.update(3, &mut p, &mut g);
        prop_assert!(g.iter().all(|&x| x == 0.0));
        let mut adam = Adam::new(0.01);
        let mut g2: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        adam.begin_step();
        adam.update(9, &mut p, &mut g2);
        prop_assert!(g2.iter().all(|&x| x == 0.0));
    }
}
