//! Randomized property tests for the self-speculative decode round.
//!
//! `spec_round` makes three promises these tests pin down against
//! independent recomputations (never against its own internals):
//!
//! 1. `accepted` is exactly the longest prefix on which the shallow draft
//!    and the full-depth verifier agree, plus the verifier's correction
//!    token — recomputed here token-by-token on separate sessions.
//! 2. After the rollback the KV cache holds exactly the consumed prefix:
//!    `len == t0 + accepted.len()` (the last accepted token is the next
//!    round's frontier and has not been fed yet).
//! 3. The telemetry counters (`spec.draft_tokens`, `spec.verify_passes`,
//!    `spec.accepted_tokens`) equal a from-scratch recount of the round
//!    reports.
//!
//! All tests share one lock: the telemetry recorder is process-global, so
//! a counter recount must not observe another test's rounds.

use edge_llm_model::{
    combine, sample_token, Decoding, EdgeModel, InferenceSession, ModelConfig, VotingCombiner,
};
use edge_llm_telemetry as telemetry;
use edge_llm_tensor::check::{run_cases, Gen};
use edge_llm_tensor::TensorRng;
use std::sync::{Arc, Mutex};

/// Serializes every test in this binary (telemetry state is global).
static LOCK: Mutex<()> = Mutex::new(());

fn random_model(g: &mut Gen) -> EdgeModel {
    let layers = g.usize_in(2, 5);
    let seq_len = g.usize_in(4, 13);
    let cfg = ModelConfig::tiny()
        .with_layers(layers)
        .with_seq_len(seq_len);
    let mut rng = TensorRng::seed_from(g.u64());
    EdgeModel::new(cfg, &mut rng).unwrap()
}

/// Greedy argmax of one exit's combined distribution.
fn greedy_at(session: &mut InferenceSession, token: usize, exit: usize) -> usize {
    let exits = session.push_token_exits(token, &[exit]).unwrap();
    let probs = combine(&exits, &VotingCombiner::LastExit).unwrap();
    let mut rng = TensorRng::seed_from(0); // greedy ignores the rng
    sample_token(probs.row(0), Decoding::Greedy, &mut rng)
}

#[test]
fn accepted_is_the_longest_agreeing_prefix_plus_correction() {
    let _guard = LOCK.lock().unwrap();
    run_cases("spec longest agreeing prefix", 24, |g| {
        let m = random_model(g);
        let layers = m.n_layers();
        let seq_len = m.config().seq_len;
        let vocab = m.config().vocab_size;
        let prompt_len = g.usize_in(1, seq_len);
        let prompt: Vec<usize> = (0..prompt_len).map(|_| g.usize_in(0, vocab)).collect();
        let draft_depth = g.usize_in(0, layers);
        let k = g.usize_in(1, 9);
        let t0 = prompt_len - 1;
        let frontier = prompt[t0];
        let k_eff = k.min(seq_len - t0 - 1);

        // Recompute the draft on its own session: greedy tokens from the
        // shallow exit. (Exit d's logits are identical whether or not the
        // layers above d also run, so a full-depth session is a valid way
        // to read the shallow head.)
        let mut draft_sess = InferenceSession::new(&m);
        for &t in &prompt[..t0] {
            draft_sess.advance_token(t).unwrap();
        }
        let mut guesses = Vec::new();
        let mut feed = frontier;
        for _ in 0..k_eff {
            let next = greedy_at(&mut draft_sess, feed, draft_depth);
            guesses.push(next);
            feed = next;
        }

        // Recompute the verifier on another session: full-depth greedy
        // over [frontier, guesses...], one token at a time.
        let mut verify_sess = InferenceSession::new(&m);
        for &t in &prompt[..t0] {
            verify_sess.advance_token(t).unwrap();
        }
        let mut expected = Vec::new();
        for (j, &t) in std::iter::once(&frontier).chain(&guesses).enumerate() {
            let v = greedy_at(&mut verify_sess, t, layers - 1);
            expected.push(v);
            if j >= guesses.len() || guesses[j] != v {
                break;
            }
        }

        let mut sess = InferenceSession::new(&m);
        for &t in &prompt[..t0] {
            sess.advance_token(t).unwrap();
        }
        let round = sess.speculative_round(frontier, draft_depth, k).unwrap();
        let ctx = format!(
            "layers {layers}, seq_len {seq_len}, prompt {prompt_len}, \
             depth {draft_depth}, k {k}"
        );
        assert_eq!(round.accepted, expected, "{ctx}: accepted prefix");
        assert_eq!(round.drafted, k_eff, "{ctx}: drafted count");
        assert_eq!(round.verified, round.drafted + 1, "{ctx}: verified count");
        // every accepted token except the correction agreed with the draft
        let agreed = round.accepted.len() - 1;
        assert_eq!(
            round.accepted[..agreed],
            guesses[..agreed],
            "{ctx}: agreement"
        );
        if round.accepted.len() <= guesses.len() {
            assert_ne!(
                round.accepted[agreed], guesses[agreed],
                "{ctx}: a short acceptance must end at a real disagreement"
            );
        }
    });
}

#[test]
fn cache_length_after_rollback_equals_the_accepted_position() {
    let _guard = LOCK.lock().unwrap();
    run_cases("spec rollback length", 24, |g| {
        let m = random_model(g);
        let seq_len = m.config().seq_len;
        let vocab = m.config().vocab_size;
        let prompt_len = g.usize_in(1, seq_len);
        let prompt: Vec<usize> = (0..prompt_len).map(|_| g.usize_in(0, vocab)).collect();
        let draft_depth = g.usize_in(0, m.n_layers());
        let k = g.usize_in(1, 9);

        let mut sess = InferenceSession::new(&m);
        for &t in &prompt[..prompt_len - 1] {
            sess.advance_token(t).unwrap();
        }
        let mut t0 = prompt_len - 1;
        let mut frontier = prompt[t0];
        // chain rounds until the cache fills: the invariant must hold at
        // every intermediate state, not just after one round
        while sess.remaining() > 0 {
            let round = sess.speculative_round(frontier, draft_depth, k).unwrap();
            assert!(!round.accepted.is_empty(), "a round always makes progress");
            assert_eq!(
                sess.len(),
                t0 + round.accepted.len(),
                "rollback must leave exactly the consumed prefix resident"
            );
            t0 = sess.len();
            frontier = *round.accepted.last().unwrap();
        }
    });
}

#[test]
fn telemetry_counters_equal_a_recount_of_the_round_reports() {
    let _guard = LOCK.lock().unwrap();
    run_cases("spec counter recount", 8, |g| {
        let m = random_model(g);
        let seq_len = m.config().seq_len;
        let vocab = m.config().vocab_size;
        let draft_depth = g.usize_in(0, m.n_layers());
        let k = g.usize_in(1, 6);

        telemetry::enable(Arc::new(telemetry::FakeClock::with_tick(1)));
        let mut rounds = Vec::new();
        let mut sess = InferenceSession::new(&m);
        let mut frontier = g.usize_in(0, vocab);
        while sess.remaining() > 0 {
            let round = sess.speculative_round(frontier, draft_depth, k).unwrap();
            frontier = *round.accepted.last().unwrap();
            rounds.push(round);
        }
        let events = telemetry::disable();
        assert!(sess.len() == seq_len && !rounds.is_empty());

        let totals = telemetry::counter_totals(&events);
        let recount = |f: fn(&edge_llm_model::SpecReport) -> usize| -> u64 {
            rounds.iter().map(|r| f(r) as u64).sum()
        };
        assert_eq!(totals["spec.draft_tokens"], recount(|r| r.drafted));
        assert_eq!(totals["spec.verify_passes"], rounds.len() as u64);
        assert_eq!(
            totals["spec.accepted_tokens"],
            recount(|r| r.accepted.len())
        );
        // the spans that time the two halves of a round are present too
        let spans = telemetry::aggregate_span_ns(&events);
        assert_eq!(spans["spec.verify"].0, rounds.len());
        assert_eq!(spans["spec.draft"].0, rounds.len());
    });
}
