//! Decode-path equivalence and decoding edge cases.
//!
//! The repo has two ways to produce a next-token distribution: the
//! full-forward path ([`generate`] / `VotingPolicy::predict`, re-running
//! the whole window each step) and the KV-cached incremental path
//! ([`InferenceSession`], one token per step). Serving is built on the
//! second, all reported quality numbers on the first — so these tests pin
//! them together across every decoding mode and every voting combiner,
//! and pin down the sampling primitive's edge-case contracts.

use edge_llm_model::{
    combine, generate, sample_token, Decoding, EdgeModel, InferenceSession, ModelConfig,
    ModelError, VotingCombiner, VotingPolicy,
};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::{Tensor, TensorRng};

fn model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

/// Re-implements [`generate`]'s fixed-window decode loop on top of
/// KV-cached sessions: each step replays the same left-padded window
/// through a fresh [`InferenceSession`] and samples from the last
/// position's combined distribution.
fn session_generate(
    model: &EdgeModel,
    voting: &VotingPolicy,
    prompt: &[usize],
    n_new: usize,
    decoding: Decoding,
    rng: &mut TensorRng,
) -> Vec<usize> {
    let seq_len = model.config().seq_len;
    let mut tokens = prompt.to_vec();
    for _ in 0..n_new {
        let mut window = vec![tokens[0]; seq_len];
        let take = tokens.len().min(seq_len);
        window[seq_len - take..].copy_from_slice(&tokens[tokens.len() - take..]);
        let mut session = InferenceSession::new(model);
        let mut probs = None;
        for &tok in &window {
            let exits = session.push_token_exits(tok, &voting.exits).unwrap();
            probs = Some(combine(&exits, &voting.combiner).unwrap());
        }
        let probs = probs.expect("seq_len >= 1");
        tokens.push(sample_token(probs.row(0), decoding, rng));
    }
    tokens
}

/// Every voting policy shape the crate offers.
fn all_policies(n_layers: usize) -> Vec<(&'static str, VotingPolicy)> {
    vec![
        ("final-only", VotingPolicy::final_only(n_layers)),
        (
            "last-exit",
            VotingPolicy::all_exits(n_layers, VotingCombiner::LastExit),
        ),
        (
            "average",
            VotingPolicy::all_exits(n_layers, VotingCombiner::Average),
        ),
        (
            "confidence",
            VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::ConfidenceWeighted { temperature: 0.8 },
            ),
        ),
        (
            "learned",
            VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::Learned((1..=n_layers).map(|i| i as f32).collect()),
            ),
        ),
    ]
}

#[test]
fn session_decode_matches_generate_for_every_mode_and_policy() {
    let m = model(21);
    let decodings = [
        Decoding::Greedy,
        Decoding::Sample { temperature: 0.9 },
        Decoding::TopK {
            k: 5,
            temperature: 1.2,
        },
    ];
    for (pname, policy) in all_policies(m.n_layers()) {
        for (di, &decoding) in decodings.iter().enumerate() {
            let seed = 100 + di as u64;
            let prompt = [3usize, 7, 1];
            let mut rng_a = TensorRng::seed_from(seed);
            let full = generate(&m, &policy, &prompt, 6, decoding, &mut rng_a).unwrap();
            let mut rng_b = TensorRng::seed_from(seed);
            let incremental = session_generate(&m, &policy, &prompt, 6, decoding, &mut rng_b);
            assert_eq!(
                full, incremental,
                "policy {pname}, decoding {decoding:?}: full-forward and \
                 KV-cached decoding must emit the same token stream"
            );
        }
    }
}

#[test]
fn per_position_session_probs_match_predict_rows() {
    let m = model(22);
    let cfg = m.config().clone();
    let tokens: Vec<usize> = (0..cfg.seq_len)
        .map(|i| (i * 5 + 2) % cfg.vocab_size)
        .collect();
    for (pname, policy) in all_policies(m.n_layers()) {
        let batched = policy.predict(&m, &tokens, 1).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let exits = session.push_token_exits(tok, &policy.exits).unwrap();
            let row = combine(&exits, &policy.combiner).unwrap();
            for v in 0..cfg.vocab_size {
                let a = batched.get(t, v);
                let b = row.get(0, v);
                assert!(
                    (a - b).abs() < 1e-4,
                    "policy {pname}, position {t}, vocab {v}: batched {a} vs incremental {b}"
                );
            }
        }
    }
}

/// A random probability row (positive entries summing to 1).
fn random_probs(rng: &mut TensorRng, n: usize) -> Vec<f32> {
    let raw: Vec<f32> = (0..n).map(|_| rng.uniform(0.01, 1.0)).collect();
    let total: f32 = raw.iter().sum();
    raw.into_iter().map(|p| p / total).collect()
}

#[test]
fn top_k_covering_the_vocab_degenerates_to_full_sampling() {
    run_cases("topk degenerates to sample", 64, |g| {
        let n = g.usize_in(2, 40);
        let temperature = g.f32_in(0.2, 3.0);
        let probs = random_probs(g.rng(), n);
        let k = n + g.usize_in(0, 4); // k >= vocab, possibly beyond
        let seed = g.u64();
        let mut rng_a = TensorRng::seed_from(seed);
        let mut rng_b = TensorRng::seed_from(seed);
        for draw in 0..8 {
            let full = sample_token(&probs, Decoding::Sample { temperature }, &mut rng_a);
            let topk = sample_token(&probs, Decoding::TopK { k, temperature }, &mut rng_b);
            assert_eq!(
                full, topk,
                "draw {draw}: k={k} covers all {n} candidates, so top-k must \
                 agree with full sampling draw-for-draw"
            );
        }
    });
}

#[test]
fn top_1_agrees_with_greedy_at_any_temperature() {
    run_cases("top-1 is greedy", 64, |g| {
        let n = g.usize_in(2, 40);
        let temperature = g.f32_in(0.001, 50.0);
        let probs = random_probs(g.rng(), n);
        let greedy = sample_token(&probs, Decoding::Greedy, g.rng());
        let top1 = sample_token(&probs, Decoding::TopK { k: 1, temperature }, g.rng());
        assert_eq!(greedy, top1);
    });
}

#[test]
fn extreme_temperatures_stay_finite_and_in_range() {
    run_cases("extreme temperatures", 64, |g| {
        let n = g.usize_in(2, 40);
        let probs = random_probs(g.rng(), n);
        for &temperature in &[1e-6f32, 1e-3, 1.0, 100.0, 1e6] {
            let s = sample_token(&probs, Decoding::Sample { temperature }, g.rng());
            assert!(s < n, "Sample at T={temperature} returned {s} out of {n}");
            let k = g.usize_in(1, n + 1);
            let t = sample_token(&probs, Decoding::TopK { k, temperature }, g.rng());
            assert!(t < n, "TopK at T={temperature} returned {t} out of {n}");
        }
        // as T -> 0 the tempered distribution collapses onto the mode, so a
        // near-zero temperature must agree with greedy (the max is unique
        // with probability 1 for random rows)
        let cold = sample_token(&probs, Decoding::Sample { temperature: 1e-6 }, g.rng());
        let greedy = sample_token(&probs, Decoding::Greedy, g.rng());
        assert_eq!(cold, greedy, "T=1e-6 sampling must collapse onto the mode");
    });
}

#[test]
fn exhausted_sessions_fail_cleanly_without_consuming_capacity() {
    run_cases("capacity exhaustion", 16, |g| {
        let m = model(g.u64());
        let seq_len = m.config().seq_len;
        let mut session = InferenceSession::new(&m);
        for i in 0..seq_len {
            session.push_token(i % m.config().vocab_size).unwrap();
        }
        assert_eq!(session.remaining(), 0);
        // every push style must fail with CapacityExhausted, repeatedly,
        // and leave the session state untouched
        for _ in 0..3 {
            assert!(matches!(
                session.push_token(1),
                Err(ModelError::CapacityExhausted { capacity }) if capacity == seq_len
            ));
            assert!(matches!(
                session.advance_token(1),
                Err(ModelError::CapacityExhausted { .. })
            ));
            assert!(matches!(
                session.push_token_exits(1, &[0]),
                Err(ModelError::CapacityExhausted { .. })
            ));
            assert_eq!(session.len(), seq_len, "failed pushes must not advance");
        }
        session.reset();
        assert!(session.push_token(1).is_ok());
    });
}

#[test]
fn learned_combiner_votes_like_a_weighted_average() {
    // spot-check the remaining combiner against a hand computation so
    // every VotingCombiner variant is exercised by this suite
    let mut rng = TensorRng::seed_from(23);
    let a = Tensor::randn(1, 4, 1.0, &mut rng);
    let b = Tensor::randn(1, 4, 1.0, &mut rng);
    let got = combine(
        &[a.clone(), b.clone()],
        &VotingCombiner::Learned(vec![1.0, 3.0]),
    )
    .unwrap();
    let sa = edge_llm_tensor::softmax_rows(&a);
    let sb = edge_llm_tensor::softmax_rows(&b);
    for v in 0..4 {
        let want = 0.25 * sa.get(0, v) + 0.75 * sb.get(0, v);
        assert!((got.get(0, v) - want).abs() < 1e-5, "vocab {v}");
    }
}
