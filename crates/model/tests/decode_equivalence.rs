//! Decode-path equivalence and decoding edge cases.
//!
//! The repo has two ways to produce a next-token distribution: the
//! full-forward path ([`generate`] / `VotingPolicy::predict`, re-running
//! the whole window each step) and the KV-cached incremental path
//! ([`InferenceSession`], one token per step). Serving is built on the
//! second, all reported quality numbers on the first — so these tests pin
//! them together across every decoding mode and every voting combiner,
//! and pin down the sampling primitive's edge-case contracts.

use edge_llm_model::{
    combine, generate, sample_token, speculative_generate, Decoding, EdgeModel, InferenceSession,
    ModelConfig, ModelError, VotingCombiner, VotingPolicy,
};
use edge_llm_prune::magnitude_prune;
use edge_llm_quant::{BitWidth, QuantScheme};
use edge_llm_tensor::check::run_cases;
use edge_llm_tensor::{configured_threads, set_configured_threads, Tensor, TensorRng};
use std::sync::Mutex;

/// Serializes tests that touch the process-wide thread setting.
static KNOB: Mutex<()> = Mutex::new(());

fn model(seed: u64) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
}

/// Re-implements [`generate`]'s fixed-window decode loop on top of
/// KV-cached sessions: each step replays the same left-padded window
/// through a fresh [`InferenceSession`] and samples from the last
/// position's combined distribution.
fn session_generate(
    model: &EdgeModel,
    voting: &VotingPolicy,
    prompt: &[usize],
    n_new: usize,
    decoding: Decoding,
    rng: &mut TensorRng,
) -> Vec<usize> {
    let seq_len = model.config().seq_len;
    let mut tokens = prompt.to_vec();
    for _ in 0..n_new {
        let mut window = vec![tokens[0]; seq_len];
        let take = tokens.len().min(seq_len);
        window[seq_len - take..].copy_from_slice(&tokens[tokens.len() - take..]);
        let mut session = InferenceSession::new(model);
        let mut probs = None;
        for &tok in &window {
            let exits = session.push_token_exits(tok, &voting.exits).unwrap();
            probs = Some(combine(&exits, &voting.combiner).unwrap());
        }
        let probs = probs.expect("seq_len >= 1");
        tokens.push(sample_token(probs.row(0), decoding, rng));
    }
    tokens
}

/// Every voting policy shape the crate offers.
fn all_policies(n_layers: usize) -> Vec<(&'static str, VotingPolicy)> {
    vec![
        ("final-only", VotingPolicy::final_only(n_layers)),
        (
            "last-exit",
            VotingPolicy::all_exits(n_layers, VotingCombiner::LastExit),
        ),
        (
            "average",
            VotingPolicy::all_exits(n_layers, VotingCombiner::Average),
        ),
        (
            "confidence",
            VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::ConfidenceWeighted { temperature: 0.8 },
            ),
        ),
        (
            "learned",
            VotingPolicy::all_exits(
                n_layers,
                VotingCombiner::Learned((1..=n_layers).map(|i| i as f32).collect()),
            ),
        ),
    ]
}

#[test]
fn session_decode_matches_generate_for_every_mode_and_policy() {
    let m = model(21);
    let decodings = [
        Decoding::Greedy,
        Decoding::Sample { temperature: 0.9 },
        Decoding::TopK {
            k: 5,
            temperature: 1.2,
        },
    ];
    for (pname, policy) in all_policies(m.n_layers()) {
        for (di, &decoding) in decodings.iter().enumerate() {
            let seed = 100 + di as u64;
            let prompt = [3usize, 7, 1];
            let mut rng_a = TensorRng::seed_from(seed);
            let full = generate(&m, &policy, &prompt, 6, decoding, &mut rng_a).unwrap();
            let mut rng_b = TensorRng::seed_from(seed);
            let incremental = session_generate(&m, &policy, &prompt, 6, decoding, &mut rng_b);
            assert_eq!(
                full, incremental,
                "policy {pname}, decoding {decoding:?}: full-forward and \
                 KV-cached decoding must emit the same token stream"
            );
        }
    }
}

#[test]
fn per_position_session_probs_match_predict_rows() {
    let m = model(22);
    let cfg = m.config().clone();
    let tokens: Vec<usize> = (0..cfg.seq_len)
        .map(|i| (i * 5 + 2) % cfg.vocab_size)
        .collect();
    for (pname, policy) in all_policies(m.n_layers()) {
        let batched = policy.predict(&m, &tokens, 1).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let exits = session.push_token_exits(tok, &policy.exits).unwrap();
            let row = combine(&exits, &policy.combiner).unwrap();
            for v in 0..cfg.vocab_size {
                let a = batched.get(t, v);
                let b = row.get(0, v);
                assert!(
                    (a - b).abs() < 1e-4,
                    "policy {pname}, position {t}, vocab {v}: batched {a} vs incremental {b}"
                );
            }
        }
    }
}

/// A random probability row (positive entries summing to 1).
fn random_probs(rng: &mut TensorRng, n: usize) -> Vec<f32> {
    let raw: Vec<f32> = (0..n).map(|_| rng.uniform(0.01, 1.0)).collect();
    let total: f32 = raw.iter().sum();
    raw.into_iter().map(|p| p / total).collect()
}

#[test]
fn top_k_covering_the_vocab_degenerates_to_full_sampling() {
    run_cases("topk degenerates to sample", 64, |g| {
        let n = g.usize_in(2, 40);
        let temperature = g.f32_in(0.2, 3.0);
        let probs = random_probs(g.rng(), n);
        let k = n + g.usize_in(0, 4); // k >= vocab, possibly beyond
        let seed = g.u64();
        let mut rng_a = TensorRng::seed_from(seed);
        let mut rng_b = TensorRng::seed_from(seed);
        for draw in 0..8 {
            let full = sample_token(&probs, Decoding::Sample { temperature }, &mut rng_a);
            let topk = sample_token(&probs, Decoding::TopK { k, temperature }, &mut rng_b);
            assert_eq!(
                full, topk,
                "draw {draw}: k={k} covers all {n} candidates, so top-k must \
                 agree with full sampling draw-for-draw"
            );
        }
    });
}

#[test]
fn top_1_agrees_with_greedy_at_any_temperature() {
    run_cases("top-1 is greedy", 64, |g| {
        let n = g.usize_in(2, 40);
        let temperature = g.f32_in(0.001, 50.0);
        let probs = random_probs(g.rng(), n);
        let greedy = sample_token(&probs, Decoding::Greedy, g.rng());
        let top1 = sample_token(&probs, Decoding::TopK { k: 1, temperature }, g.rng());
        assert_eq!(greedy, top1);
    });
}

#[test]
fn extreme_temperatures_stay_finite_and_in_range() {
    run_cases("extreme temperatures", 64, |g| {
        let n = g.usize_in(2, 40);
        let probs = random_probs(g.rng(), n);
        for &temperature in &[1e-6f32, 1e-3, 1.0, 100.0, 1e6] {
            let s = sample_token(&probs, Decoding::Sample { temperature }, g.rng());
            assert!(s < n, "Sample at T={temperature} returned {s} out of {n}");
            let k = g.usize_in(1, n + 1);
            let t = sample_token(&probs, Decoding::TopK { k, temperature }, g.rng());
            assert!(t < n, "TopK at T={temperature} returned {t} out of {n}");
        }
        // as T -> 0 the tempered distribution collapses onto the mode, so a
        // near-zero temperature must agree with greedy (the max is unique
        // with probability 1 for random rows)
        let cold = sample_token(&probs, Decoding::Sample { temperature: 1e-6 }, g.rng());
        let greedy = sample_token(&probs, Decoding::Greedy, g.rng());
        assert_eq!(cold, greedy, "T=1e-6 sampling must collapse onto the mode");
    });
}

#[test]
fn exhausted_sessions_fail_cleanly_without_consuming_capacity() {
    run_cases("capacity exhaustion", 16, |g| {
        let m = model(g.u64());
        let seq_len = m.config().seq_len;
        let mut session = InferenceSession::new(&m);
        for i in 0..seq_len {
            session.push_token(i % m.config().vocab_size).unwrap();
        }
        assert_eq!(session.remaining(), 0);
        // every push style must fail with CapacityExhausted, repeatedly,
        // and leave the session state untouched
        for _ in 0..3 {
            assert!(matches!(
                session.push_token(1),
                Err(ModelError::CapacityExhausted { capacity }) if capacity == seq_len
            ));
            assert!(matches!(
                session.advance_token(1),
                Err(ModelError::CapacityExhausted { .. })
            ));
            assert!(matches!(
                session.push_token_exits(1, &[0]),
                Err(ModelError::CapacityExhausted { .. })
            ));
            assert_eq!(session.len(), seq_len, "failed pushes must not advance");
        }
        session.reset();
        assert!(session.push_token(1).is_ok());
    });
}

/// Greedy final-exit decoding with [`speculative_generate`]'s exact
/// windowing (keep the last `min(len, seq_len)` tokens, rebuild the cache
/// when it fills), written on the incremental session API — an
/// independent oracle for the draft/verify/rollback path, which never
/// touches `spec_round` or its chunked verify forward.
fn windowed_greedy(model: &EdgeModel, prompt: &[usize], n_new: usize) -> Vec<usize> {
    let seq_len = model.config().seq_len;
    let final_exit = [model.n_layers() - 1];
    let mut rng = TensorRng::seed_from(0); // unused: greedy ignores the rng
    let mut tokens = prompt.to_vec();
    let mut produced = 0usize;
    'window: while produced < n_new {
        let mut session = InferenceSession::new(model);
        let take = tokens.len().min(seq_len);
        let window = &tokens[tokens.len() - take..];
        for &t in &window[..window.len() - 1] {
            session.advance_token(t).unwrap();
        }
        let mut frontier = *window.last().unwrap();
        while produced < n_new {
            if session.remaining() == 0 {
                continue 'window;
            }
            let exits = session.push_token_exits(frontier, &final_exit).unwrap();
            let probs = combine(&exits, &VotingCombiner::LastExit).unwrap();
            let next = sample_token(probs.row(0), Decoding::Greedy, &mut rng);
            tokens.push(next);
            produced += 1;
            frontier = next;
        }
    }
    tokens
}

#[test]
fn speculative_decode_is_bit_identical_to_greedy_for_every_depth_k_and_thread_count() {
    let _guard = KNOB.lock().unwrap();
    let saved = configured_threads();
    // 4 layers so the draft depths cover shallow {1}, mid {2}, and the
    // degenerate final-exit draft {n_layers - 1}
    let mut rng = TensorRng::seed_from(31);
    let m = EdgeModel::new(ModelConfig::tiny().with_layers(4), &mut rng).unwrap();
    let seq_len = m.config().seq_len;
    let vocab = m.config().vocab_size;
    // prompts shorter and longer than seq_len; n_new past the window so
    // the cache-rebuild path is exercised too
    let long_prompt: Vec<usize> = (0..seq_len + 3).map(|i| (i * 3 + 1) % vocab).collect();
    let prompts: Vec<Vec<usize>> = vec![vec![3, 7, 1], long_prompt];
    for prompt in &prompts {
        let n_new = seq_len + 2;
        let reference = windowed_greedy(&m, prompt, n_new);
        for threads in [1usize, 2, 4] {
            set_configured_threads(threads);
            for draft_depth in [1usize, 2, 3] {
                for k in [1usize, 2, 4, 8] {
                    let spec = speculative_generate(&m, prompt, n_new, draft_depth, k).unwrap();
                    assert_eq!(
                        spec,
                        reference,
                        "prompt len {}, threads {threads}, depth {draft_depth}, k {k}: \
                         speculative decode must match greedy bit-for-bit",
                        prompt.len()
                    );
                }
            }
        }
    }
    set_configured_threads(saved);
}

fn quantized_model(seed: u64, bits: BitWidth) -> EdgeModel {
    let mut rng = TensorRng::seed_from(seed);
    let mut model = EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap();
    let scheme = QuantScheme::symmetric(bits);
    for l in 0..model.n_layers() {
        let b = model.block_mut(l);
        b.attn_mut().qkv_mut().set_quant(Some(scheme));
        b.attn_mut().proj_mut().set_quant(Some(scheme));
        b.mlp_mut().fc1_mut().set_quant(Some(scheme));
        b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        let mask = magnitude_prune(b.mlp_mut().fc1_mut().weight(), 0.25).unwrap();
        b.mlp_mut().fc1_mut().set_mask(Some(mask)).unwrap();
    }
    model
}

#[test]
fn speculative_decode_matches_greedy_on_packed_and_dense_quantized_models() {
    // the draft and verify forwards must agree with plain greedy whether
    // the quantized weights run packed (integer codes) or dense
    // (fake-quant floats) — and the two weight forms agree with each other
    run_cases("spec packed equivalence", 6, |g| {
        let bits = *g.choose(&[BitWidth::W2, BitWidth::W4]);
        let seed = g.u64();
        let packed = quantized_model(seed, bits);
        packed.pack_frozen_weights().unwrap();
        let dense = quantized_model(seed, bits);
        let n_layers = packed.n_layers();
        let prompt = vec![1, 2, 3];
        let n_new = packed.config().seq_len; // crosses a window rebuild
        let reference = windowed_greedy(&dense, &prompt, n_new);
        assert_eq!(
            windowed_greedy(&packed, &prompt, n_new),
            reference,
            "greedy oracle diverged between packed and dense ({bits:?})"
        );
        for draft_depth in 0..n_layers {
            for k in [1usize, 4] {
                let a = speculative_generate(&packed, &prompt, n_new, draft_depth, k).unwrap();
                let b = speculative_generate(&dense, &prompt, n_new, draft_depth, k).unwrap();
                assert_eq!(
                    a, reference,
                    "packed spec ({bits:?}, depth {draft_depth}, k {k})"
                );
                assert_eq!(
                    b, reference,
                    "dense spec ({bits:?}, depth {draft_depth}, k {k})"
                );
            }
        }
    });
}

/// A model whose projections carry both weight and activation
/// quantization — eligible for the packed integer-GEMM decode route.
fn integer_model(seed: u64, bits: BitWidth) -> EdgeModel {
    let mut model = quantized_model(seed, bits);
    let act = QuantScheme::asymmetric(BitWidth::W8);
    for l in 0..model.n_layers() {
        let b = model.block_mut(l);
        b.attn_mut().qkv_mut().set_activation_quant(Some(act));
        b.attn_mut().proj_mut().set_activation_quant(Some(act));
        b.mlp_mut().fc1_mut().set_activation_quant(Some(act));
        b.mlp_mut().fc2_mut().set_activation_quant(Some(act));
    }
    model
}

#[test]
fn integer_decode_route_is_bit_identical_packed_vs_lazy_including_spec() {
    // With weight + activation quantization installed the decode matmuls
    // run the packed integer GEMM. Pre-packed (pack_frozen_weights) and
    // lazily-built operands feed the identical kernel, so full decode —
    // including the speculative draft/verify/rollback path and its chunked
    // verify forwards — must agree bit-for-bit between the two.
    run_cases("integer decode equivalence", 4, |g| {
        let bits = *g.choose(&[BitWidth::W2, BitWidth::W4]);
        let seed = g.u64();
        let packed = integer_model(seed, bits);
        packed.pack_frozen_weights().unwrap();
        let lazy = integer_model(seed, bits);
        let n_layers = packed.n_layers();
        let prompt = vec![1, 2, 3];
        let n_new = packed.config().seq_len; // crosses a window rebuild
        let reference = windowed_greedy(&lazy, &prompt, n_new);
        assert_eq!(
            windowed_greedy(&packed, &prompt, n_new),
            reference,
            "greedy oracle diverged between packed and lazy ({bits:?})"
        );
        for draft_depth in [1usize, n_layers - 1] {
            for k in [1usize, 4] {
                let a = speculative_generate(&packed, &prompt, n_new, draft_depth, k).unwrap();
                let b = speculative_generate(&lazy, &prompt, n_new, draft_depth, k).unwrap();
                assert_eq!(a, reference, "packed spec ({bits:?}, d{draft_depth}, k{k})");
                assert_eq!(b, reference, "lazy spec ({bits:?}, d{draft_depth}, k{k})");
            }
        }
    });
}

#[test]
fn learned_combiner_votes_like_a_weighted_average() {
    // spot-check the remaining combiner against a hand computation so
    // every VotingCombiner variant is exercised by this suite
    let mut rng = TensorRng::seed_from(23);
    let a = Tensor::randn(1, 4, 1.0, &mut rng);
    let b = Tensor::randn(1, 4, 1.0, &mut rng);
    let got = combine(
        &[a.clone(), b.clone()],
        &VotingCombiner::Learned(vec![1.0, 3.0]),
    )
    .unwrap();
    let sa = edge_llm_tensor::softmax_rows(&a);
    let sb = edge_llm_tensor::softmax_rows(&b);
    for v in 0..4 {
        let want = 0.25 * sa.get(0, v) + 0.75 * sb.get(0, v);
        assert!((got.get(0, v) - want).abs() < 1e-5, "vocab {v}");
    }
}
