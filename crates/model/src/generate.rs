//! Autoregressive generation with optional exit voting.
//!
//! On-device adaptation exists to serve on-device *inference*; this module
//! closes the loop by sampling continuations from an adapted model, either
//! from the final exit or through a [`VotingPolicy`] — the deployment mode
//! of an Edge-LLM model.

use crate::error::ModelError;
use crate::model::EdgeModel;
use crate::voting::VotingPolicy;
use edge_llm_tensor::{softmax_rows, Tensor, TensorRng};

/// Decoding strategy for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decoding {
    /// Always pick the most probable token.
    Greedy,
    /// Sample from the full distribution at the given temperature.
    Sample {
        /// Softmax temperature (> 0).
        temperature: f32,
    },
    /// Sample from the `k` most probable tokens at the given temperature.
    TopK {
        /// Candidate pool size (>= 1).
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
    },
    /// Greedy decoding accelerated by self-speculation: draft `k` tokens
    /// from the exit head at `draft_depth`, verify them in one full-depth
    /// pass, accept the longest agreeing prefix. Token-identical to
    /// [`Decoding::Greedy`] on the KV-cached decode path — the draft only
    /// changes how many tokens each pass emits, never which.
    SelfSpeculative {
        /// Exit layer the draft reads (`< n_layers`).
        draft_depth: usize,
        /// Draft tokens per verify pass (>= 1).
        k: usize,
    },
}

/// Generates `n_new` tokens after `prompt`, feeding the model a fixed-size
/// window of the most recent `seq_len` tokens each step.
///
/// The model's per-position predictions come from `voting` (use
/// [`VotingPolicy::final_only`] for vanilla decoding).
///
/// [`Decoding::SelfSpeculative`] dispatches to the KV-cached
/// [`crate::speculative_generate`] path (which requires a final-exit
/// voting policy); its windowing semantics are documented there.
///
/// # Errors
///
/// Returns [`ModelError::BadBatch`] for an empty prompt or a prompt token
/// outside the vocabulary, and propagates model errors.
pub fn generate(
    model: &EdgeModel,
    voting: &VotingPolicy,
    prompt: &[usize],
    n_new: usize,
    decoding: Decoding,
    rng: &mut TensorRng,
) -> Result<Vec<usize>, ModelError> {
    let seq_len = model.config().seq_len;
    let vocab = model.config().vocab_size;
    if prompt.is_empty() {
        return Err(ModelError::BadBatch {
            expected: 1,
            actual: 0,
        });
    }
    if let Some(&bad) = prompt.iter().find(|&&t| t >= vocab) {
        return Err(ModelError::BadConfig {
            reason: format!("prompt token {bad} outside vocabulary {vocab}"),
        });
    }
    validate_decoding(decoding)?;
    if let Decoding::SelfSpeculative { draft_depth, k } = decoding {
        // Self-speculation verifies the *final exit's* greedy token; a
        // multi-exit voting blend has no full-depth verifier to agree
        // with, so only the vanilla final-exit policy is accepted. (With
        // a single exit every combiner reduces to softmax of that exit,
        // so the combiner choice is immaterial.)
        if voting.exits != [model.n_layers() - 1] {
            return Err(ModelError::BadConfig {
                reason: "self-speculative decoding verifies the final exit only; \
                         use a final-exit voting policy"
                    .into(),
            });
        }
        return crate::spec::speculative_generate(model, prompt, n_new, draft_depth, k);
    }
    let mut tokens: Vec<usize> = prompt.to_vec();
    for _ in 0..n_new {
        // window of the last seq_len tokens, left-padded by repetition of
        // the first token when the context is still short
        let mut window = vec![tokens[0]; seq_len];
        let take = tokens.len().min(seq_len);
        window[seq_len - take..].copy_from_slice(&tokens[tokens.len() - take..]);
        let probs = voting.predict(model, &window, 1)?;
        let last = probs.row(seq_len - 1);
        let next = sample_token(last, decoding, rng);
        tokens.push(next);
    }
    Ok(tokens)
}

/// Validates a [`Decoding`] configuration without running a model — the
/// same check [`generate`] applies, exposed so serving frontends can
/// reject a bad request at submission instead of mid-decode.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for a non-positive temperature or a
/// zero top-k pool.
pub fn validate_decoding(decoding: Decoding) -> Result<(), ModelError> {
    let bad = |reason: &str| {
        Err(ModelError::BadConfig {
            reason: reason.to_string(),
        })
    };
    match decoding {
        Decoding::Greedy => Ok(()),
        Decoding::Sample { temperature } if temperature <= 0.0 => {
            bad("temperature must be positive")
        }
        Decoding::TopK { k, temperature } if k == 0 || temperature <= 0.0 => {
            bad("top-k needs k >= 1 and positive temperature")
        }
        Decoding::SelfSpeculative { k: 0, .. } => {
            bad("self-speculative decoding needs k >= 1 draft tokens")
        }
        _ => Ok(()),
    }
}

/// Draws the next token from a probability row under `decoding` — the
/// single sampling primitive shared by [`generate`] and the serving
/// engine, so every decode path maps identical probabilities and rng
/// state to an identical token.
///
/// Ties resolve to the lowest index in every mode (greedy picks the first
/// maximum; top-k keeps candidates in ascending index order), so
/// `TopK { k: 1, .. }` agrees with `Greedy` and `TopK` with `k >= vocab`
/// agrees with `Sample` draw-for-draw.
pub fn sample_token(probs: &[f32], decoding: Decoding, rng: &mut TensorRng) -> usize {
    match decoding {
        // SelfSpeculative is greedy by construction: given a probability
        // row, it picks exactly what greedy picks (the speculative
        // machinery only changes how many rows one pass produces).
        Decoding::Greedy | Decoding::SelfSpeculative { .. } => argmax(probs),
        Decoding::Sample { temperature } => {
            let reweighted = temper(probs, temperature);
            sample_from(&reweighted, rng)
        }
        Decoding::TopK { k, temperature } => {
            let mut order: Vec<usize> = (0..probs.len()).collect();
            order.sort_by(|&a, &b| {
                probs[b]
                    .partial_cmp(&probs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // ascending index order makes the CDF walk below traverse the
            // survivors exactly as full sampling would, so k >= vocab
            // degenerates to Sample on the same rng draw
            let mut keep: Vec<usize> = order[..k.min(order.len())].to_vec();
            keep.sort_unstable();
            // temper over the kept candidates only; pruned tokens must stay
            // at exactly zero probability
            let kept_probs: Vec<f32> = keep.iter().map(|&i| probs[i]).collect();
            let reweighted = temper(&kept_probs, temperature);
            keep[sample_from(&reweighted, rng)]
        }
    }
}

pub(crate) fn temper(probs: &[f32], temperature: f32) -> Vec<f32> {
    // re-softmax of (log p - max log p) / T. Subtracting the max *before*
    // dividing keeps every logit finite at extreme temperatures (softmax
    // itself is shift-invariant): without it, ln(p)/T overflows to -inf
    // for every candidate once T is small enough, and exp(-inf - -inf)
    // turns the whole distribution into NaN.
    let logs: Vec<f32> = probs.iter().map(|&p| p.max(1e-12).ln()).collect();
    let max = logs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let logits: Vec<f32> = logs.iter().map(|&l| (l - max) / temperature).collect();
    let t = Tensor::from_vec(1, logits.len(), logits).expect("shape by construction");
    softmax_rows(&t).into_vec()
}

fn sample_from(probs: &[f32], rng: &mut TensorRng) -> usize {
    let total: f32 = probs.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut u = rng.uniform(0.0, total);
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

pub(crate) fn argmax(xs: &[f32]) -> usize {
    // first maximum on ties, matching the stable descending sort in
    // sample_token's top-k path so greedy and TopK{k: 1} agree exactly
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::voting::VotingCombiner;

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(1);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn generates_requested_length() {
        let m = model();
        let mut rng = TensorRng::seed_from(2);
        let policy = VotingPolicy::final_only(m.n_layers());
        let out = generate(&m, &policy, &[1, 2, 3], 5, Decoding::Greedy, &mut rng).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < m.config().vocab_size));
    }

    #[test]
    fn greedy_is_deterministic() {
        let m = model();
        let policy = VotingPolicy::final_only(m.n_layers());
        let mut r1 = TensorRng::seed_from(3);
        let mut r2 = TensorRng::seed_from(99);
        let a = generate(&m, &policy, &[5], 6, Decoding::Greedy, &mut r1).unwrap();
        let b = generate(&m, &policy, &[5], 6, Decoding::Greedy, &mut r2).unwrap();
        assert_eq!(a, b, "greedy decoding must not depend on the rng");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = model();
        let policy = VotingPolicy::final_only(m.n_layers());
        let mut r1 = TensorRng::seed_from(4);
        let mut r2 = TensorRng::seed_from(4);
        let d = Decoding::Sample { temperature: 1.0 };
        let a = generate(&m, &policy, &[5], 6, d, &mut r1).unwrap();
        let b = generate(&m, &policy, &[5], 6, d, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_restricts_candidates() {
        let m = model();
        let policy = VotingPolicy::final_only(m.n_layers());
        let mut rng = TensorRng::seed_from(5);
        // k = 1 at any temperature must agree with greedy
        let topk = generate(
            &m,
            &policy,
            &[7, 8],
            4,
            Decoding::TopK {
                k: 1,
                temperature: 5.0,
            },
            &mut rng,
        )
        .unwrap();
        let mut rng2 = TensorRng::seed_from(6);
        let greedy = generate(&m, &policy, &[7, 8], 4, Decoding::Greedy, &mut rng2).unwrap();
        assert_eq!(topk, greedy);
    }

    #[test]
    fn voting_generation_runs() {
        let m = model();
        let mut rng = TensorRng::seed_from(7);
        let policy = VotingPolicy::all_exits(m.n_layers(), VotingCombiner::Average);
        let out = generate(&m, &policy, &[1], 4, Decoding::Greedy, &mut rng).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let m = model();
        let mut rng = TensorRng::seed_from(8);
        let policy = VotingPolicy::final_only(m.n_layers());
        assert!(generate(&m, &policy, &[], 3, Decoding::Greedy, &mut rng).is_err());
        assert!(generate(&m, &policy, &[9999], 3, Decoding::Greedy, &mut rng).is_err());
        assert!(generate(
            &m,
            &policy,
            &[1],
            3,
            Decoding::Sample { temperature: 0.0 },
            &mut rng
        )
        .is_err());
        assert!(generate(
            &m,
            &policy,
            &[1],
            3,
            Decoding::TopK {
                k: 0,
                temperature: 1.0
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn long_prompts_use_recent_window() {
        let m = model();
        let mut rng = TensorRng::seed_from(9);
        let policy = VotingPolicy::final_only(m.n_layers());
        let prompt: Vec<usize> = (0..20).map(|i| i % 16).collect();
        let out = generate(&m, &policy, &prompt, 2, Decoding::Greedy, &mut rng).unwrap();
        assert_eq!(out.len(), 22);
    }
}
