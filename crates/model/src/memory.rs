//! Analytic memory accounting for adaptation.
//!
//! The paper's memory claim is that adaptive layer tuning cuts peak tuning
//! memory because activations and optimizer state only exist for the layers
//! in the current window. This module computes that breakdown analytically
//! from the configuration, and the F2 experiment cross-checks it against the
//! measured cache sizes reported by the training loop.

use crate::config::ModelConfig;

/// Byte-level breakdown of adaptation memory for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Model weights (all layers, always resident).
    pub weight_bytes: usize,
    /// Activation caches for the backprop window.
    pub activation_bytes: usize,
    /// Gradient buffers for trainable parameters (window only).
    pub gradient_bytes: usize,
    /// Optimizer state (Adam: two moments per trainable parameter).
    pub optimizer_bytes: usize,
}

impl MemoryBreakdown {
    /// Total peak bytes.
    pub fn total(&self) -> usize {
        self.weight_bytes + self.activation_bytes + self.gradient_bytes + self.optimizer_bytes
    }
}

/// Analytic memory model parameterized by the adaptation setup.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Batch size used for tuning.
    pub batch: usize,
    /// Optimizer moments per parameter (0 = SGD, 1 = momentum, 2 = Adam).
    pub optimizer_moments: usize,
    /// Average weight storage bits per parameter after compression
    /// (32 for uncompressed f32).
    pub weight_bits: f32,
}

impl MemoryModel {
    /// A full-precision Adam setup at the given batch size.
    pub fn adam_f32(batch: usize) -> Self {
        MemoryModel {
            batch,
            optimizer_moments: 2,
            weight_bits: 32.0,
        }
    }

    /// Per-block trainable parameter count.
    fn block_params(config: &ModelConfig) -> usize {
        let c = config.d_model;
        c * 3 * c + 3 * c + c * c + c + c * config.d_ff + config.d_ff + config.d_ff * c + c + 4 * c
    }

    /// Per-block activation cache bytes for one forward (f32):
    /// LayerNorm x̂ (x2), attention q/k/v/att per head, MLP pre-activation,
    /// and the cached linear inputs.
    fn block_activation_bytes(config: &ModelConfig, batch: usize) -> usize {
        let tokens = batch * config.seq_len;
        let c = config.d_model;
        let t = config.seq_len;
        let heads = config.n_heads;
        let hs = config.head_dim();
        let ln = 2 * tokens * c; // two x-hat caches
        let attn = batch * heads * (t * t + 3 * t * hs) // att + q,k,v
            + tokens * c            // qkv linear input cache
            + tokens * c; // proj input cache
        let mlp = tokens * c        // fc1 input
            + tokens * config.d_ff  // pre-activation
            + tokens * config.d_ff; // fc2 input
        4 * (ln + attn + mlp)
    }

    /// Estimates peak memory when tuning `window_depth` layers of a model
    /// with backprop truncated to that window.
    pub fn estimate(&self, config: &ModelConfig, window_depth: usize) -> MemoryBreakdown {
        let depth = window_depth.min(config.n_layers).max(1);
        let total_params = config.param_count();
        let weight_bytes = (total_params as f64 * self.weight_bits as f64 / 8.0) as usize;
        let activation_bytes = depth * Self::block_activation_bytes(config, self.batch)
            + 4 * self.batch * config.seq_len * (config.d_model + config.vocab_size);
        let window_params = depth * Self::block_params(config)
            + 2 * config.d_model // exit norm
            + config.d_model * config.vocab_size; // (shared) head
        let gradient_bytes = 4 * window_params;
        let optimizer_bytes = 4 * self.optimizer_moments * window_params;
        MemoryBreakdown {
            weight_bytes,
            activation_bytes,
            gradient_bytes,
            optimizer_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallower_windows_use_less_memory() {
        let cfg = ModelConfig::edge_base();
        let model = MemoryModel::adam_f32(4);
        let full = model.estimate(&cfg, cfg.n_layers);
        let one = model.estimate(&cfg, 1);
        assert!(one.total() < full.total());
        assert!(one.activation_bytes * 4 < full.activation_bytes);
        // weights are resident either way
        assert_eq!(one.weight_bytes, full.weight_bytes);
    }

    #[test]
    fn compression_shrinks_weight_memory() {
        let cfg = ModelConfig::edge_base();
        let fp = MemoryModel::adam_f32(1).estimate(&cfg, 2);
        let q4 = MemoryModel {
            batch: 1,
            optimizer_moments: 2,
            weight_bits: 4.0,
        }
        .estimate(&cfg, 2);
        assert!(q4.weight_bytes * 7 < fp.weight_bytes);
    }

    #[test]
    fn optimizer_moments_scale_state() {
        let cfg = ModelConfig::tiny();
        let sgd = MemoryModel {
            batch: 1,
            optimizer_moments: 0,
            weight_bits: 32.0,
        }
        .estimate(&cfg, 1);
        let adam = MemoryModel {
            batch: 1,
            optimizer_moments: 2,
            weight_bits: 32.0,
        }
        .estimate(&cfg, 1);
        assert_eq!(sgd.optimizer_bytes, 0);
        assert_eq!(adam.optimizer_bytes, 2 * adam.gradient_bytes);
    }

    #[test]
    fn window_depth_is_clamped() {
        let cfg = ModelConfig::tiny();
        let m = MemoryModel::adam_f32(1);
        assert_eq!(m.estimate(&cfg, 100), m.estimate(&cfg, cfg.n_layers));
        assert_eq!(m.estimate(&cfg, 0), m.estimate(&cfg, 1));
    }
}
