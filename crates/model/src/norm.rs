use crate::error::ModelError;
use edge_llm_tensor::{layernorm_backward, layernorm_forward, LayerNormCache, Tensor};

const LN_EPS: f32 = 1e-5;

/// Layer normalization with learnable scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    dgamma: Vec<f32>,
    dbeta: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm over vectors of dimension `dim`
    /// (`gamma = 1`, `beta = 0`).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            dgamma: vec![0.0; dim],
            dbeta: vec![0.0; dim],
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        2 * self.gamma.len()
    }

    /// Forward pass returning the output and the backward cache.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernel.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerNormCache), ModelError> {
        Ok(layernorm_forward(x, &self.gamma, &self.beta, LN_EPS)?)
    }

    /// Forward pass that discards the cache.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernel.
    pub fn forward_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        Ok(layernorm_forward(x, &self.gamma, &self.beta, LN_EPS)?.0)
    }

    /// Backward pass: accumulates parameter gradients, returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernel.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        let (dx, dgamma, dbeta) = layernorm_backward(dy, cache, &self.gamma)?;
        for (acc, g) in self.dgamma.iter_mut().zip(dgamma.iter()) {
            *acc += g;
        }
        for (acc, g) in self.dbeta.iter_mut().zip(dbeta.iter()) {
            *acc += g;
        }
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dgamma.iter_mut().for_each(|g| *g = 0.0);
        self.dbeta.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(param, grad)` pairs: gamma then beta.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gamma, &mut self.dgamma);
        f(&mut self.beta, &mut self.dbeta);
    }

    /// Read-only mirror of [`LayerNorm::visit_params`]: gamma then beta.
    pub fn visit_params_ro(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.gamma);
        f(&self.beta);
    }

    /// Number of slice pairs [`LayerNorm::visit_params`] yields.
    pub fn param_slice_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_tensor::TensorRng;

    #[test]
    fn fresh_layernorm_is_identity_statistics() {
        let mut rng = TensorRng::seed_from(1);
        let ln = LayerNorm::new(16);
        let x = Tensor::randn(3, 16, 2.0, &mut rng);
        let (y, _) = ln.forward(&x).unwrap();
        for r in 0..3 {
            let m: f32 = y.row(r).iter().sum::<f32>() / 16.0;
            assert!(m.abs() < 1e-4);
        }
    }

    #[test]
    fn backward_accumulates() {
        let mut rng = TensorRng::seed_from(2);
        let mut ln = LayerNorm::new(8);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let (_, cache) = ln.forward(&x).unwrap();
        let dy = Tensor::ones(2, 8);
        ln.backward(&cache, &dy).unwrap();
        let g1 = ln.dbeta.clone();
        ln.backward(&cache, &dy).unwrap();
        for (a, b) in ln.dbeta.iter().zip(g1.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
        ln.zero_grad();
        assert!(ln.dbeta.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn visit_order_is_gamma_then_beta() {
        let mut ln = LayerNorm::new(4);
        let mut seen = Vec::new();
        ln.visit_params(&mut |p, _| seen.push(p[0]));
        assert_eq!(seen, vec![1.0, 0.0]);
    }
}
