//! Beam-search decoding over KV-cached inference sessions.
//!
//! Greedy decoding commits to the locally best token; beam search keeps the
//! `width` best-scoring prefixes alive. Each beam owns its own
//! [`InferenceSession`], so the per-step cost is `width` incremental token
//! pushes rather than `width` full forward passes.

use crate::error::ModelError;
use crate::infer::InferenceSession;
use crate::model::EdgeModel;
use edge_llm_tensor::softmax_rows;

/// A decoded hypothesis: the full token sequence (prompt included) and its
/// accumulated log-probability over the generated suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamHypothesis {
    /// Prompt plus generated tokens.
    pub tokens: Vec<usize>,
    /// Sum of `ln p(token)` over the generated tokens.
    pub log_prob: f64,
}

/// Decodes `n_new` tokens after `prompt` with beam search of the given
/// `width`, returning hypotheses sorted best-first.
///
/// Uses the model's final exit (beam search needs one consistent scoring
/// head; combine with voting by re-ranking the returned hypotheses).
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for an empty prompt or zero width, and
/// [`ModelError::LayerOutOfRange`] when `prompt.len() + n_new` exceeds the
/// model's positional capacity (`seq_len`).
pub fn beam_search(
    model: &EdgeModel,
    prompt: &[usize],
    n_new: usize,
    width: usize,
) -> Result<Vec<BeamHypothesis>, ModelError> {
    if prompt.is_empty() || width == 0 {
        return Err(ModelError::BadConfig {
            reason: "beam search needs a non-empty prompt and width >= 1".into(),
        });
    }
    let capacity = model.config().seq_len;
    if prompt.len() + n_new > capacity {
        return Err(ModelError::LayerOutOfRange {
            layer: prompt.len() + n_new,
            depth: capacity,
        });
    }
    // seed beam: feed the prompt once
    let mut session = InferenceSession::new(model);
    let mut last_logits = None;
    for &tok in prompt {
        last_logits = Some(session.push_token(tok)?);
    }
    let mut beams: Vec<(
        InferenceSession,
        Vec<usize>,
        f64,
        Option<edge_llm_tensor::Tensor>,
    )> = vec![(session, prompt.to_vec(), 0.0, last_logits)];
    for _ in 0..n_new {
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new(); // (beam idx, token, new score)
        for (bi, (_, _, score, logits)) in beams.iter().enumerate() {
            let logits = logits.as_ref().expect("seeded above");
            let probs = softmax_rows(logits);
            let row = probs.row(0);
            // consider the top `width` extensions of this beam
            let mut order: Vec<usize> = (0..row.len()).collect();
            order.sort_by(|&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &tok in order.iter().take(width) {
                candidates.push((bi, tok, score + (row[tok].max(1e-12) as f64).ln()));
            }
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(width);
        let mut next = Vec::with_capacity(candidates.len());
        for (bi, tok, score) in candidates {
            let (session, tokens, _, _) = &beams[bi];
            let mut session = session.clone();
            let logits = session.push_token(tok)?;
            let mut tokens = tokens.clone();
            tokens.push(tok);
            next.push((session, tokens, score, Some(logits)));
        }
        beams = next;
    }
    let mut out: Vec<BeamHypothesis> = beams
        .into_iter()
        .map(|(_, tokens, log_prob, _)| BeamHypothesis { tokens, log_prob })
        .collect();
    out.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn model() -> EdgeModel {
        let mut rng = TensorRng::seed_from(21);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    /// Session-based greedy reference (same context handling as the beams).
    fn session_greedy(m: &EdgeModel, prompt: &[usize], n_new: usize) -> Vec<usize> {
        let mut s = InferenceSession::new(m);
        let mut logits = None;
        for &t in prompt {
            logits = Some(s.push_token(t).unwrap());
        }
        let mut tokens = prompt.to_vec();
        for _ in 0..n_new {
            let l = logits.take().unwrap();
            let row = l.row(0);
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            tokens.push(best);
            logits = Some(s.push_token(best).unwrap());
        }
        tokens
    }

    #[test]
    fn width_one_equals_greedy() {
        let m = model();
        let prompt = [3usize, 5];
        let beams = beam_search(&m, &prompt, 4, 1).unwrap();
        assert_eq!(beams.len(), 1);
        assert_eq!(beams[0].tokens, session_greedy(&m, &prompt, 4));
    }

    #[test]
    fn hypotheses_sorted_and_scored() {
        let m = model();
        let beams = beam_search(&m, &[1], 3, 4).unwrap();
        assert_eq!(beams.len(), 4);
        for w in beams.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob);
        }
        for b in &beams {
            assert_eq!(b.tokens.len(), 4);
            assert!(b.log_prob <= 0.0);
            assert!(b.tokens.iter().all(|&t| t < m.config().vocab_size));
        }
        // distinct hypotheses
        assert_ne!(beams[0].tokens, beams[1].tokens);
    }

    #[test]
    fn wider_beam_never_scores_worse_here() {
        // not a theorem in general, but on 3 short horizons the best-of-4
        // should match or beat greedy's score
        let m = model();
        let g = beam_search(&m, &[7], 3, 1).unwrap();
        let b = beam_search(&m, &[7], 3, 4).unwrap();
        assert!(b[0].log_prob >= g[0].log_prob - 1e-9);
    }

    #[test]
    fn capacity_and_argument_errors() {
        let m = model();
        let seq = m.config().seq_len;
        assert!(beam_search(&m, &[], 2, 2).is_err());
        assert!(beam_search(&m, &[1], 2, 0).is_err());
        assert!(beam_search(&m, &[1], seq, 2).is_err());
        assert!(beam_search(&m, &vec![1; seq - 2], 2, 2).is_ok());
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = beam_search(&m, &[2, 4], 4, 3).unwrap();
        let b = beam_search(&m, &[2, 4], 4, 3).unwrap();
        assert_eq!(a, b);
    }
}
