use crate::error::ModelError;

/// Hyper-parameters of the decoder-only transformer.
///
/// Use the `with_*` builder-style methods to adjust a preset:
///
/// ```
/// use edge_llm_model::ModelConfig;
///
/// # fn main() -> Result<(), edge_llm_model::ModelError> {
/// let cfg = ModelConfig::tiny().with_layers(4).with_d_model(32, 4);
/// cfg.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub d_model: usize,
    /// Number of attention heads; must divide `d_model`.
    pub n_heads: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Maximum (and training) sequence length.
    pub seq_len: usize,
    /// MLP hidden dimension (usually `4 * d_model`).
    pub d_ff: usize,
    /// Whether every early-exit head shares the final unembedding weight.
    /// Sharing keeps the per-exit parameter overhead to one LayerNorm.
    pub tie_exit_heads: bool,
}

impl ModelConfig {
    /// A minimal configuration for unit tests and doctests
    /// (2 layers, d_model 16, 2 heads, vocab 32, seq 8).
    pub fn tiny() -> Self {
        ModelConfig {
            vocab_size: 32,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            seq_len: 8,
            d_ff: 32,
            tie_exit_heads: true,
        }
    }

    /// The "edge" configuration the experiment tables use by default
    /// (8 layers, d_model 128, 4 heads, byte-level vocab, seq 64).
    pub fn edge_base() -> Self {
        ModelConfig {
            vocab_size: 96,
            d_model: 128,
            n_heads: 4,
            n_layers: 8,
            seq_len: 64,
            d_ff: 512,
            tie_exit_heads: true,
        }
    }

    /// Sets the depth.
    pub fn with_layers(mut self, n_layers: usize) -> Self {
        self.n_layers = n_layers;
        self
    }

    /// Sets width and head count together (they must stay compatible).
    pub fn with_d_model(mut self, d_model: usize, n_heads: usize) -> Self {
        self.d_model = d_model;
        self.n_heads = n_heads;
        self.d_ff = 4 * d_model;
        self
    }

    /// Sets the sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Sets the vocabulary size.
    pub fn with_vocab(mut self, vocab_size: usize) -> Self {
        self.vocab_size = vocab_size;
        self
    }

    /// Sets whether exit heads share the unembedding weight.
    pub fn with_tied_exits(mut self, tie: bool) -> Self {
        self.tie_exit_heads = tie;
        self
    }

    /// Head dimension, `d_model / n_heads`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when any dimension is zero or
    /// `n_heads` does not divide `d_model`.
    pub fn validate(&self) -> Result<(), ModelError> {
        let bad = |reason: &str| {
            Err(ModelError::BadConfig {
                reason: reason.to_string(),
            })
        };
        if self.vocab_size == 0
            || self.d_model == 0
            || self.n_layers == 0
            || self.seq_len == 0
            || self.d_ff == 0
        {
            return bad("all dimensions must be positive");
        }
        if self.n_heads == 0 || !self.d_model.is_multiple_of(self.n_heads) {
            return bad("n_heads must be positive and divide d_model");
        }
        Ok(())
    }

    /// Total parameter count (embeddings + blocks + final norm + head),
    /// excluding untied exit-head weights.
    pub fn param_count(&self) -> usize {
        let c = self.d_model;
        let emb = self.vocab_size * c + self.seq_len * c;
        let per_block = {
            let attn = c * 3 * c + 3 * c + c * c + c; // qkv + proj
            let mlp = c * self.d_ff + self.d_ff + self.d_ff * c + c;
            let norms = 4 * c; // two LayerNorms
            attn + mlp + norms
        };
        let head = c * self.vocab_size;
        let final_norm = 2 * c;
        emb + self.n_layers * per_block + final_norm + head
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::edge_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ModelConfig::tiny().validate().unwrap();
        ModelConfig::edge_base().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ModelConfig::tiny().with_d_model(10, 3).validate().is_err());
        assert!(ModelConfig::tiny().with_layers(0).validate().is_err());
        assert!(ModelConfig::tiny().with_vocab(0).validate().is_err());
        assert!(ModelConfig::tiny().with_seq_len(0).validate().is_err());
    }

    #[test]
    fn head_dim_divides() {
        let cfg = ModelConfig::edge_base();
        assert_eq!(cfg.head_dim() * cfg.n_heads, cfg.d_model);
    }

    #[test]
    fn param_count_grows_with_depth() {
        let small = ModelConfig::tiny().param_count();
        let deep = ModelConfig::tiny().with_layers(8).param_count();
        assert!(deep > small);
    }
}
