//! Adaptive layer tuning: Edge-LLM's memory-saving training scheme.
//!
//! Instead of backpropagating through the full depth every iteration, the
//! tuner picks a **window** of consecutive layers per step, runs the forward
//! pass only up to the window's exit head, and backpropagates only inside
//! the window. Over many iterations the windows sweep the whole model, so
//! every layer (and every exit head) still gets trained — but peak
//! activation memory scales with the window size, not the depth.

use crate::error::ModelError;
use crate::model::EdgeModel;
use crate::optim::Optimizer;
use edge_llm_telemetry as telemetry;
use edge_llm_tensor::{configured_threads, cross_entropy_backward, cross_entropy_forward};
use std::time::Instant;

/// A half-open range of layers `[start, end)` trained in one iteration.
/// The exit head used is the one at layer `end - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerWindow {
    /// First trained layer.
    pub start: usize,
    /// One past the last trained layer (also the exit position).
    pub end: usize,
}

impl LayerWindow {
    /// Whether layer `l` lies inside the window.
    pub fn contains(&self, l: usize) -> bool {
        (self.start..self.end).contains(&l)
    }

    /// Number of layers in the window (the backprop depth).
    pub fn depth(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// The exit layer index used with this window.
    pub fn exit_layer(&self) -> usize {
        self.end.saturating_sub(1)
    }
}

/// How the tuner chooses the window for each iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowSchedule {
    /// The vanilla-tuning baseline: every layer, every iteration.
    FullDepth,
    /// Slide a window of `depth` layers across the model, advancing by
    /// `depth` each iteration and wrapping around (the paper's default).
    RoundRobin {
        /// Backprop depth per iteration.
        depth: usize,
    },
    /// Visit windows in a caller-supplied order (e.g. sensitivity-sorted),
    /// cycling through the list.
    Ordered(Vec<LayerWindow>),
}

impl WindowSchedule {
    /// The window for iteration `iter` on a model of `n_layers`.
    ///
    /// # Panics
    ///
    /// Panics if an [`WindowSchedule::Ordered`] schedule is empty or a
    /// `RoundRobin` depth is zero.
    pub fn window_for(&self, iter: usize, n_layers: usize) -> LayerWindow {
        match self {
            WindowSchedule::FullDepth => LayerWindow {
                start: 0,
                end: n_layers,
            },
            WindowSchedule::RoundRobin { depth } => {
                assert!(*depth > 0, "round-robin depth must be positive");
                let depth = (*depth).min(n_layers);
                let n_positions = n_layers.div_ceil(depth);
                let pos = iter % n_positions;
                let start = (pos * depth).min(n_layers - depth);
                LayerWindow {
                    start,
                    end: start + depth,
                }
            }
            WindowSchedule::Ordered(windows) => {
                assert!(!windows.is_empty(), "ordered schedule must be non-empty");
                windows[iter % windows.len()]
            }
        }
    }
}

/// Per-phase breakdown of one adaptation step. Wall-clock fields come
/// from the OS monotonic clock and are **observational only** — they vary
/// run to run while every computed value stays bit-identical. The
/// re-quantization/invalidation tallies are exact and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepPhases {
    /// Forward pass to the window's exit plus the loss forward.
    pub forward_ns: u64,
    /// Loss backward plus the truncated backward pass.
    pub backward_ns: u64,
    /// Gradient-norm sweep, optimizer update, and mask re-enforcement.
    pub optimizer_ns: u64,
    /// The whole step (phases plus scheduling overhead); phase sums are
    /// held to within 5% of this by `tests/telemetry.rs`.
    pub total_ns: u64,
    /// Layers whose projections re-quantized during the step — 1 per step
    /// for a depth-1 window once caches are warm (the PR 4 invariant),
    /// `n_layers` when the cache is broken or disabled.
    pub requant_layers: usize,
    /// Weight-cache evictions during the step, over every projection.
    pub cache_invalidations: u64,
}

/// Per-step report returned by [`AdaptiveTuner::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct TuneStepReport {
    /// Mean cross-entropy loss at the window's exit head.
    pub loss: f32,
    /// The window trained this step.
    pub window: LayerWindow,
    /// Activation bytes held during the backward pass (the F2 metric).
    pub activation_bytes: usize,
    /// Layers executed in the forward pass (exit layer + 1).
    pub forward_layers: usize,
    /// L2 norm of the gradient over the window's parameters, measured
    /// before the optimizer step (divergence guards key off this).
    pub grad_norm: f32,
    /// Kernel worker threads configured while the step ran (wall-clock
    /// context only — results are bit-identical for every value).
    pub threads: usize,
    /// Where the step's time went and how much re-quantization it did.
    pub phases: StepPhases,
}

/// Drives adaptive layer tuning of an [`EdgeModel`].
///
/// # Example
///
/// ```
/// use edge_llm_model::{AdaptiveTuner, EdgeModel, ModelConfig, Sgd, WindowSchedule};
/// use edge_llm_tensor::TensorRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = TensorRng::seed_from(0);
/// let cfg = ModelConfig::tiny();
/// let mut model = EdgeModel::new(cfg.clone(), &mut rng)?;
/// let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
/// let mut opt = Sgd::new(0.05);
/// let tokens = vec![3usize; cfg.seq_len];
/// let report = tuner.step(&mut model, &mut opt, &tokens, &tokens, 1)?;
/// assert!(report.loss.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    schedule: WindowSchedule,
    iter: usize,
}

impl AdaptiveTuner {
    /// Creates a tuner with the given window schedule.
    pub fn new(schedule: WindowSchedule) -> Self {
        AdaptiveTuner { schedule, iter: 0 }
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Repositions the schedule cursor (checkpoint resume and rollback):
    /// the next [`AdaptiveTuner::step`] behaves as iteration `iter`.
    pub fn set_iteration(&mut self, iter: usize) {
        self.iter = iter;
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &WindowSchedule {
        &self.schedule
    }

    /// Runs one adaptation iteration: pick the window, forward to its exit,
    /// compute the loss, truncated backward, optimizer step on the window's
    /// parameters, and re-apply pruning masks.
    ///
    /// `tokens` and `targets` are `batch * seq_len` long; targets may use
    /// [`edge_llm_tensor::IGNORE_TARGET`] for prompt positions.
    ///
    /// # Errors
    ///
    /// Propagates model and kernel errors.
    pub fn step(
        &mut self,
        model: &mut EdgeModel,
        opt: &mut dyn Optimizer,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
    ) -> Result<TuneStepReport, ModelError> {
        let _step_span = telemetry::span("tune.step");
        let t_step = Instant::now();
        let requants_before = model.block_requant_counts();
        let cache_before = model.weight_cache_stats();
        let window = self.schedule.window_for(self.iter, model.n_layers());
        self.iter += 1;
        let exit_layer = window.exit_layer();

        let t0 = Instant::now();
        let (fwd, ce) = {
            let _s = telemetry::span("tune.forward");
            let fwd = model.forward_exit(tokens, batch, exit_layer, window.start)?;
            let ce = cross_entropy_forward(&fwd.logits, targets)?;
            (fwd, ce)
        };
        let forward_ns = t0.elapsed().as_nanos() as u64;

        let t0 = Instant::now();
        let activation_bytes = {
            let _s = telemetry::span("tune.backward");
            let dlogits = cross_entropy_backward(&ce, targets)?;
            let activation_bytes = fwd.caches.activation_bytes();
            model.backward_exit(&fwd.caches, &dlogits)?;
            activation_bytes
        };
        let backward_ns = t0.elapsed().as_nanos() as u64;

        let t0 = Instant::now();
        let grad_sq = {
            let _s = telemetry::span("tune.optimizer");
            let mut grad_sq = 0f64;
            model.visit_params_window(window, exit_layer, &mut |_, _, g| {
                grad_sq += g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            });
            opt.begin_step();
            model.visit_params_window(window, exit_layer, &mut |id, p, g| opt.update(id, p, g));
            model.enforce_masks();
            grad_sq
        };
        let optimizer_ns = t0.elapsed().as_nanos() as u64;

        let requants_after = model.block_requant_counts();
        let cache_after = model.weight_cache_stats();
        let requant_layers = requants_before
            .iter()
            .zip(&requants_after)
            .filter(|(b, a)| a > b)
            .count();
        let cache_invalidations = cache_after.invalidations - cache_before.invalidations;
        telemetry::counter("tune.requant_layers", requant_layers as u64);
        telemetry::counter("tune.cache_invalidations", cache_invalidations);

        Ok(TuneStepReport {
            loss: ce.loss,
            window,
            activation_bytes,
            forward_layers: exit_layer + 1,
            grad_norm: grad_sq.sqrt() as f32,
            threads: configured_threads(),
            phases: StepPhases {
                forward_ns,
                backward_ns,
                optimizer_ns,
                total_ns: t_step.elapsed().as_nanos() as u64,
                requant_layers,
                cache_invalidations,
            },
        })
    }

    /// Evaluates the mean loss of the final exit on a batch without
    /// touching gradients (used between tuning epochs).
    ///
    /// # Errors
    ///
    /// Propagates model and kernel errors.
    pub fn eval_loss(
        &self,
        model: &EdgeModel,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
    ) -> Result<f32, ModelError> {
        let logits = model.logits(tokens, batch)?;
        Ok(cross_entropy_forward(&logits, targets)?.loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::optim::Sgd;
    use edge_llm_tensor::TensorRng;

    fn setup(depth: usize) -> (EdgeModel, Vec<usize>) {
        let mut rng = TensorRng::seed_from(42);
        let cfg = ModelConfig::tiny().with_layers(depth);
        let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3) % cfg.vocab_size).collect();
        (model, tokens)
    }

    #[test]
    fn round_robin_sweeps_all_layers() {
        let sched = WindowSchedule::RoundRobin { depth: 2 };
        let mut covered = std::collections::HashSet::new();
        for i in 0..4 {
            let w = sched.window_for(i, 8);
            assert_eq!(w.depth(), 2);
            for l in w.start..w.end {
                covered.insert(l);
            }
        }
        assert_eq!(covered.len(), 8);
    }

    #[test]
    fn round_robin_handles_non_dividing_depth() {
        let sched = WindowSchedule::RoundRobin { depth: 3 };
        for i in 0..10 {
            let w = sched.window_for(i, 8);
            assert_eq!(w.depth(), 3);
            assert!(w.end <= 8);
        }
    }

    #[test]
    fn full_depth_is_whole_model() {
        let w = WindowSchedule::FullDepth.window_for(5, 6);
        assert_eq!(w, LayerWindow { start: 0, end: 6 });
    }

    #[test]
    fn ordered_cycles() {
        let a = LayerWindow { start: 0, end: 1 };
        let b = LayerWindow { start: 1, end: 2 };
        let sched = WindowSchedule::Ordered(vec![a, b]);
        assert_eq!(sched.window_for(0, 2), a);
        assert_eq!(sched.window_for(1, 2), b);
        assert_eq!(sched.window_for(2, 2), a);
    }

    #[test]
    fn step_reduces_loss_over_iterations() {
        let (mut model, tokens) = setup(2);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
        let mut opt = Sgd::new(0.1);
        let first = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap()
            .loss;
        let mut last = first;
        for _ in 0..30 {
            last = tuner
                .step(&mut model, &mut opt, &tokens, &tokens, 1)
                .unwrap()
                .loss;
        }
        assert!(last < first * 0.8, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn windowed_step_reduces_loss_too() {
        let (mut model, tokens) = setup(2);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
        let mut opt = Sgd::new(0.1);
        let first = tuner.eval_loss(&model, &tokens, &tokens, 1).unwrap();
        for _ in 0..40 {
            tuner
                .step(&mut model, &mut opt, &tokens, &tokens, 1)
                .unwrap();
        }
        let last = tuner.eval_loss(&model, &tokens, &tokens, 1).unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn window_memory_is_smaller_than_full() {
        let (mut model, tokens) = setup(4);
        let mut opt = Sgd::new(0.0);
        let mut full = AdaptiveTuner::new(WindowSchedule::FullDepth);
        let full_mem = full
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap()
            .activation_bytes;
        let mut windowed = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
        let win_mem = windowed
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap()
            .activation_bytes;
        assert!(
            win_mem * 2 < full_mem,
            "1-layer window ({win_mem} B) should use far less than full depth ({full_mem} B)"
        );
    }

    #[test]
    fn grad_norm_is_positive_and_matches_optimizer_view() {
        let (mut model, tokens) = setup(2);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::FullDepth);
        // lr 0 keeps params fixed so the gradient is a pure function of the
        // batch — two identical steps must report the same norm.
        let mut opt = Sgd::new(0.0);
        let r0 = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        let r1 = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        assert!(r0.grad_norm > 0.0);
        assert!(r0.grad_norm.is_finite());
        assert_eq!(r0.grad_norm, r1.grad_norm);
    }

    #[test]
    fn set_iteration_repositions_schedule() {
        let (mut model, tokens) = setup(4);
        let mut opt = Sgd::new(0.0);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
        tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        tuner.set_iteration(0);
        let r = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        assert_eq!(r.window, LayerWindow { start: 0, end: 1 });
        assert_eq!(tuner.iterations(), 1);
    }

    #[test]
    fn forward_layers_tracks_exit() {
        let (mut model, tokens) = setup(4);
        let mut opt = Sgd::new(0.0);
        let mut tuner = AdaptiveTuner::new(WindowSchedule::RoundRobin { depth: 1 });
        let r0 = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        assert_eq!(r0.window, LayerWindow { start: 0, end: 1 });
        assert_eq!(r0.forward_layers, 1);
        let r1 = tuner
            .step(&mut model, &mut opt, &tokens, &tokens, 1)
            .unwrap();
        assert_eq!(r1.forward_layers, 2);
    }
}
