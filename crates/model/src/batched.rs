//! Batched KV-cached decoding for serving several sessions at once.
//!
//! An [`crate::InferenceSession`] advances one sequence per forward pass;
//! a serving engine with N in-flight requests would pay N full passes per
//! step. [`batched_decode_step`] instead packs one token from each active
//! sequence into a shared `(n, d_model)` activation and runs every linear
//! projection as a single matmul over all rows, while each sequence keeps
//! its own [`SequenceKv`] cache and attends only over its own history.
//!
//! # Bit-identity
//!
//! Every stage of the batched step is row-independent:
//!
//! - the blocked matmul kernel accumulates each output element over the
//!   shared dimension in a fixed ascending order regardless of how many
//!   rows are in flight (and the threaded kernel splits by output row);
//! - layer norm, softmax, GELU, bias-add, and the residual adds are
//!   per-row or elementwise;
//! - activation fake-quantisation is applied per row
//!   ([`crate::Linear::forward_rows_no_cache`]), so even per-tensor
//!   calibration schemes cannot couple rows;
//! - attention is evaluated per slot with the same scalar loops as the
//!   single-sequence session.
//!
//! Row `i` of a batched step is therefore bit-identical to pushing the
//! same token through a solo [`crate::InferenceSession`] with the same
//! history — the invariant the serving differential tests pin down.
//!
//! # Multi-threading
//!
//! Row-independence also makes the batch the natural parallel axis: when
//! more than one worker is configured (`EDGELLM_THREADS`), the step
//! splits its slots into contiguous chunks and runs the serial pass on
//! each chunk concurrently, suppressing kernel-level threading inside the
//! chunks. One spawn per pass amortizes over the whole layer stack, and —
//! unlike threading each (tiny) matmul — it parallelizes the per-slot
//! attention and elementwise work too. The chunk split is a pure function
//! of `(batch, workers)`, so results stay bit-identical for every thread
//! count.

use crate::adapter::{AdapterTarget, ResolvedAdapter};
use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::{gelu_forward, pool, softmax_rows, Tensor};

/// Per-sequence key/value cache for [`batched_decode_step`] — the state an
/// [`crate::InferenceSession`] keeps internally, split out so a scheduler
/// can own one per request and batch any subset of them each step.
#[derive(Debug, Clone)]
pub struct SequenceKv {
    /// Per layer: cached keys and values, `(seq_len, d_model)`, filled up
    /// to `t`.
    pub(crate) keys: Vec<Tensor>,
    pub(crate) values: Vec<Tensor>,
    pub(crate) t: usize,
    pub(crate) capacity: usize,
    pub(crate) d_model: usize,
}

impl SequenceKv {
    /// Starts an empty cache sized for `model` (capacity = `seq_len`).
    pub fn new(model: &EdgeModel) -> Self {
        let cfg = model.config();
        let keys = (0..model.n_layers())
            .map(|_| Tensor::zeros(cfg.seq_len, cfg.d_model))
            .collect();
        let values = (0..model.n_layers())
            .map(|_| Tensor::zeros(cfg.seq_len, cfg.d_model))
            .collect();
        SequenceKv {
            keys,
            values,
            t: 0,
            capacity: cfg.seq_len,
            d_model: cfg.d_model,
        }
    }

    /// Tokens consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no token has been fed yet.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Remaining capacity before the positional table is exhausted.
    pub fn remaining(&self) -> usize {
        self.capacity - self.t
    }

    /// Resets the cache to empty without reallocating, so a serving slot
    /// can be reused for the next queued request.
    pub fn reset(&mut self) {
        self.t = 0;
    }

    /// Rolls the cache back to `len` consumed tokens (no-op when `len`
    /// is at or past the current length). Rows past `len` are never read
    /// by later steps — every attention pass scans `0..t` only and every
    /// write lands at `t` — so discarding them is purely a cursor move.
    /// This is the rollback primitive speculative decoding uses to drop
    /// rejected draft positions.
    pub fn truncate(&mut self, len: usize) {
        self.t = self.t.min(len);
    }

    /// Bytes held by the key/value buffers.
    pub fn cache_bytes(&self) -> usize {
        self.keys
            .iter()
            .chain(self.values.iter())
            .map(|t| t.len() * 4)
            .sum()
    }

    pub(crate) fn check_model(&self, model: &EdgeModel) -> Result<(), ModelError> {
        let cfg = model.config();
        if self.keys.len() != model.n_layers()
            || self.capacity != cfg.seq_len
            || self.d_model != cfg.d_model
        {
            return Err(ModelError::BadConfig {
                reason: format!(
                    "sequence cache shaped for {} layers / seq {} / d_model {} \
                     does not match model with {} layers / seq {} / d_model {}",
                    self.keys.len(),
                    self.capacity,
                    self.d_model,
                    model.n_layers(),
                    cfg.seq_len,
                    cfg.d_model
                ),
            });
        }
        Ok(())
    }
}

/// One sequence's contribution to a batched decode step.
#[derive(Debug)]
pub struct BatchedStep<'a> {
    /// Token to feed at this sequence's current position.
    pub token: usize,
    /// The sequence's cache, advanced by one position on success.
    pub kv: &'a mut SequenceKv,
    /// Exit layers to return logits for (empty to skip logits entirely,
    /// e.g. during prompt prefill).
    pub exits: &'a [usize],
    /// This slot's tenant adapter, if any. The base projections stay one
    /// shared multi-row matmul; the delta is added to this slot's rows
    /// only, via [`ResolvedAdapter::apply_row`].
    pub adapter: Option<&'a ResolvedAdapter>,
}

/// Advances every sequence in `steps` by one token through a shared
/// batched forward pass and returns, per slot, one `(1, vocab)` logits
/// tensor per requested exit (in the slot's `exits` order).
///
/// All slots are validated before any cache is touched, so on error no
/// sequence has advanced.
///
/// # Errors
///
/// Returns [`ModelError::CapacityExhausted`] if any slot's cache is full,
/// [`ModelError::BadConfig`] for an out-of-vocabulary token or a cache
/// shaped for a different model, and [`ModelError::LayerOutOfRange`] for
/// an exit index past the model depth.
pub fn batched_decode_step(
    model: &EdgeModel,
    steps: &mut [BatchedStep<'_>],
) -> Result<Vec<Vec<Tensor>>, ModelError> {
    let cfg = model.config();
    if steps.is_empty() {
        return Ok(Vec::new());
    }
    // Validate every slot up front: a batched step must be all-or-nothing
    // so a bad request cannot leave its batch-mates half advanced. (This
    // also means the pass below cannot fail, so the slot-partitioned
    // parallel path cannot leave one chunk advanced and another not.)
    for step in steps.iter() {
        if step.token >= cfg.vocab_size {
            return Err(ModelError::BadConfig {
                reason: format!("token {} outside vocabulary {}", step.token, cfg.vocab_size),
            });
        }
        step.kv.check_model(model)?;
        if step.kv.remaining() == 0 {
            return Err(ModelError::CapacityExhausted {
                capacity: step.kv.capacity,
            });
        }
        if let Some(&bad) = step.exits.iter().find(|&&e| e >= model.n_layers()) {
            return Err(ModelError::LayerOutOfRange {
                layer: bad,
                depth: model.n_layers(),
            });
        }
    }
    let workers = pool::resolve_threads(0).min(steps.len());
    if workers <= 1 {
        return decode_chunk(model, steps);
    }
    // Slot-partitioned parallel pass: every stage of the step is
    // row-independent (the bit-identity contract above), so splitting the
    // batch into contiguous slot chunks and running the serial pass on
    // each chunk concurrently produces the same bits as one serial pass
    // over the full batch. Parallelizing here — once per pass — instead of
    // inside each matmul amortizes the spawn cost over the *whole* layer
    // stack and also parallelizes the per-slot attention and elementwise
    // work, which kernel-level threading never touches. Kernel-level
    // threading is suppressed inside each chunk (`serial_scope`) so
    // workers do not spawn nested workers.
    let parts = pool::partition(steps.len(), workers);
    let mut chunk_results: Vec<Result<Vec<Vec<Tensor>>, ModelError>> =
        Vec::with_capacity(parts.len());
    std::thread::scope(|scope| {
        let mut rest = steps;
        let mut head = None;
        let mut handles = Vec::with_capacity(parts.len() - 1);
        for (ci, part) in parts.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(part.len());
            rest = tail;
            if ci == 0 {
                // the calling thread takes the first chunk, after spawning
                head = Some(chunk);
            } else {
                handles
                    .push(scope.spawn(move || pool::serial_scope(|| decode_chunk(model, chunk))));
            }
        }
        let first = head.expect("partition yields at least one chunk");
        chunk_results.push(pool::serial_scope(|| decode_chunk(model, first)));
        for h in handles {
            match h.join() {
                Ok(r) => chunk_results.push(r),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let mut out = Vec::with_capacity(
        chunk_results
            .iter()
            .map(|r| r.as_ref().map_or(0, Vec::len))
            .sum(),
    );
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

/// The serial batched pass over one contiguous chunk of slots — the whole
/// batch when one worker is configured, a sub-range of it under the
/// slot-partitioned parallel path. Slots must already be validated.
fn decode_chunk(
    model: &EdgeModel,
    steps: &mut [BatchedStep<'_>],
) -> Result<Vec<Vec<Tensor>>, ModelError> {
    let cfg = model.config();
    let (c, heads) = (cfg.d_model, cfg.n_heads);
    let hs = c / heads;
    let scale = 1.0 / (hs as f32).sqrt();
    let n = steps.len();
    let mut x = Tensor::zeros(n, c);
    for (i, step) in steps.iter().enumerate() {
        let e = model.embed_one(step.token, step.kv.t)?;
        x.row_mut(i).copy_from_slice(e.row(0));
    }
    let mut per_exit: Vec<Vec<Option<Tensor>>> =
        steps.iter().map(|s| vec![None; s.exits.len()]).collect();
    for l in 0..model.n_layers() {
        let block = model.block(l);
        let n1 = block.ln1().forward_no_cache(&x)?;
        let (qkv_lin, proj) = block.attn().linears();
        let mut qkv = qkv_lin.forward_rows_no_cache(&n1)?; // (n, 3c)
                                                           // Per-slot adapter deltas land *before* the key/value rows are
                                                           // copied into the caches, so adapted K/V history is what later
                                                           // steps attend over — same as a solo run with the adapter.
        for (i, step) in steps.iter().enumerate() {
            if let Some(ad) = step.adapter {
                ad.apply_row(l, AdapterTarget::Qkv, n1.row(i), qkv.row_mut(i))?;
            }
        }
        let mut concat = Tensor::zeros(n, c);
        for (i, step) in steps.iter_mut().enumerate() {
            let t = step.kv.t;
            let row = qkv.row(i);
            step.kv.keys[l].row_mut(t).copy_from_slice(&row[c..2 * c]);
            step.kv.values[l]
                .row_mut(t)
                .copy_from_slice(&row[2 * c..3 * c]);
            let t_now = t + 1;
            for h in 0..heads {
                let q = &row[h * hs..(h + 1) * hs];
                // scores over this sequence's cached keys only
                let mut scores = Tensor::zeros(1, t_now);
                for p in 0..t_now {
                    let k = &step.kv.keys[l].row(p)[h * hs..(h + 1) * hs];
                    let dot: f32 = q.iter().zip(k.iter()).map(|(a, b)| a * b).sum();
                    scores.set(0, p, dot * scale);
                }
                let att = softmax_rows(&scores);
                let out = &mut concat.row_mut(i)[h * hs..(h + 1) * hs];
                for p in 0..t_now {
                    let w = att.get(0, p);
                    let v = &step.kv.values[l].row(p)[h * hs..(h + 1) * hs];
                    for (o, &vv) in out.iter_mut().zip(v.iter()) {
                        *o += w * vv;
                    }
                }
            }
        }
        let mut a = proj.forward_rows_no_cache(&concat)?;
        for (i, step) in steps.iter().enumerate() {
            if let Some(ad) = step.adapter {
                ad.apply_row(l, AdapterTarget::Proj, concat.row(i), a.row_mut(i))?;
            }
        }
        let x1 = x.add(&a)?;
        let n2 = block.ln2().forward_no_cache(&x1)?;
        let (fc1, fc2) = block.mlp().linears();
        let mut mid = fc1.forward_rows_no_cache(&n2)?;
        for (i, step) in steps.iter().enumerate() {
            if let Some(ad) = step.adapter {
                ad.apply_row(l, AdapterTarget::Fc1, n2.row(i), mid.row_mut(i))?;
            }
        }
        let act = gelu_forward(&mid);
        let mut m_out = fc2.forward_rows_no_cache(&act)?;
        for (i, step) in steps.iter().enumerate() {
            if let Some(ad) = step.adapter {
                ad.apply_row(l, AdapterTarget::Fc2, act.row(i), m_out.row_mut(i))?;
            }
        }
        x = x1.add(&m_out)?;
        // one shared unembedding matmul over every slot exiting at l
        let needing: Vec<usize> = (0..n).filter(|&i| steps[i].exits.contains(&l)).collect();
        if !needing.is_empty() {
            let mut sub = Tensor::zeros(needing.len(), c);
            for (r, &i) in needing.iter().enumerate() {
                sub.row_mut(r).copy_from_slice(x.row(i));
            }
            let logits = model.exit_logits_rows(&sub, l)?;
            let vocab = logits.shape().1;
            for (r, &i) in needing.iter().enumerate() {
                let row = Tensor::from_vec(1, vocab, logits.row(r).to_vec())
                    .map_err(ModelError::Tensor)?;
                for (slot, &e) in per_exit[i].iter_mut().zip(steps[i].exits.iter()) {
                    if e == l {
                        *slot = Some(row.clone());
                    }
                }
            }
        }
    }
    for step in steps.iter_mut() {
        step.kv.t += 1;
    }
    Ok(per_exit
        .into_iter()
        .map(|slots| {
            slots
                .into_iter()
                .map(|o| o.expect("exit bounds checked"))
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::infer::InferenceSession;
    use edge_llm_tensor::TensorRng;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn assert_rows_bit_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        let (rows, cols) = a.shape();
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(
                    a.get(r, c).to_bits(),
                    b.get(r, c).to_bits(),
                    "{what}: ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn batched_rows_match_solo_sessions_bitwise() {
        let m = model(1);
        let cfg = m.config().clone();
        let exits: Vec<usize> = vec![0, m.n_layers() - 1];
        let sequences: Vec<Vec<usize>> = vec![
            (0..cfg.seq_len)
                .map(|i| (i * 5 + 1) % cfg.vocab_size)
                .collect(),
            (0..cfg.seq_len)
                .map(|i| (i * 7 + 2) % cfg.vocab_size)
                .collect(),
            (0..cfg.seq_len)
                .map(|i| (i * 11 + 3) % cfg.vocab_size)
                .collect(),
        ];
        let mut kvs: Vec<SequenceKv> = sequences.iter().map(|_| SequenceKv::new(&m)).collect();
        let mut solos: Vec<InferenceSession> = sequences
            .iter()
            .map(|_| InferenceSession::new(&m))
            .collect();
        // lockstep over time: `t` indexes every sequence at once
        #[allow(clippy::needless_range_loop)]
        for t in 0..cfg.seq_len {
            let mut steps: Vec<BatchedStep> = kvs
                .iter_mut()
                .enumerate()
                .map(|(i, kv)| BatchedStep {
                    token: sequences[i][t],
                    kv,
                    exits: &exits,
                    adapter: None,
                })
                .collect();
            let batched = batched_decode_step(&m, &mut steps).unwrap();
            for (i, solo) in solos.iter_mut().enumerate() {
                let reference = solo.push_token_exits(sequences[i][t], &exits).unwrap();
                for (e, r) in reference.iter().enumerate() {
                    assert_rows_bit_equal(&batched[i][e], r, &format!("slot {i} exit {e} t {t}"));
                }
            }
        }
    }

    #[test]
    fn late_joining_sequence_is_unaffected_by_batch_mates() {
        let m = model(2);
        let exits = [m.n_layers() - 1];
        // sequence A runs alone for 3 tokens, then B joins mid-flight
        let a_tokens = [1usize, 2, 3, 4, 5, 6];
        let b_tokens = [9usize, 8, 7];
        let mut kv_a = SequenceKv::new(&m);
        let mut kv_b = SequenceKv::new(&m);
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for t in 0..a_tokens.len() {
            let mut steps = Vec::new();
            steps.push(BatchedStep {
                token: a_tokens[t],
                kv: &mut kv_a,
                exits: &exits,
                adapter: None,
            });
            if t >= 3 {
                steps.push(BatchedStep {
                    token: b_tokens[t - 3],
                    kv: &mut kv_b,
                    exits: &exits,
                    adapter: None,
                });
            }
            let out = batched_decode_step(&m, &mut steps).unwrap();
            got_a.push(out[0][0].clone());
            if t >= 3 {
                got_b.push(out[1][0].clone());
            }
        }
        let mut solo_a = InferenceSession::new(&m);
        for (t, &tok) in a_tokens.iter().enumerate() {
            let r = solo_a.push_token_exits(tok, &exits).unwrap();
            assert_rows_bit_equal(&got_a[t], &r[0], &format!("A t {t}"));
        }
        let mut solo_b = InferenceSession::new(&m);
        for (t, &tok) in b_tokens.iter().enumerate() {
            let r = solo_b.push_token_exits(tok, &exits).unwrap();
            assert_rows_bit_equal(&got_b[t], &r[0], &format!("B t {t}"));
        }
    }

    #[test]
    fn thread_count_does_not_change_a_single_bit() {
        use edge_llm_tensor::{configured_threads, set_configured_threads};
        let m = model(8);
        let cfg = m.config().clone();
        let exits: Vec<usize> = (0..m.n_layers()).collect();
        let sequences: Vec<Vec<usize>> = (0..5)
            .map(|s| {
                (0..cfg.seq_len)
                    .map(|i| (i * 3 + s * 5 + 1) % cfg.vocab_size)
                    .collect()
            })
            .collect();
        let run = |threads: usize| {
            let before = configured_threads();
            set_configured_threads(threads);
            let mut kvs: Vec<SequenceKv> = sequences.iter().map(|_| SequenceKv::new(&m)).collect();
            let mut all = Vec::new();
            // lockstep over time: `t` indexes every sequence at once
            #[allow(clippy::needless_range_loop)]
            for t in 0..cfg.seq_len {
                let mut steps: Vec<BatchedStep> = kvs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, kv)| BatchedStep {
                        token: sequences[i][t],
                        kv,
                        exits: &exits,
                        adapter: None,
                    })
                    .collect();
                all.push(batched_decode_step(&m, &mut steps).unwrap());
            }
            set_configured_threads(before);
            all
        };
        let serial = run(1);
        for threads in [2usize, 3, 8] {
            let par = run(threads);
            for (t, (a, b)) in serial.iter().zip(par.iter()).enumerate() {
                for (slot, (sa, sb)) in a.iter().zip(b.iter()).enumerate() {
                    for (e, (ta, tb)) in sa.iter().zip(sb.iter()).enumerate() {
                        assert_rows_bit_equal(
                            ta,
                            tb,
                            &format!("threads {threads} t {t} slot {slot} exit {e}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prefill_skips_logits() {
        let m = model(3);
        let mut kv = SequenceKv::new(&m);
        let mut steps = [BatchedStep {
            token: 1,
            kv: &mut kv,
            exits: &[],
            adapter: None,
        }];
        let out = batched_decode_step(&m, &mut steps).unwrap();
        assert!(out[0].is_empty());
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn validation_is_all_or_nothing() {
        let m = model(4);
        let mut kv_good = SequenceKv::new(&m);
        let mut kv_bad = SequenceKv::new(&m);
        let exits = [0usize];
        {
            let mut steps = [
                BatchedStep {
                    token: 1,
                    kv: &mut kv_good,
                    exits: &exits,
                    adapter: None,
                },
                BatchedStep {
                    token: 99_999,
                    kv: &mut kv_bad,
                    exits: &exits,
                    adapter: None,
                },
            ];
            assert!(matches!(
                batched_decode_step(&m, &mut steps),
                Err(ModelError::BadConfig { .. })
            ));
        }
        // neither sequence advanced
        assert_eq!(kv_good.len(), 0);
        assert_eq!(kv_bad.len(), 0);
        {
            let mut steps = [BatchedStep {
                token: 1,
                kv: &mut kv_good,
                exits: &[99],
                adapter: None,
            }];
            assert!(matches!(
                batched_decode_step(&m, &mut steps),
                Err(ModelError::LayerOutOfRange { .. })
            ));
        }
        assert_eq!(kv_good.len(), 0);
    }

    #[test]
    fn capacity_is_enforced_before_any_mutation() {
        let m = model(5);
        let seq_len = m.config().seq_len;
        let mut kv_full = SequenceKv::new(&m);
        for _ in 0..seq_len {
            let mut steps = [BatchedStep {
                token: 1,
                kv: &mut kv_full,
                exits: &[],
                adapter: None,
            }];
            batched_decode_step(&m, &mut steps).unwrap();
        }
        assert_eq!(kv_full.remaining(), 0);
        let mut kv_fresh = SequenceKv::new(&m);
        let mut steps = [
            BatchedStep {
                token: 1,
                kv: &mut kv_fresh,
                exits: &[],
                adapter: None,
            },
            BatchedStep {
                token: 1,
                kv: &mut kv_full,
                exits: &[],
                adapter: None,
            },
        ];
        assert!(matches!(
            batched_decode_step(&m, &mut steps),
            Err(ModelError::CapacityExhausted { .. })
        ));
        assert_eq!(kv_fresh.len(), 0, "batch-mate must not advance");
        kv_full.reset();
        assert!(kv_full.is_empty());
        assert_eq!(kv_full.remaining(), seq_len);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let m = model(6);
        let out = batched_decode_step(&m, &mut []).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cache_bytes_match_session() {
        let m = model(7);
        let kv = SequenceKv::new(&m);
        let session = InferenceSession::new(&m);
        assert_eq!(kv.cache_bytes(), session.cache_bytes());
    }
}
