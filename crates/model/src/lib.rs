//! Decoder-only transformer with explicit backward passes, early-exit heads,
//! adaptive layer tuning, and exit voting — the model substrate of the
//! Edge-LLM reproduction.
//!
//! Unlike tape-based autograd frameworks, every block here exposes separate
//! `forward` / `backward` entry points and owns its gradient buffers. That
//! structure is what lets the Edge-LLM **adaptive layer tuning** scheme
//! truncate backpropagation to a window of layers per iteration (saving
//! activation memory and backward compute), and what lets the **voting**
//! combiner blend per-exit logits at inference time.
//!
//! # Example
//!
//! ```
//! use edge_llm_model::{EdgeModel, ModelConfig};
//! use edge_llm_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ModelConfig::tiny();
//! let mut rng = TensorRng::seed_from(0);
//! let model = EdgeModel::new(config.clone(), &mut rng)?;
//! let tokens = vec![1usize; config.seq_len];
//! let logits = model.logits(&tokens, 1)?;
//! assert_eq!(logits.shape(), (config.seq_len, config.vocab_size));
//! # Ok(())
//! # }
//! ```

mod adapter;
mod adaptive;
mod attention;
mod batched;
mod beam;
mod block;
mod config;
mod error;
mod generate;
mod gradcheck;
mod infer;
mod io;
mod linear;
mod lora;
mod lr;
mod memory;
mod mlp;
mod model;
mod norm;
mod optim;
mod spec;
mod voting;

pub use adapter::{AdapterDelta, AdapterTarget, ResolvedAdapter, TenantAdapter};
pub use adaptive::{AdaptiveTuner, LayerWindow, StepPhases, TuneStepReport, WindowSchedule};
pub use attention::{Attention, AttentionCache};
pub use batched::{batched_decode_step, BatchedStep, SequenceKv};
pub use beam::{beam_search, BeamHypothesis};
pub use block::{Block, BlockCache};
pub use config::ModelConfig;
pub use error::ModelError;
pub use generate::{generate, sample_token, validate_decoding, Decoding};
pub use gradcheck::{gradient_check, GradCheckReport};
pub use infer::InferenceSession;
pub use io::{load_model, save_model, TrainingCheckpoint};
pub use linear::{Linear, LinearCache};
pub use lora::{LoraCache, LoraLinear};
pub use lr::LrSchedule;
pub use memory::{MemoryBreakdown, MemoryModel};
pub use mlp::{Mlp, MlpCache};
pub use model::{
    EdgeModel, ExitForward, ForwardCaches, ParamVisitor, ParamVisitorRo, WeightCacheStats,
};
pub use norm::LayerNorm;
pub use optim::{Adam, Optimizer, Sgd, SgdState};
pub use spec::{
    spec_round, spec_round_with_adapter, speculative_generate, validate_spec_params, SpecReport,
};
pub use voting::{combine, fit_learned_weights, VotingCombiner, VotingPolicy};
