use crate::error::ModelError;
use crate::linear::{Linear, LinearCache};
use edge_llm_tensor::{
    matmul_a_bt_with, matmul_at_b_with, pool, softmax_backward, softmax_rows, MatmulKernel, Tensor,
    TensorRng,
};

/// Head-level work (multiply-accumulates across all heads) below this
/// stays serial; spawn overhead dominates smaller attention maps. The
/// per-head arithmetic is identical either way, so the cutoff affects
/// wall-clock only.
const MIN_PARALLEL_HEAD_MACS: usize = 1 << 16;

/// Workers for a `batch * n_heads`-way head loop with `seq`-length
/// sequences of `hs`-wide heads, honouring the process-wide setting.
///
/// Head computations run on **disjoint** `(batch, head)` slices and their
/// inner kernels are pinned to the serial path, so the result is
/// bit-identical for every worker count.
fn head_workers(items: usize, seq: usize, hs: usize) -> usize {
    let macs = items * 2 * seq * seq * hs;
    if macs < MIN_PARALLEL_HEAD_MACS {
        return 1;
    }
    pool::resolve_threads(0).min(items.max(1))
}

/// Causal multi-head self-attention.
///
/// Input and output are `(batch * seq) x d_model` row-major token matrices.
/// The QKV projection is a single fused [`Linear`] (`d_model -> 3 d_model`)
/// followed by per-head scaled dot-product attention with a causal mask and
/// an output projection.
#[derive(Debug, Clone)]
pub struct Attention {
    qkv: Linear,
    proj: Linear,
    n_heads: usize,
    d_model: usize,
}

/// Per-step activations cached by [`Attention::forward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    qkv_cache: LinearCache,
    proj_cache: LinearCache,
    /// Post-softmax attention matrices, one per `(batch, head)`.
    att: Vec<Tensor>,
    /// Per-(batch, head) value matrices `(seq, head_dim)`.
    v: Vec<Tensor>,
    /// Per-(batch, head) query/key matrices, needed for score gradients.
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl AttentionCache {
    /// Approximate bytes held alive by this cache.
    pub fn bytes(&self) -> usize {
        let per_tensor: usize = self
            .att
            .iter()
            .chain(self.v.iter())
            .chain(self.q.iter())
            .chain(self.k.iter())
            .map(|t| t.len() * 4)
            .sum();
        per_tensor + self.qkv_cache.bytes() + self.proj_cache.bytes()
    }
}

impl Attention {
    /// Creates an attention module for `d_model` with `n_heads` heads.
    pub fn new(d_model: usize, n_heads: usize, rng: &mut TensorRng) -> Self {
        Attention {
            qkv: Linear::new(d_model, 3 * d_model, rng),
            proj: Linear::new(d_model, d_model, rng),
            n_heads,
            d_model,
        }
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.qkv.num_params() + self.proj.num_params()
    }

    /// The fused QKV projection (exposed for compression policies).
    pub fn qkv_mut(&mut self) -> &mut Linear {
        &mut self.qkv
    }

    /// The output projection (exposed for compression policies).
    pub fn proj_mut(&mut self) -> &mut Linear {
        &mut self.proj
    }

    /// Read access to the projections, in `(qkv, proj)` order.
    pub fn linears(&self) -> (&Linear, &Linear) {
        (&self.qkv, &self.proj)
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Forward pass over `batch` sequences of length `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadBatch`] if `x.rows() != batch * seq`, and
    /// propagates kernel shape errors.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, AttentionCache), ModelError> {
        self.forward_impl(x, batch, seq, true)
            .map(|(y, c)| (y, c.expect("cache requested")))
    }

    /// Forward pass that does not retain activations.
    ///
    /// # Errors
    ///
    /// Same as [`Attention::forward`].
    pub fn forward_no_cache(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, ModelError> {
        Ok(self.forward_impl(x, batch, seq, false)?.0)
    }

    fn forward_impl(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        want_cache: bool,
    ) -> Result<(Tensor, Option<AttentionCache>), ModelError> {
        if x.rows() != batch * seq || x.cols() != self.d_model {
            return Err(ModelError::BadBatch {
                expected: batch * seq,
                actual: x.rows(),
            });
        }
        let hs = self.d_model / self.n_heads;
        let scale = 1.0 / (hs as f32).sqrt();
        let (qkv_out, qkv_cache) = self.qkv.forward(x)?;
        let mut concat = Tensor::zeros(batch * seq, self.d_model);
        let mut att_all = Vec::new();
        let mut v_all = Vec::new();
        let mut q_all = Vec::new();
        let mut k_all = Vec::new();
        // Each (batch, head) pair is independent; fan them out over the
        // pool and merge in index order so the result is bit-identical
        // for every thread count. Inner matmuls stay serial — the
        // parallelism lives at head granularity.
        let items = batch * self.n_heads;
        let workers = head_workers(items, seq, hs);
        let heads = pool::parallel_map(items, workers, |idx| {
            let (b, h) = (idx / self.n_heads, idx % self.n_heads);
            let (q, k, v) = split_head(&qkv_out, b, seq, h, hs, self.d_model);
            let mut scores = matmul_a_bt_with(&q, &k, 1)?;
            scores.scale_in_place(scale);
            apply_causal_mask(&mut scores);
            let att = softmax_rows(&scores);
            let y = att.matmul_with(&v, MatmulKernel::Blocked)?;
            Ok::<_, ModelError>((q, k, v, att, y))
        });
        for (idx, head) in heads.into_iter().enumerate() {
            let (b, h) = (idx / self.n_heads, idx % self.n_heads);
            let (q, k, v, att, y) = head?;
            write_head(&mut concat, &y, b, seq, h, hs);
            if want_cache {
                att_all.push(att);
                v_all.push(v);
                q_all.push(q);
                k_all.push(k);
            }
        }
        let (out, proj_cache) = self.proj.forward(&concat)?;
        let cache = want_cache.then_some(AttentionCache {
            qkv_cache,
            proj_cache,
            att: att_all,
            v: v_all,
            q: q_all,
            k: k_all,
            batch,
            seq,
        });
        Ok((out, cache))
    }

    /// Backward pass: accumulates projection gradients, returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn backward(
        &mut self,
        cache: &AttentionCache,
        dout: &Tensor,
    ) -> Result<Tensor, ModelError> {
        let hs = self.d_model / self.n_heads;
        let scale = 1.0 / (hs as f32).sqrt();
        let (batch, seq) = (cache.batch, cache.seq);
        let dconcat = self.proj.backward(&cache.proj_cache, dout)?;
        let mut dqkv = Tensor::zeros(batch * seq, 3 * self.d_model);
        // Same head-level fan-out as the forward pass: gradients for each
        // (batch, head) are computed on the pool, then scattered serially
        // in index order (the scatter interleaves columns of shared rows,
        // so it is not panel-disjoint).
        let items = batch * self.n_heads;
        let workers = head_workers(items, seq, hs);
        let grads = pool::parallel_map(items, workers, |idx| {
            let att = &cache.att[idx];
            let v = &cache.v[idx];
            let q = &cache.q[idx];
            let k = &cache.k[idx];
            let (b, h) = (idx / self.n_heads, idx % self.n_heads);
            let dy = read_head(&dconcat, b, seq, h, hs);
            // y = att · v
            let datt = matmul_a_bt_with(&dy, v, 1)?;
            let dv = matmul_at_b_with(att, &dy, 1)?;
            // att = softmax(scores); masked entries have att == 0 so
            // their score gradient is identically zero.
            let mut ds = softmax_backward(att, &datt)?;
            ds.scale_in_place(scale);
            // scores = q · kᵀ (pre-scale)
            let dq = ds.matmul_with(k, MatmulKernel::Blocked)?;
            let dk = matmul_at_b_with(&ds, q, 1)?;
            Ok::<_, ModelError>((dq, dk, dv))
        });
        for (idx, grad) in grads.into_iter().enumerate() {
            let (b, h) = (idx / self.n_heads, idx % self.n_heads);
            let (dq, dk, dv) = grad?;
            scatter_head(&mut dqkv, &dq, b, seq, h, hs, 0);
            scatter_head(&mut dqkv, &dk, b, seq, h, hs, self.d_model);
            scatter_head(&mut dqkv, &dv, b, seq, h, hs, 2 * self.d_model);
        }
        let dx = self.qkv.backward(&cache.qkv_cache, &dqkv)?;
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.qkv.zero_grad();
        self.proj.zero_grad();
    }

    /// Visits `(param, grad)` pairs: qkv weight/bias then proj weight/bias.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.qkv.visit_params(f);
        self.proj.visit_params(f);
    }

    /// Read-only mirror of [`Attention::visit_params`]: same slice order,
    /// no cache invalidation.
    pub fn visit_params_ro(&self, f: &mut dyn FnMut(&[f32])) {
        self.qkv.visit_params_ro(f);
        self.proj.visit_params_ro(f);
    }

    /// Number of slice pairs [`Attention::visit_params`] yields.
    pub fn param_slice_count(&self) -> usize {
        self.qkv.param_slice_count() + self.proj.param_slice_count()
    }

    /// Re-applies pruning masks after an optimizer step.
    pub fn enforce_masks(&mut self) {
        self.qkv.enforce_mask();
        self.proj.enforce_mask();
    }

    /// Quantizes the projections' weights into packed integer codes for
    /// the decode path (see [`Linear::pack_weights`]).
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn pack_weights(&self) -> Result<(), ModelError> {
        self.qkv.pack_weights()?;
        self.proj.pack_weights()
    }

    /// Enables or disables the compressed-weight cache on both projections.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.qkv.set_cache_enabled(enabled);
        self.proj.set_cache_enabled(enabled);
    }

    /// Enables or disables the packed integer-GEMM decode route on both
    /// projections.
    pub fn set_integer_decode_enabled(&mut self, enabled: bool) {
        self.qkv.set_integer_decode_enabled(enabled);
        self.proj.set_integer_decode_enabled(enabled);
    }

    /// Bytes the decode path keeps resident for the projections' weights.
    pub fn weight_storage_bytes(&self) -> usize {
        self.qkv.weight_storage_bytes() + self.proj.weight_storage_bytes()
    }

    /// Effective-weight re-quantizations across both projections.
    pub fn requant_count(&self) -> u64 {
        self.qkv.requant_count() + self.proj.requant_count()
    }

    /// Weight-cache evictions across both projections.
    pub fn cache_invalidation_count(&self) -> u64 {
        self.qkv.cache_invalidation_count() + self.proj.cache_invalidation_count()
    }
}

fn split_head(
    qkv: &Tensor,
    b: usize,
    seq: usize,
    h: usize,
    hs: usize,
    d_model: usize,
) -> (Tensor, Tensor, Tensor) {
    let mut q = Tensor::zeros(seq, hs);
    let mut k = Tensor::zeros(seq, hs);
    let mut v = Tensor::zeros(seq, hs);
    for t in 0..seq {
        let row = qkv.row(b * seq + t);
        q.row_mut(t).copy_from_slice(&row[h * hs..(h + 1) * hs]);
        k.row_mut(t)
            .copy_from_slice(&row[d_model + h * hs..d_model + (h + 1) * hs]);
        v.row_mut(t)
            .copy_from_slice(&row[2 * d_model + h * hs..2 * d_model + (h + 1) * hs]);
    }
    (q, k, v)
}

fn write_head(concat: &mut Tensor, y: &Tensor, b: usize, seq: usize, h: usize, hs: usize) {
    for t in 0..seq {
        concat.row_mut(b * seq + t)[h * hs..(h + 1) * hs].copy_from_slice(y.row(t));
    }
}

fn read_head(x: &Tensor, b: usize, seq: usize, h: usize, hs: usize) -> Tensor {
    let mut out = Tensor::zeros(seq, hs);
    for t in 0..seq {
        out.row_mut(t)
            .copy_from_slice(&x.row(b * seq + t)[h * hs..(h + 1) * hs]);
    }
    out
}

fn scatter_head(
    dst: &mut Tensor,
    src: &Tensor,
    b: usize,
    seq: usize,
    h: usize,
    hs: usize,
    offset: usize,
) {
    for t in 0..seq {
        dst.row_mut(b * seq + t)[offset + h * hs..offset + (h + 1) * hs]
            .copy_from_slice(src.row(t));
    }
}

fn apply_causal_mask(scores: &mut Tensor) {
    let (rows, cols) = scores.shape();
    for i in 0..rows {
        let row = scores.row_mut(i);
        for v in row.iter_mut().take(cols).skip(i + 1) {
            *v = -1e30;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = TensorRng::seed_from(1);
        let attn = Attention::new(16, 4, &mut rng);
        let x = Tensor::randn(2 * 6, 16, 1.0, &mut rng);
        let (y, _) = attn.forward(&x, 2, 6).unwrap();
        assert_eq!(y.shape(), (12, 16));
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = TensorRng::seed_from(2);
        let attn = Attention::new(8, 2, &mut rng);
        let seq = 5;
        let x1 = Tensor::randn(seq, 8, 1.0, &mut rng);
        let mut x2 = x1.clone();
        // perturb the last token only
        for c in 0..8 {
            let v = x2.get(seq - 1, c);
            x2.set(seq - 1, c, v + 3.0);
        }
        let y1 = attn.forward_no_cache(&x1, 1, seq).unwrap();
        let y2 = attn.forward_no_cache(&x2, 1, seq).unwrap();
        for t in 0..seq - 1 {
            for c in 0..8 {
                assert!(
                    (y1.get(t, c) - y2.get(t, c)).abs() < 1e-5,
                    "token {t} changed"
                );
            }
        }
        // but the perturbed position itself must change
        let last_diff: f32 = (0..8)
            .map(|c| (y1.get(seq - 1, c) - y2.get(seq - 1, c)).abs())
            .sum();
        assert!(last_diff > 1e-3);
    }

    #[test]
    fn batch_sequences_are_independent() {
        let mut rng = TensorRng::seed_from(3);
        let attn = Attention::new(8, 2, &mut rng);
        let seq = 4;
        let a = Tensor::randn(seq, 8, 1.0, &mut rng);
        let b = Tensor::randn(seq, 8, 1.0, &mut rng);
        // batched forward
        let mut xb = Tensor::zeros(2 * seq, 8);
        for t in 0..seq {
            xb.row_mut(t).copy_from_slice(a.row(t));
            xb.row_mut(seq + t).copy_from_slice(b.row(t));
        }
        let yb = attn.forward_no_cache(&xb, 2, seq).unwrap();
        let ya = attn.forward_no_cache(&a, 1, seq).unwrap();
        for t in 0..seq {
            for c in 0..8 {
                assert!((yb.get(t, c) - ya.get(t, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = TensorRng::seed_from(4);
        let mut attn = Attention::new(4, 2, &mut rng);
        let seq = 3;
        let x = Tensor::randn(seq, 4, 0.7, &mut rng);
        let dy = Tensor::randn(seq, 4, 1.0, &mut rng);
        let (_, cache) = attn.forward(&x, 1, seq).unwrap();
        let dx = attn.backward(&cache, &dy).unwrap();
        // numeric dL/dx where L = sum(y * dy)
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let lp: f32 = attn
                .forward_no_cache(&xp, 1, seq)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig - eps;
            let lm: f32 = attn
                .forward_no_cache(&xp, 1, seq)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[i];
            assert!(
                (num - ana).abs() < 3e-2,
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn bad_batch_shape_errors() {
        let mut rng = TensorRng::seed_from(5);
        let attn = Attention::new(8, 2, &mut rng);
        let x = Tensor::zeros(7, 8);
        assert!(matches!(
            attn.forward(&x, 2, 4),
            Err(ModelError::BadBatch { .. })
        ));
    }

    #[test]
    fn no_cache_forward_matches_cached() {
        let mut rng = TensorRng::seed_from(6);
        let attn = Attention::new(8, 4, &mut rng);
        let x = Tensor::randn(6, 8, 1.0, &mut rng);
        let (y1, _) = attn.forward(&x, 1, 6).unwrap();
        let y2 = attn.forward_no_cache(&x, 1, 6).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
    }
}
