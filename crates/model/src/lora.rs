//! Low-rank adaptation (LoRA) baseline.
//!
//! The paper compares Edge-LLM against parameter-efficient tuning methods;
//! LoRA is the canonical one. A [`LoraLinear`] freezes a base weight and
//! trains only a rank-`r` residual `B · A`, scaled by `alpha / r`.

use crate::error::ModelError;
use edge_llm_tensor::{matmul_a_bt, matmul_at_b, Tensor, TensorRng};

/// A frozen linear layer with a trainable low-rank residual:
/// `y = x · (W + (alpha/r) · A · B)` where `A: d_in x r`, `B: r x d_out`.
///
/// # Example
///
/// ```
/// use edge_llm_model::LoraLinear;
/// use edge_llm_tensor::{Tensor, TensorRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = TensorRng::seed_from(0);
/// let base = Tensor::randn(8, 8, 0.2, &mut rng);
/// let lora = LoraLinear::new(base, 2, 4.0, &mut rng);
/// assert_eq!(lora.trainable_params(), 8 * 2 + 2 * 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LoraLinear {
    base: Tensor,
    a: Tensor,
    b: Tensor,
    da: Tensor,
    db: Tensor,
    scale: f32,
}

/// Cache for [`LoraLinear::forward`].
#[derive(Debug, Clone)]
pub struct LoraCache {
    x: Tensor,
    xa: Tensor,
}

impl LoraLinear {
    /// Wraps a frozen `base` weight `(d_in, d_out)` with a rank-`rank`
    /// adapter. `A` is Gaussian-initialized, `B` zero-initialized, so the
    /// adapter starts as an exact no-op (standard LoRA initialization).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(base: Tensor, rank: usize, alpha: f32, rng: &mut TensorRng) -> Self {
        assert!(rank > 0, "lora rank must be positive");
        let (d_in, d_out) = base.shape();
        LoraLinear {
            a: Tensor::randn(d_in, rank, 0.02, rng),
            b: Tensor::zeros(rank, d_out),
            da: Tensor::zeros(d_in, rank),
            db: Tensor::zeros(rank, d_out),
            scale: alpha / rank as f32,
            base,
        }
    }

    /// Number of trainable scalars (the adapter only).
    pub fn trainable_params(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// Total scalars including the frozen base.
    pub fn total_params(&self) -> usize {
        self.trainable_params() + self.base.len()
    }

    /// Forward pass: `y = x·W + scale · (x·A)·B`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LoraCache), ModelError> {
        let mut y = x.matmul(&self.base)?;
        let xa = x.matmul(&self.a)?;
        let delta = xa.matmul(&self.b)?;
        y.axpy(self.scale, &delta)?;
        Ok((y, LoraCache { x: x.clone(), xa }))
    }

    /// Backward pass: accumulates adapter gradients only (the base stays
    /// frozen), returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn backward(&mut self, cache: &LoraCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        // dx = dy·Wᵀ + scale · (dy·Bᵀ)·Aᵀ
        let mut dx = matmul_a_bt(dy, &self.base)?;
        let dxa = matmul_a_bt(dy, &self.b)?; // (m, r)
        let dx_lora = matmul_a_bt(&dxa, &self.a)?; // (m, d_in)
        dx.axpy(self.scale, &dx_lora)?;
        // dB = scale · (x·A)ᵀ·dy ; dA = scale · xᵀ·(dy·Bᵀ)
        let db = matmul_at_b(&cache.xa, dy)?;
        self.db.axpy(self.scale, &db)?;
        let da = matmul_at_b(&cache.x, &dxa)?;
        self.da.axpy(self.scale, &da)?;
        Ok(dx)
    }

    /// Zeroes adapter gradients.
    pub fn zero_grad(&mut self) {
        self.da.fill(0.0);
        self.db.fill(0.0);
    }

    /// Visits `(param, grad)` pairs: `A` then `B`.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.a.as_mut_slice(), self.da.as_mut_slice());
        f(self.b.as_mut_slice(), self.db.as_mut_slice());
    }

    /// Merges the adapter into the base weight and returns it, consuming
    /// the adapter (deployment-time folding).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn merge(self) -> Result<Tensor, ModelError> {
        let delta = self.a.matmul(&self.b)?;
        let mut w = self.base;
        w.axpy(self.scale, &delta)?;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_adapter_is_identity() {
        let mut rng = TensorRng::seed_from(1);
        let base = Tensor::randn(6, 4, 0.5, &mut rng);
        let lora = LoraLinear::new(base.clone(), 2, 4.0, &mut rng);
        let x = Tensor::randn(3, 6, 1.0, &mut rng);
        let (y, _) = lora.forward(&x).unwrap();
        let plain = x.matmul(&base).unwrap();
        assert!(
            y.approx_eq(&plain, 1e-5),
            "B=0 means adapter must be a no-op"
        );
    }

    #[test]
    fn backward_matches_numeric_for_adapter() {
        let mut rng = TensorRng::seed_from(2);
        let base = Tensor::randn(4, 3, 0.5, &mut rng);
        let mut lora = LoraLinear::new(base, 2, 2.0, &mut rng);
        // make B nonzero so gradients flow both ways
        *lora.b.as_mut_slice().first_mut().unwrap() = 0.3;
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let dy = Tensor::randn(2, 3, 1.0, &mut rng);
        let (_, cache) = lora.forward(&x).unwrap();
        let dx = lora.backward(&cache, &dy).unwrap();
        // numeric check on dx
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let lp: f32 = lora
                .forward(&xp)
                .unwrap()
                .0
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig - eps;
            let lm: f32 = lora
                .forward(&xp)
                .unwrap()
                .0
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig;
            assert!(
                ((lp - lm) / (2.0 * eps) - dx.as_slice()[i]).abs() < 2e-2,
                "dx[{i}]"
            );
        }
        // numeric check on dA
        let mut ap = lora.a.clone();
        for i in 0..ap.len() {
            let orig = ap.as_slice()[i];
            let mut probe = lora.clone();
            probe.a.as_mut_slice()[i] = orig + eps;
            let lp: f32 = probe
                .forward(&x)
                .unwrap()
                .0
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            probe.a.as_mut_slice()[i] = orig - eps;
            let lm: f32 = probe
                .forward(&x)
                .unwrap()
                .0
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            ap.as_mut_slice()[i] = orig;
            assert!(
                ((lp - lm) / (2.0 * eps) - lora.da.as_slice()[i]).abs() < 2e-2,
                "dA[{i}]"
            );
        }
    }

    #[test]
    fn merge_equals_forward() {
        let mut rng = TensorRng::seed_from(3);
        let base = Tensor::randn(5, 5, 0.5, &mut rng);
        let mut lora = LoraLinear::new(base, 3, 6.0, &mut rng);
        // random nonzero B
        lora.b = Tensor::randn(3, 5, 0.1, &mut rng);
        let x = Tensor::randn(2, 5, 1.0, &mut rng);
        let (y, _) = lora.forward(&x).unwrap();
        let merged = lora.merge().unwrap();
        let y2 = x.matmul(&merged).unwrap();
        assert!(y.approx_eq(&y2, 1e-4));
    }

    #[test]
    fn trainable_far_fewer_than_total() {
        let mut rng = TensorRng::seed_from(4);
        let base = Tensor::randn(128, 128, 0.1, &mut rng);
        let lora = LoraLinear::new(base, 4, 8.0, &mut rng);
        assert!(lora.trainable_params() * 10 < lora.total_params());
    }
}
