//! End-to-end numerical gradient checking.
//!
//! Because every backward pass in this repository is hand-written, the test
//! suite verifies the full model's analytic gradients against central
//! finite differences on a tiny configuration. [`gradient_check`] is public
//! so downstream experiments can re-validate after installing compression.

use crate::adaptive::LayerWindow;
use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::{cross_entropy_backward, cross_entropy_forward};

/// Result of a gradient check: the worst absolute deviation between
/// analytic and numeric gradients, and how many parameters were probed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest `|analytic - numeric|` observed.
    pub max_abs_err: f32,
    /// Number of scalar parameters probed.
    pub probed: usize,
}

/// Verifies the model's analytic gradients against central differences.
///
/// Probes every `stride`-th trainable scalar in the given window. Uses the
/// cross-entropy loss of the exit at the window end, matching exactly what
/// [`crate::AdaptiveTuner::step`] optimizes.
///
/// # Errors
///
/// Propagates model errors.
pub fn gradient_check(
    model: &mut EdgeModel,
    tokens: &[usize],
    targets: &[usize],
    batch: usize,
    window: LayerWindow,
    stride: usize,
) -> Result<GradCheckReport, ModelError> {
    let exit_layer = window.exit_layer();
    // analytic gradients
    model.zero_grad();
    let fwd = model.forward_exit(tokens, batch, exit_layer, window.start)?;
    let ce = cross_entropy_forward(&fwd.logits, targets)?;
    let dl = cross_entropy_backward(&ce, targets)?;
    model.backward_exit(&fwd.caches, &dl)?;
    // snapshot analytic grads
    let mut analytic: Vec<(usize, usize, f32)> = Vec::new();
    model.visit_params_window(window, exit_layer, &mut |id, _, g| {
        for (k, &gv) in g.iter().enumerate().step_by(stride.max(1)) {
            analytic.push((id, k, gv));
        }
    });
    let eps = 1e-3f32;
    let mut max_abs_err = 0.0f32;
    let probed = analytic.len();
    for (id, k, gv) in analytic {
        let loss_at = |model: &mut EdgeModel, delta: f32| -> Result<f32, ModelError> {
            model.visit_params_window(window, exit_layer, &mut |pid, p, _| {
                if pid == id {
                    p[k] += delta;
                }
            });
            let fwd = model.forward_exit(tokens, batch, exit_layer, exit_layer + 1)?;
            let loss = cross_entropy_forward(&fwd.logits, targets)?.loss;
            model.visit_params_window(window, exit_layer, &mut |pid, p, _| {
                if pid == id {
                    p[k] -= delta;
                }
            });
            Ok(loss)
        };
        let lp = loss_at(model, eps)?;
        let lm = loss_at(model, -eps)?;
        let numeric = (lp - lm) / (2.0 * eps);
        max_abs_err = max_abs_err.max((numeric - gv).abs());
    }
    Ok(GradCheckReport {
        max_abs_err,
        probed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn check(window: LayerWindow, tied: bool) -> GradCheckReport {
        let mut rng = TensorRng::seed_from(7);
        let cfg = ModelConfig::tiny().with_tied_exits(tied);
        let mut model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq_len)
            .map(|i| (i * 5 + 1) % cfg.vocab_size)
            .collect();
        let targets: Vec<usize> = (0..cfg.seq_len)
            .map(|i| (i * 3 + 2) % cfg.vocab_size)
            .collect();
        gradient_check(&mut model, &tokens, &targets, 1, window, 97).unwrap()
    }

    #[test]
    fn full_model_gradients_are_correct() {
        let report = check(LayerWindow { start: 0, end: 2 }, true);
        assert!(report.probed > 20);
        assert!(
            report.max_abs_err < 2e-2,
            "max grad err {}",
            report.max_abs_err
        );
    }

    #[test]
    fn truncated_window_gradients_are_correct() {
        let report = check(LayerWindow { start: 1, end: 2 }, true);
        assert!(report.probed > 10);
        assert!(
            report.max_abs_err < 2e-2,
            "max grad err {}",
            report.max_abs_err
        );
    }

    #[test]
    fn early_exit_gradients_are_correct() {
        let report = check(LayerWindow { start: 0, end: 1 }, true);
        assert!(
            report.max_abs_err < 2e-2,
            "max grad err {}",
            report.max_abs_err
        );
    }

    #[test]
    fn untied_exit_gradients_are_correct() {
        let report = check(LayerWindow { start: 0, end: 1 }, false);
        assert!(
            report.max_abs_err < 2e-2,
            "max grad err {}",
            report.max_abs_err
        );
    }
}
