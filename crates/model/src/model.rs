use crate::adaptive::LayerWindow;
use crate::block::{Block, BlockCache};
use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::linear::{Linear, LinearCache};
use crate::norm::LayerNorm;
use edge_llm_tensor::{embedding_backward, embedding_forward, LayerNormCache, Tensor, TensorRng};

/// Visitor over `(parameter id, parameter slice, gradient slice)` used by
/// the parameter-traversal methods.
pub type ParamVisitor<'a> = dyn FnMut(usize, &mut [f32], &mut [f32]) + 'a;

/// Read-only visitor over `(parameter id, parameter slice)` — same ids and
/// emission order as [`ParamVisitor`] traversals, without the mutable
/// borrow (so compressed-weight caches survive the walk).
pub type ParamVisitorRo<'a> = dyn FnMut(usize, &[f32]) + 'a;

/// An early-exit head: a LayerNorm plus (optionally) a private unembedding.
///
/// When the head `Linear` is `None` the exit projects through the model's
/// shared unembedding — the parameter-cheap configuration the paper's
/// adaptive layer voting uses by default.
#[derive(Debug, Clone)]
struct ExitHead {
    norm: LayerNorm,
    head: Option<Linear>,
}

/// The Edge-LLM decoder-only transformer.
///
/// Every layer has an early-exit head, so the model can produce logits from
/// any depth; adaptive layer tuning trains a window of blocks against the
/// exit at the window's end, and adaptive layer voting combines several
/// exits at inference time.
#[derive(Debug, Clone)]
pub struct EdgeModel {
    config: ModelConfig,
    tok_emb: Tensor,
    dtok_emb: Tensor,
    pos_emb: Tensor,
    dpos_emb: Tensor,
    blocks: Vec<Block>,
    exits: Vec<ExitHead>,
    shared_head: Linear,
}

/// Caches retained by [`EdgeModel::forward_exit`] for the backward pass.
#[derive(Debug, Clone)]
pub struct ForwardCaches {
    tokens: Vec<usize>,
    batch: usize,
    grad_from: usize,
    exit_layer: usize,
    block_caches: Vec<Option<BlockCache>>,
    exit_norm_cache: LayerNormCache,
    head_cache: LinearCache,
}

impl ForwardCaches {
    /// Approximate activation bytes held alive — the quantity the paper's
    /// memory experiments (F2) track as a function of backprop depth.
    pub fn activation_bytes(&self) -> usize {
        let blocks: usize = self.block_caches.iter().flatten().map(|c| c.bytes()).sum();
        blocks
            + self.exit_norm_cache.xhat.len() * 4
            + self.exit_norm_cache.rstd.len() * 4
            + self.head_cache.bytes()
    }

    /// The exit layer this forward ran to.
    pub fn exit_layer(&self) -> usize {
        self.exit_layer
    }

    /// First layer with gradients enabled.
    pub fn grad_from(&self) -> usize {
        self.grad_from
    }
}

/// Result of a cached partial forward: logits at the requested exit plus the
/// caches needed to run the truncated backward.
#[derive(Debug, Clone)]
pub struct ExitForward {
    /// Logits at the exit layer, `(batch * seq) x vocab`.
    pub logits: Tensor,
    /// Caches for [`EdgeModel::backward_exit`].
    pub caches: ForwardCaches,
}

impl EdgeModel {
    /// Builds a model with randomly initialized parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] if `config` fails validation.
    pub fn new(config: ModelConfig, rng: &mut TensorRng) -> Result<Self, ModelError> {
        config.validate()?;
        let c = config.d_model;
        let tok_emb = Tensor::randn(config.vocab_size, c, 0.02, rng);
        let pos_emb = Tensor::randn(config.seq_len, c, 0.02, rng);
        let blocks = (0..config.n_layers)
            .map(|_| Block::new(c, config.n_heads, config.d_ff, rng))
            .collect();
        let exits = (0..config.n_layers)
            .map(|_| ExitHead {
                norm: LayerNorm::new(c),
                head: if config.tie_exit_heads {
                    None
                } else {
                    Some(Linear::new_no_bias(c, config.vocab_size, rng))
                },
            })
            .collect();
        let shared_head = Linear::new_no_bias(c, config.vocab_size, rng);
        Ok(EdgeModel {
            dtok_emb: Tensor::zeros(config.vocab_size, c),
            dpos_emb: Tensor::zeros(config.seq_len, c),
            config,
            tok_emb,
            pos_emb,
            blocks,
            exits,
            shared_head,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Model depth in blocks.
    pub fn n_layers(&self) -> usize {
        self.blocks.len()
    }

    /// Mutable access to block `l` (compression policies install masks and
    /// quantization schemes through this).
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn block_mut(&mut self, l: usize) -> &mut Block {
        &mut self.blocks[l]
    }

    /// Read access to block `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn block(&self, l: usize) -> &Block {
        &self.blocks[l]
    }

    /// Total number of trainable scalars (including untied exit heads).
    pub fn num_params(&self) -> usize {
        let blocks: usize = self.blocks.iter().map(|b| b.num_params()).sum();
        let exits: usize = self
            .exits
            .iter()
            .map(|e| e.norm.num_params() + e.head.as_ref().map_or(0, |h| h.num_params()))
            .sum();
        self.tok_emb.len() + self.pos_emb.len() + blocks + exits + self.shared_head.num_params()
    }

    fn check_tokens(&self, tokens: &[usize], batch: usize) -> Result<(), ModelError> {
        let expected = batch * self.config.seq_len;
        if tokens.len() != expected {
            return Err(ModelError::BadBatch {
                expected,
                actual: tokens.len(),
            });
        }
        Ok(())
    }

    /// Embedding of a single token at position `pos` (incremental decoding).
    pub(crate) fn embed_one(&self, token: usize, pos: usize) -> Result<Tensor, ModelError> {
        if token >= self.config.vocab_size {
            return Err(ModelError::BadConfig {
                reason: format!(
                    "token {token} outside vocabulary {}",
                    self.config.vocab_size
                ),
            });
        }
        if pos >= self.config.seq_len {
            return Err(ModelError::LayerOutOfRange {
                layer: pos,
                depth: self.config.seq_len,
            });
        }
        let mut x = Tensor::zeros(1, self.config.d_model);
        for ((o, &e), &p) in x
            .row_mut(0)
            .iter_mut()
            .zip(self.tok_emb.row(token))
            .zip(self.pos_emb.row(pos))
        {
            *o = e + p;
        }
        Ok(x)
    }

    fn embed(&self, tokens: &[usize], batch: usize) -> Result<Tensor, ModelError> {
        let seq = self.config.seq_len;
        let mut x = embedding_forward(tokens, &self.tok_emb)?;
        for b in 0..batch {
            for t in 0..seq {
                let pos = self.pos_emb.row(t);
                for (xv, &pv) in x.row_mut(b * seq + t).iter_mut().zip(pos.iter()) {
                    *xv += pv;
                }
            }
        }
        Ok(x)
    }

    pub(crate) fn exit_logits_no_cache(
        &self,
        h: &Tensor,
        exit_layer: usize,
    ) -> Result<Tensor, ModelError> {
        let exit = &self.exits[exit_layer];
        let n = exit.norm.forward_no_cache(h)?;
        match &exit.head {
            Some(own) => own.forward_no_cache(&n),
            None => self.shared_head.forward_no_cache(&n),
        }
    }

    /// As [`EdgeModel::exit_logits_no_cache`] but with the unembedding
    /// applied row-independently ([`Linear::forward_rows_no_cache`]), so a
    /// batch of hidden states from different sequences produces the same
    /// per-row logits as separate single-row calls (the exit norm is
    /// already row-wise). Used by the batched serving path.
    pub(crate) fn exit_logits_rows(
        &self,
        h: &Tensor,
        exit_layer: usize,
    ) -> Result<Tensor, ModelError> {
        let exit = &self.exits[exit_layer];
        let n = exit.norm.forward_no_cache(h)?;
        match &exit.head {
            Some(own) => own.forward_rows_no_cache(&n),
            None => self.shared_head.forward_rows_no_cache(&n),
        }
    }

    /// Runs the model to `exit_layer` (inclusive), keeping backward caches
    /// only for blocks `grad_from..=exit_layer`.
    ///
    /// Blocks past the exit never execute — the forward-compute saving — and
    /// blocks before `grad_from` run without caches — the memory saving.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::LayerOutOfRange`] for a bad exit layer and
    /// [`ModelError::BadBatch`] for a wrong token count.
    pub fn forward_exit(
        &self,
        tokens: &[usize],
        batch: usize,
        exit_layer: usize,
        grad_from: usize,
    ) -> Result<ExitForward, ModelError> {
        if exit_layer >= self.n_layers() {
            return Err(ModelError::LayerOutOfRange {
                layer: exit_layer,
                depth: self.n_layers(),
            });
        }
        self.check_tokens(tokens, batch)?;
        let seq = self.config.seq_len;
        let mut x = self.embed(tokens, batch)?;
        let mut block_caches: Vec<Option<BlockCache>> = vec![None; self.n_layers()];
        for (l, cache_slot) in block_caches.iter_mut().enumerate().take(exit_layer + 1) {
            if l >= grad_from {
                let (y, cache) = self.blocks[l].forward(&x, batch, seq)?;
                *cache_slot = Some(cache);
                x = y;
            } else {
                x = self.blocks[l].forward_no_cache(&x, batch, seq)?;
            }
        }
        let exit = &self.exits[exit_layer];
        let (n, exit_norm_cache) = exit.norm.forward(&x)?;
        let (logits, head_cache) = match &exit.head {
            Some(own) => own.forward(&n)?,
            None => self.shared_head.forward(&n)?,
        };
        Ok(ExitForward {
            logits,
            caches: ForwardCaches {
                tokens: tokens.to_vec(),
                batch,
                grad_from,
                exit_layer,
                block_caches,
                exit_norm_cache,
                head_cache,
            },
        })
    }

    /// Truncated backward from `dlogits` through the exit head and the
    /// blocks `grad_from..=exit_layer`, accumulating gradients in place.
    ///
    /// Gradients reach the embeddings only when `grad_from == 0`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn backward_exit(
        &mut self,
        caches: &ForwardCaches,
        dlogits: &Tensor,
    ) -> Result<(), ModelError> {
        let exit_layer = caches.exit_layer;
        let dn = {
            let exit = &mut self.exits[exit_layer];
            match &mut exit.head {
                Some(own) => own.backward(&caches.head_cache, dlogits)?,
                None => self.shared_head.backward(&caches.head_cache, dlogits)?,
            }
        };
        let mut dx = self.exits[exit_layer]
            .norm
            .backward(&caches.exit_norm_cache, &dn)?;
        for l in (caches.grad_from..=exit_layer).rev() {
            let cache = caches.block_caches[l]
                .as_ref()
                .ok_or(ModelError::LayerOutOfRange {
                    layer: l,
                    depth: self.n_layers(),
                })?;
            dx = self.blocks[l].backward(cache, &dx)?;
        }
        if caches.grad_from == 0 {
            embedding_backward(&caches.tokens, &dx, &mut self.dtok_emb)?;
            let seq = self.config.seq_len;
            for b in 0..caches.batch {
                for t in 0..seq {
                    let src = dx.row(b * seq + t);
                    for (acc, &g) in self.dpos_emb.row_mut(t).iter_mut().zip(src.iter()) {
                        *acc += g;
                    }
                }
            }
        }
        Ok(())
    }

    /// Full-depth logits from the final exit (inference path, no caches).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadBatch`] for a wrong token count.
    pub fn logits(&self, tokens: &[usize], batch: usize) -> Result<Tensor, ModelError> {
        self.check_tokens(tokens, batch)?;
        let seq = self.config.seq_len;
        let mut x = self.embed(tokens, batch)?;
        for block in &self.blocks {
            x = block.forward_no_cache(&x, batch, seq)?;
        }
        self.exit_logits_no_cache(&x, self.n_layers() - 1)
    }

    /// Logits from every exit in `exit_layers` in one forward sweep
    /// (inference path for adaptive layer voting).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::LayerOutOfRange`] if any exit is out of range.
    pub fn logits_at_exits(
        &self,
        tokens: &[usize],
        batch: usize,
        exit_layers: &[usize],
    ) -> Result<Vec<Tensor>, ModelError> {
        self.check_tokens(tokens, batch)?;
        let max_exit = match exit_layers.iter().max() {
            Some(&m) => m,
            None => return Ok(Vec::new()),
        };
        if max_exit >= self.n_layers() {
            return Err(ModelError::LayerOutOfRange {
                layer: max_exit,
                depth: self.n_layers(),
            });
        }
        let seq = self.config.seq_len;
        let mut x = self.embed(tokens, batch)?;
        let mut per_layer: Vec<Option<Tensor>> = vec![None; max_exit + 1];
        for (l, logits_slot) in per_layer.iter_mut().enumerate().take(max_exit + 1) {
            x = self.blocks[l].forward_no_cache(&x, batch, seq)?;
            if exit_layers.contains(&l) {
                *logits_slot = Some(self.exit_logits_no_cache(&x, l)?);
            }
        }
        Ok(exit_layers
            .iter()
            .map(|&l| per_layer[l].take().expect("computed above"))
            .collect())
    }

    /// Zeroes every gradient buffer in the model.
    pub fn zero_grad(&mut self) {
        self.dtok_emb.fill(0.0);
        self.dpos_emb.fill(0.0);
        for b in &mut self.blocks {
            b.zero_grad();
        }
        for e in &mut self.exits {
            e.norm.zero_grad();
            if let Some(h) = &mut e.head {
                h.zero_grad();
            }
        }
        self.shared_head.zero_grad();
    }

    /// Re-applies every installed pruning mask (call after optimizer steps).
    pub fn enforce_masks(&mut self) {
        for b in &mut self.blocks {
            b.enforce_masks();
        }
        self.shared_head.enforce_mask();
        for e in &mut self.exits {
            if let Some(h) = &mut e.head {
                h.enforce_mask();
            }
        }
    }

    /// Visits `(id, param, grad)` for every parameter whose module is
    /// *trainable* under `window` with the exit at `exit_layer`:
    ///
    /// * embeddings — only when the window starts at layer 0,
    /// * blocks inside the window,
    /// * the exit norm (and untied head) at `exit_layer`,
    /// * the shared head — whenever the exit at `exit_layer` is tied to it.
    ///
    /// Ids are assigned by enumerating the **whole** model in a fixed order,
    /// so a given parameter keeps its id across different windows — which is
    /// what lets stateful optimizers keep per-parameter state.
    pub fn visit_params_window(
        &mut self,
        window: LayerWindow,
        exit_layer: usize,
        f: &mut ParamVisitor<'_>,
    ) {
        let mut id = 0usize;
        {
            let active = window.start == 0;
            if active {
                f(
                    id,
                    self.tok_emb.as_mut_slice(),
                    self.dtok_emb.as_mut_slice(),
                );
            }
            id += 1;
            if active {
                f(
                    id,
                    self.pos_emb.as_mut_slice(),
                    self.dpos_emb.as_mut_slice(),
                );
            }
            id += 1;
        }
        for (l, block) in self.blocks.iter_mut().enumerate() {
            if window.contains(l) {
                block.visit_params(&mut |p, g| {
                    f(id, p, g);
                    id += 1;
                });
            } else {
                // Frozen blocks advance the id counter by count only:
                // borrowing their parameters mutably would invalidate
                // their compressed-weight caches every iteration.
                id += block.param_slice_count();
            }
        }
        for (l, exit) in self.exits.iter_mut().enumerate() {
            let active = l == exit_layer;
            if active {
                exit.norm.visit_params(&mut |p, g| {
                    f(id, p, g);
                    id += 1;
                });
            } else {
                id += exit.norm.param_slice_count();
            }
            if let Some(h) = &mut exit.head {
                if active {
                    h.visit_params(&mut |p, g| {
                        f(id, p, g);
                        id += 1;
                    });
                } else {
                    id += h.param_slice_count();
                }
            }
        }
        if self.exits[exit_layer].head.is_none() {
            self.shared_head.visit_params(&mut |p, g| {
                f(id, p, g);
                id += 1;
            });
        }
    }

    /// Read-only mirror of [`EdgeModel::visit_params_window`]: identical
    /// ids, identical emission order, shared borrows.
    pub fn visit_params_window_ro(
        &self,
        window: LayerWindow,
        exit_layer: usize,
        f: &mut ParamVisitorRo<'_>,
    ) {
        let mut id = 0usize;
        {
            let active = window.start == 0;
            if active {
                f(id, self.tok_emb.as_slice());
            }
            id += 1;
            if active {
                f(id, self.pos_emb.as_slice());
            }
            id += 1;
        }
        for (l, block) in self.blocks.iter().enumerate() {
            if window.contains(l) {
                block.visit_params_ro(&mut |p| {
                    f(id, p);
                    id += 1;
                });
            } else {
                id += block.param_slice_count();
            }
        }
        for (l, exit) in self.exits.iter().enumerate() {
            let active = l == exit_layer;
            if active {
                exit.norm.visit_params_ro(&mut |p| {
                    f(id, p);
                    id += 1;
                });
            } else {
                id += exit.norm.param_slice_count();
            }
            if let Some(h) = &exit.head {
                if active {
                    h.visit_params_ro(&mut |p| {
                        f(id, p);
                        id += 1;
                    });
                } else {
                    id += h.param_slice_count();
                }
            }
        }
        if self.exits[exit_layer].head.is_none() {
            self.shared_head.visit_params_ro(&mut |p| {
                f(id, p);
                id += 1;
            });
        }
    }

    /// Visits every parameter in the model (full tuning baseline).
    pub fn visit_params_all(&mut self, f: &mut ParamVisitor<'_>) {
        let full = LayerWindow {
            start: 0,
            end: self.n_layers(),
        };
        let last = self.n_layers() - 1;
        // The full window activates everything except non-final exit heads;
        // enumerate those too by visiting each exit as its own "exit layer".
        let mut id_seen = std::collections::HashSet::new();
        for exit in 0..self.n_layers() {
            let keep = exit == last;
            self.visit_params_window(full, exit, &mut |id, p, g| {
                if (keep || !id_seen.contains(&id)) && id_seen.insert(id) {
                    f(id, p, g);
                }
            });
        }
    }

    /// Read-only mirror of [`EdgeModel::visit_params_all`] — identical ids
    /// **and emission order** (it replicates the same sweep-with-dedup
    /// structure), so checkpoint and model-file byte layouts are unchanged
    /// while the weight caches survive serialization.
    pub fn visit_params_all_ro(&self, f: &mut ParamVisitorRo<'_>) {
        let full = LayerWindow {
            start: 0,
            end: self.n_layers(),
        };
        let last = self.n_layers() - 1;
        let mut id_seen = std::collections::HashSet::new();
        for exit in 0..self.n_layers() {
            let keep = exit == last;
            self.visit_params_window_ro(full, exit, &mut |id, p| {
                if (keep || !id_seen.contains(&id)) && id_seen.insert(id) {
                    f(id, p);
                }
            });
        }
    }

    /// Quantizes every compressed projection's weight into packed integer
    /// codes so the no-cache forward paths (inference, serving) run the
    /// blocked row-dequantizing kernel. Call after loading a model for
    /// generation/serving; layers without a quant scheme are untouched.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures (e.g. non-finite weights).
    pub fn pack_frozen_weights(&self) -> Result<(), ModelError> {
        for b in &self.blocks {
            b.pack_weights()?;
        }
        self.shared_head.pack_weights()?;
        for e in &self.exits {
            if let Some(h) = &e.head {
                h.pack_weights()?;
            }
        }
        Ok(())
    }

    /// Enables or disables the compressed-weight cache on every projection
    /// (enabled by default). Disabling reproduces the
    /// recompute-every-forward baseline bit-for-bit; the benchmarks use it
    /// to measure the cache's win.
    pub fn set_weight_cache_enabled(&mut self, enabled: bool) {
        for b in &mut self.blocks {
            b.set_cache_enabled(enabled);
        }
        self.shared_head.set_cache_enabled(enabled);
        for e in &mut self.exits {
            if let Some(h) = &mut e.head {
                h.set_cache_enabled(enabled);
            }
        }
    }

    /// Enables or disables the packed integer-GEMM decode route on every
    /// projection (enabled by default). Only layers carrying both a
    /// symmetric per-row weight scheme and an asymmetric per-row
    /// activation scheme at ≤ 8 bits are affected; disabling reproduces
    /// the f32 row-dequantizing baseline the decode benchmark gates
    /// against.
    pub fn set_integer_decode_enabled(&mut self, enabled: bool) {
        for b in &mut self.blocks {
            b.set_integer_decode_enabled(enabled);
        }
        self.shared_head.set_integer_decode_enabled(enabled);
        for e in &mut self.exits {
            if let Some(h) = &mut e.head {
                h.set_integer_decode_enabled(enabled);
            }
        }
    }

    /// Bytes the decode path keeps resident for projection weights (block
    /// QKV/proj/fc1/fc2 plus unembedding heads): packed-code bytes for
    /// packed layers, dense f32 bytes otherwise. Embeddings and norms are
    /// excluded — they are never quantized.
    pub fn decode_weight_bytes(&self) -> usize {
        let blocks: usize = self.blocks.iter().map(|b| b.weight_storage_bytes()).sum();
        let exits: usize = self
            .exits
            .iter()
            .map(|e| e.head.as_ref().map_or(0, |h| h.weight_storage_bytes()))
            .sum();
        blocks + exits + self.shared_head.weight_storage_bytes()
    }

    /// Lifetime re-quantization count of each block's projections, in
    /// layer order. The tuner diffs consecutive snapshots to report how
    /// many *layers* re-quantized in one step — the quantity the depth-1
    /// regression test pins at exactly one.
    pub fn block_requant_counts(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.requant_count()).collect()
    }

    /// Aggregate compressed-weight-cache telemetry over every projection
    /// (blocks, exit heads, shared head).
    pub fn weight_cache_stats(&self) -> WeightCacheStats {
        let mut stats = WeightCacheStats::default();
        for b in &self.blocks {
            stats.requants += b.requant_count();
            stats.invalidations += b.cache_invalidation_count();
        }
        for e in &self.exits {
            if let Some(h) = &e.head {
                stats.requants += h.requant_count();
                stats.invalidations += h.cache_invalidation_count();
            }
        }
        stats.requants += self.shared_head.requant_count();
        stats.invalidations += self.shared_head.cache_invalidation_count();
        stats
    }
}

/// Model-wide compressed-weight-cache tallies (monotonic over the model's
/// lifetime; diff snapshots for per-step deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightCacheStats {
    /// Effective-weight materializations with a quant scheme installed.
    pub requants: u64,
    /// Cache evictions that dropped a cached weight form.
    pub invalidations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_tensor::{cross_entropy_backward, cross_entropy_forward};

    fn tiny_model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    fn tokens_for(model: &EdgeModel, batch: usize, seed: u64) -> Vec<usize> {
        let mut rng = TensorRng::seed_from(seed);
        (0..batch * model.config().seq_len)
            .map(|_| rng.index(model.config().vocab_size))
            .collect()
    }

    #[test]
    fn logits_shape() {
        let model = tiny_model(1);
        let tokens = tokens_for(&model, 2, 10);
        let logits = model.logits(&tokens, 2).unwrap();
        assert_eq!(logits.shape(), (2 * 8, 32));
    }

    #[test]
    fn forward_exit_matches_full_forward_at_last_layer() {
        let model = tiny_model(2);
        let tokens = tokens_for(&model, 1, 11);
        let full = model.logits(&tokens, 1).unwrap();
        let exit = model
            .forward_exit(&tokens, 1, model.n_layers() - 1, 0)
            .unwrap();
        assert!(full.approx_eq(&exit.logits, 1e-5));
    }

    #[test]
    fn early_exit_differs_from_final() {
        let model = tiny_model(3);
        let tokens = tokens_for(&model, 1, 12);
        let exits = model.logits_at_exits(&tokens, 1, &[0, 1]).unwrap();
        assert_eq!(exits.len(), 2);
        assert!(!exits[0].approx_eq(&exits[1], 1e-3));
    }

    #[test]
    fn truncated_forward_skips_caches() {
        let model = tiny_model(4);
        let tokens = tokens_for(&model, 1, 13);
        let full = model.forward_exit(&tokens, 1, 1, 0).unwrap();
        let trunc = model.forward_exit(&tokens, 1, 1, 1).unwrap();
        assert!(full.caches.activation_bytes() > trunc.caches.activation_bytes());
        assert!(trunc.caches.block_caches[0].is_none());
        assert!(trunc.caches.block_caches[1].is_some());
        // logits identical either way
        assert!(full.logits.approx_eq(&trunc.logits, 1e-5));
    }

    #[test]
    fn backward_only_touches_window() {
        let mut model = tiny_model(5);
        let tokens = tokens_for(&model, 1, 14);
        let targets: Vec<usize> = tokens.clone();
        let fwd = model.forward_exit(&tokens, 1, 1, 1).unwrap();
        let ce = cross_entropy_forward(&fwd.logits, &targets).unwrap();
        let dl = cross_entropy_backward(&ce, &targets).unwrap();
        model.zero_grad();
        model.backward_exit(&fwd.caches, &dl).unwrap();
        // block 0 frozen: zero grads
        let mut b0_grad = 0.0f32;
        model.blocks[0].visit_params(&mut |_, g| b0_grad += g.iter().map(|x| x.abs()).sum::<f32>());
        assert_eq!(b0_grad, 0.0);
        let mut b1_grad = 0.0f32;
        model.blocks[1].visit_params(&mut |_, g| b1_grad += g.iter().map(|x| x.abs()).sum::<f32>());
        assert!(b1_grad > 0.0);
        // embeddings frozen because grad_from > 0
        assert_eq!(model.dtok_emb.sum(), 0.0);
    }

    #[test]
    fn full_window_reaches_embeddings() {
        let mut model = tiny_model(6);
        let tokens = tokens_for(&model, 1, 15);
        let fwd = model.forward_exit(&tokens, 1, 1, 0).unwrap();
        let ce = cross_entropy_forward(&fwd.logits, &tokens).unwrap();
        let dl = cross_entropy_backward(&ce, &tokens).unwrap();
        model.zero_grad();
        model.backward_exit(&fwd.caches, &dl).unwrap();
        let g: f32 = model.dtok_emb.as_slice().iter().map(|x| x.abs()).sum();
        assert!(g > 0.0);
        let gp: f32 = model.dpos_emb.as_slice().iter().map(|x| x.abs()).sum();
        assert!(gp > 0.0);
    }

    #[test]
    fn window_ids_are_stable_across_windows() {
        let mut model = tiny_model(7);
        let mut ids_a = Vec::new();
        model.visit_params_window(LayerWindow { start: 0, end: 1 }, 0, &mut |id, _, _| {
            ids_a.push(id)
        });
        let mut ids_b = Vec::new();
        model.visit_params_window(LayerWindow { start: 1, end: 2 }, 1, &mut |id, _, _| {
            ids_b.push(id)
        });
        // tied shared head appears in both windows, with the same id
        let shared = *ids_a.last().unwrap();
        assert_eq!(ids_a.last(), ids_b.last());
        // apart from the shared head, the two disjoint windows train
        // disjoint parameters (embeddings 0/1 belong to window A only)
        for id in &ids_a {
            if *id > 1 && *id != shared {
                assert!(
                    !ids_b.contains(id),
                    "id {id} appears in both disjoint windows"
                );
            }
        }
    }

    #[test]
    fn visit_all_covers_every_param_once() {
        let mut model = tiny_model(8);
        let mut total = 0usize;
        let mut seen = std::collections::HashSet::new();
        model.visit_params_all(&mut |id, p, _| {
            assert!(seen.insert(id), "duplicate id {id}");
            total += p.len();
        });
        assert_eq!(total, model.num_params());
    }

    #[test]
    fn ro_visitors_mirror_mutable_ids_order_and_content() {
        for tied in [true, false] {
            let mut rng = TensorRng::seed_from(20);
            let cfg = ModelConfig::tiny().with_tied_exits(tied);
            let mut model = EdgeModel::new(cfg, &mut rng).unwrap();
            let mut mutable: Vec<(usize, Vec<f32>)> = Vec::new();
            model.visit_params_all(&mut |id, p, _| mutable.push((id, p.to_vec())));
            let mut ro: Vec<(usize, Vec<f32>)> = Vec::new();
            model.visit_params_all_ro(&mut |id, p| ro.push((id, p.to_vec())));
            assert_eq!(mutable, ro, "tied={tied}");
            // window traversals mirror too
            let window = LayerWindow { start: 1, end: 2 };
            let mut wm: Vec<(usize, Vec<f32>)> = Vec::new();
            model.visit_params_window(window, 1, &mut |id, p, _| wm.push((id, p.to_vec())));
            let mut wr: Vec<(usize, Vec<f32>)> = Vec::new();
            model.visit_params_window_ro(window, 1, &mut |id, p| wr.push((id, p.to_vec())));
            assert_eq!(wm, wr, "tied={tied} window");
        }
    }

    #[test]
    fn window_visit_skips_frozen_block_caches() {
        use edge_llm_quant::{BitWidth, QuantScheme};
        let mut model = tiny_model(21);
        let scheme = QuantScheme::symmetric(BitWidth::W4);
        for l in 0..model.n_layers() {
            let b = model.block_mut(l);
            b.attn_mut().qkv_mut().set_quant(Some(scheme));
            b.attn_mut().proj_mut().set_quant(Some(scheme));
            b.mlp_mut().fc1_mut().set_quant(Some(scheme));
            b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        }
        // warm every block's cache with a forward pass
        let tokens = tokens_for(&model, 1, 22);
        model.logits(&tokens, 1).unwrap();
        let cached = |m: &EdgeModel, l: usize| m.block(l).attn().linears().0.has_cached_weight();
        assert!(cached(&model, 0) && cached(&model, 1));
        // an optimizer pass over window [1, 2) must leave block 0's cache
        model.visit_params_window(LayerWindow { start: 1, end: 2 }, 1, &mut |_, _, _| {});
        assert!(cached(&model, 0), "frozen block cache must survive");
        assert!(!cached(&model, 1), "trained block cache must be dropped");
        // a read-only sweep touches nothing
        model.logits(&tokens, 1).unwrap();
        model.visit_params_all_ro(&mut |_, _| {});
        assert!(cached(&model, 0) && cached(&model, 1));
    }

    #[test]
    fn packed_model_logits_are_bit_identical() {
        use edge_llm_quant::{BitWidth, QuantScheme};
        let mut model = tiny_model(23);
        let scheme = QuantScheme::symmetric(BitWidth::W2);
        for l in 0..model.n_layers() {
            let b = model.block_mut(l);
            b.attn_mut().qkv_mut().set_quant(Some(scheme));
            b.mlp_mut().fc1_mut().set_quant(Some(scheme));
        }
        let tokens = tokens_for(&model, 1, 24);
        let dense = model.logits(&tokens, 1).unwrap();
        model.pack_frozen_weights().unwrap();
        assert!(model.block(0).attn().linears().0.is_packed());
        let packed = model.logits(&tokens, 1).unwrap();
        assert_eq!(dense.as_slice(), packed.as_slice());
        // and identical to the cache-disabled recompute baseline
        model.set_weight_cache_enabled(false);
        let baseline = model.logits(&tokens, 1).unwrap();
        assert_eq!(baseline.as_slice(), packed.as_slice());
    }

    #[test]
    fn decode_weight_bytes_shrink_after_packing() {
        use edge_llm_quant::{BitWidth, QuantScheme};
        let mut model = tiny_model(25);
        let before = model.decode_weight_bytes();
        let scheme = QuantScheme::symmetric(BitWidth::W4);
        for l in 0..model.n_layers() {
            let b = model.block_mut(l);
            b.attn_mut().qkv_mut().set_quant(Some(scheme));
            b.attn_mut().proj_mut().set_quant(Some(scheme));
            b.mlp_mut().fc1_mut().set_quant(Some(scheme));
            b.mlp_mut().fc2_mut().set_quant(Some(scheme));
        }
        assert_eq!(model.decode_weight_bytes(), before);
        let blocks_dense: usize = (0..model.n_layers())
            .map(|l| model.block(l).weight_storage_bytes())
            .sum();
        model.pack_frozen_weights().unwrap();
        let blocks_packed: usize = (0..model.n_layers())
            .map(|l| model.block(l).weight_storage_bytes())
            .sum();
        // W4 codes are 8x smaller than f32; per-row scales add some back
        // (significant at the tiny config's short rows)
        assert!(
            blocks_packed * 5 < blocks_dense,
            "packed {blocks_packed} vs dense {blocks_dense}"
        );
        assert!(model.decode_weight_bytes() < before);
    }

    #[test]
    fn bad_inputs_error() {
        let model = tiny_model(9);
        let tokens = tokens_for(&model, 1, 16);
        assert!(model.logits(&tokens[..5], 1).is_err());
        assert!(model.forward_exit(&tokens, 1, 99, 0).is_err());
        assert!(model.logits_at_exits(&tokens, 1, &[7]).is_err());
    }

    #[test]
    fn untied_exits_have_private_heads() {
        let mut rng = TensorRng::seed_from(10);
        let cfg = ModelConfig::tiny().with_tied_exits(false);
        let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let tied = EdgeModel::new(cfg.with_tied_exits(true), &mut rng).unwrap();
        assert!(model.num_params() > tied.num_params());
    }
}
