//! Learning-rate schedules for adaptation runs.
//!
//! The tuner itself is schedule-agnostic: call [`LrSchedule::lr_at`] each
//! iteration and push the value into the optimizer with `set_lr`.

/// A deterministic learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// A fixed rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup to `lr` over `warmup` steps, then cosine decay to
    /// `min_lr` at `total` steps (clamped afterwards).
    CosineWithWarmup {
        /// Peak rate.
        lr: f32,
        /// Floor rate.
        min_lr: f32,
        /// Warmup steps.
        warmup: usize,
        /// Total steps of the decay horizon.
        total: usize,
    },
    /// Multiply by `gamma` every `every` steps.
    Step {
        /// Initial rate.
        lr: f32,
        /// Decay factor per stage (usually < 1).
        gamma: f32,
        /// Steps per stage.
        every: usize,
    },
}

impl LrSchedule {
    /// The learning rate at iteration `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::CosineWithWarmup {
                lr,
                min_lr,
                warmup,
                total,
            } => {
                if warmup > 0 && step < warmup {
                    return lr * (step + 1) as f32 / warmup as f32;
                }
                let total = total.max(warmup + 1);
                let progress = ((step - warmup) as f32 / (total - warmup) as f32).clamp(0.0, 1.0);
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
            LrSchedule::Step { lr, gamma, every } => {
                let stages = step.checked_div(every).unwrap_or(0);
                lr * gamma.powi(stages as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn cosine_warms_up_then_decays() {
        let s = LrSchedule::CosineWithWarmup {
            lr: 1.0,
            min_lr: 0.1,
            warmup: 10,
            total: 110,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!(s.lr_at(5) < s.lr_at(9));
        assert!((s.lr_at(10) - 1.0).abs() < 0.01);
        assert!(s.lr_at(60) < 1.0);
        assert!((s.lr_at(110) - 0.1).abs() < 1e-3);
        // clamps after the horizon
        assert!((s.lr_at(10_000) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn cosine_halfway_is_midpoint() {
        let s = LrSchedule::CosineWithWarmup {
            lr: 1.0,
            min_lr: 0.0,
            warmup: 0,
            total: 100,
        };
        assert!((s.lr_at(50) - 0.5).abs() < 0.02);
    }

    #[test]
    fn step_decays_in_stages() {
        let s = LrSchedule::Step {
            lr: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn step_with_zero_period_never_decays() {
        let s = LrSchedule::Step {
            lr: 1.0,
            gamma: 0.5,
            every: 0,
        };
        assert_eq!(s.lr_at(100), 1.0);
    }
}
