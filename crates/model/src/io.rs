//! Checkpoint serialization.
//!
//! An adapted model is only useful if it can be stored on the device and
//! reloaded. The format is a small self-describing binary: a magic tag and
//! version, the [`ModelConfig`], then every parameter tensor in the
//! model's canonical visitation order (little-endian `f32`). Compression
//! state (masks/quant hooks) is runtime configuration and is re-installed
//! by re-applying the policy after loading.

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::model::EdgeModel;
use crate::optim::{Sgd, SgdState};
use edge_llm_tensor::{RngState, TensorRng, RNG_STATE_BYTES};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EDGELLM\x01";
const TRAIN_MAGIC: &[u8; 8] = b"EDGELLM\x02";
/// Upper bound on a plausible payload, so a corrupt length field fails
/// cleanly instead of attempting a giant allocation.
const MAX_PAYLOAD: u64 = 1 << 32;

fn io_err(e: std::io::Error) -> ModelError {
    ModelError::BadConfig {
        reason: format!("checkpoint io error: {e}"),
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), ModelError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ModelError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

fn config_fields(config: &ModelConfig) -> [u64; 7] {
    [
        config.vocab_size as u64,
        config.d_model as u64,
        config.n_heads as u64,
        config.n_layers as u64,
        config.seq_len as u64,
        config.d_ff as u64,
        config.tie_exit_heads as u64,
    ]
}

/// Serializes `model` to `writer`.
///
/// Parameters are reached through the model's read-only canonical visitor
/// ([`EdgeModel::visit_params_all_ro`]), which emits the same bytes in the
/// same order as the mutable visitor without invalidating any
/// compressed-weight caches.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] wrapping any underlying I/O error.
pub fn save_model<W: Write>(model: &EdgeModel, writer: &mut W) -> Result<(), ModelError> {
    writer.write_all(MAGIC).map_err(io_err)?;
    for f in config_fields(model.config()) {
        write_u64(writer, f)?;
    }
    let mut result = Ok(());
    let mut total = 0u64;
    model.visit_params_all_ro(&mut |_, p| {
        if result.is_err() {
            return;
        }
        total += p.len() as u64;
        for v in p.iter() {
            if let Err(e) = writer.write_all(&v.to_le_bytes()) {
                result = Err(io_err(e));
                return;
            }
        }
    });
    result?;
    write_u64(writer, total)
}

/// Deserializes a model previously written by [`save_model`].
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for a bad magic tag, a corrupt or
/// truncated stream, or a parameter-count mismatch.
pub fn load_model<R: Read>(reader: &mut R) -> Result<EdgeModel, ModelError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(ModelError::BadConfig {
            reason: "not an edge-llm checkpoint".into(),
        });
    }
    let mut f = [0u64; 7];
    for v in f.iter_mut() {
        *v = read_u64(reader)?;
    }
    let config = ModelConfig {
        vocab_size: f[0] as usize,
        d_model: f[1] as usize,
        n_heads: f[2] as usize,
        n_layers: f[3] as usize,
        seq_len: f[4] as usize,
        d_ff: f[5] as usize,
        tie_exit_heads: f[6] != 0,
    };
    let mut rng = TensorRng::seed_from(0);
    let mut model = EdgeModel::new(config, &mut rng)?;
    let mut result = Ok(());
    let mut total = 0u64;
    model.visit_params_all(&mut |_, p, _| {
        if result.is_err() {
            return;
        }
        total += p.len() as u64;
        let mut buf = [0u8; 4];
        for v in p.iter_mut() {
            match reader.read_exact(&mut buf) {
                Ok(()) => *v = f32::from_le_bytes(buf),
                Err(e) => {
                    result = Err(io_err(e));
                    return;
                }
            }
        }
    });
    result?;
    let recorded = read_u64(reader)?;
    if recorded != total {
        return Err(ModelError::BadConfig {
            reason: format!("checkpoint holds {recorded} params, model needs {total}"),
        });
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// Training checkpoints (format v2)
// ---------------------------------------------------------------------------

fn ck(reason: impl Into<String>) -> ModelError {
    ModelError::Checkpoint {
        reason: reason.into(),
    }
}

/// FNV-1a 64-bit hash, the checkpoint envelope's integrity check.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u64(cur: &mut &[u8]) -> Result<u64, ModelError> {
    let mut b = [0u8; 8];
    cur.read_exact(&mut b)
        .map_err(|_| ck("truncated payload"))?;
    Ok(u64::from_le_bytes(b))
}

fn take_f32(cur: &mut &[u8]) -> Result<f32, ModelError> {
    let mut b = [0u8; 4];
    cur.read_exact(&mut b)
        .map_err(|_| ck("truncated payload"))?;
    Ok(f32::from_le_bytes(b))
}

/// A full snapshot of an adaptation run: model parameters, optimizer
/// state, schedule cursor, RNG state, and an opaque caller blob (the
/// pipeline stores its compression policy there).
///
/// The on-disk format is versioned (`EDGELLM\x02`, distinct from the
/// model-only `\x01` format) and framed as
/// `magic | payload_len | payload | fnv1a64(payload)`, so truncation and
/// bit corruption are both detected before any field is trusted.
/// [`TrainingCheckpoint::save_file`] writes atomically (temp file in the
/// same directory, then rename) so a crash mid-write never clobbers the
/// previous good checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// Architecture of the checkpointed model.
    pub config: ModelConfig,
    /// Every parameter in the model's canonical visitation order.
    pub params: Vec<f32>,
    /// Optimizer hyperparameters and per-slice velocity.
    pub optimizer: SgdState,
    /// Adaptation iterations completed when the snapshot was taken.
    pub iteration: u64,
    /// Training RNG state at the snapshot point.
    pub rng: RngState,
    /// Opaque caller data carried alongside the core state.
    pub extra: Vec<u8>,
}

impl TrainingCheckpoint {
    /// Snapshots a live training run.
    ///
    /// Parameters are reached through the read-only canonical visitor, so
    /// periodic checkpointing never evicts compressed-weight caches.
    pub fn capture(
        model: &EdgeModel,
        opt: &Sgd,
        iteration: u64,
        rng: &TensorRng,
        extra: Vec<u8>,
    ) -> Self {
        let mut params = Vec::new();
        model.visit_params_all_ro(&mut |_, p| params.extend_from_slice(p));
        TrainingCheckpoint {
            config: model.config().clone(),
            params,
            optimizer: opt.export_state(),
            iteration,
            rng: rng.state(),
            extra,
        }
    }

    /// Writes the checkpoint's parameters back into `model` in place
    /// (rollback path: compression hooks and masks stay installed; masks
    /// are re-enforced afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] if the model's architecture or
    /// parameter count does not match the snapshot.
    pub fn restore_params(&self, model: &mut EdgeModel) -> Result<(), ModelError> {
        if model.config() != &self.config {
            return Err(ck("checkpoint architecture does not match the live model"));
        }
        let mut cursor = 0usize;
        let mut overrun = false;
        model.visit_params_all(&mut |_, p, _| {
            if cursor + p.len() > self.params.len() {
                overrun = true;
                return;
            }
            p.copy_from_slice(&self.params[cursor..cursor + p.len()]);
            cursor += p.len();
        });
        if overrun || cursor != self.params.len() {
            return Err(ck(format!(
                "checkpoint holds {} params, model needs a different count",
                self.params.len()
            )));
        }
        model.enforce_masks();
        Ok(())
    }

    /// Builds a fresh model from the snapshot (resume path).
    ///
    /// Compression is runtime state: the caller re-applies its policy
    /// (recorded in [`TrainingCheckpoint::extra`]) after loading.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] on a parameter-count mismatch,
    /// or any construction error for the recorded config.
    pub fn build_model(&self) -> Result<EdgeModel, ModelError> {
        let mut rng = TensorRng::seed_from(0);
        let mut model = EdgeModel::new(self.config.clone(), &mut rng)?;
        self.restore_params(&mut model)?;
        Ok(model)
    }

    /// Rebuilds the optimizer exactly as captured.
    pub fn optimizer(&self) -> Sgd {
        Sgd::from_state(&self.optimizer)
    }

    /// Rebuilds the training RNG exactly as captured.
    pub fn rng(&self) -> TensorRng {
        TensorRng::from_state(self.rng)
    }

    fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.len() * 4 + self.extra.len());
        for f in config_fields(&self.config) {
            push_u64(&mut buf, f);
        }
        push_u64(&mut buf, self.params.len() as u64);
        for &v in &self.params {
            push_f32(&mut buf, v);
        }
        push_f32(&mut buf, self.optimizer.lr);
        push_f32(&mut buf, self.optimizer.momentum);
        push_f32(&mut buf, self.optimizer.clip);
        push_u64(&mut buf, self.optimizer.velocity.len() as u64);
        for (id, v) in &self.optimizer.velocity {
            push_u64(&mut buf, *id as u64);
            push_u64(&mut buf, v.len() as u64);
            for &x in v {
                push_f32(&mut buf, x);
            }
        }
        push_u64(&mut buf, self.iteration);
        buf.extend_from_slice(&self.rng.to_bytes());
        push_u64(&mut buf, self.extra.len() as u64);
        buf.extend_from_slice(&self.extra);
        buf
    }

    fn parse_payload(payload: &[u8]) -> Result<Self, ModelError> {
        let mut cur = payload;
        let mut f = [0u64; 7];
        for v in f.iter_mut() {
            *v = take_u64(&mut cur)?;
        }
        let config = ModelConfig {
            vocab_size: f[0] as usize,
            d_model: f[1] as usize,
            n_heads: f[2] as usize,
            n_layers: f[3] as usize,
            seq_len: f[4] as usize,
            d_ff: f[5] as usize,
            tie_exit_heads: f[6] != 0,
        };
        let n_params = take_u64(&mut cur)? as usize;
        if n_params * 4 > cur.len() {
            return Err(ck("truncated payload"));
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(take_f32(&mut cur)?);
        }
        let lr = take_f32(&mut cur)?;
        let momentum = take_f32(&mut cur)?;
        let clip = take_f32(&mut cur)?;
        let n_slices = take_u64(&mut cur)? as usize;
        let mut velocity = Vec::with_capacity(n_slices.min(1 << 20));
        for _ in 0..n_slices {
            let id = take_u64(&mut cur)? as usize;
            let len = take_u64(&mut cur)? as usize;
            if len * 4 > cur.len() {
                return Err(ck("truncated payload"));
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(take_f32(&mut cur)?);
            }
            velocity.push((id, v));
        }
        let iteration = take_u64(&mut cur)?;
        let mut rng_bytes = [0u8; RNG_STATE_BYTES];
        (&mut cur)
            .read_exact(&mut rng_bytes)
            .map_err(|_| ck("truncated payload"))?;
        let rng = RngState::from_bytes(&rng_bytes)
            .ok_or_else(|| ck("invalid RNG state in checkpoint"))?;
        let extra_len = take_u64(&mut cur)? as usize;
        if extra_len != cur.len() {
            return Err(ck("payload length inconsistent with extra-blob length"));
        }
        let extra = cur.to_vec();
        Ok(TrainingCheckpoint {
            config,
            params,
            optimizer: SgdState {
                lr,
                momentum,
                clip,
                velocity,
            },
            iteration,
            rng,
            extra,
        })
    }

    /// Serializes the checkpoint (magic, length, payload, checksum).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] wrapping any I/O error.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), ModelError> {
        let payload = self.payload();
        writer
            .write_all(TRAIN_MAGIC)
            .map_err(|e| ck(format!("write failed: {e}")))?;
        writer
            .write_all(&(payload.len() as u64).to_le_bytes())
            .map_err(|e| ck(format!("write failed: {e}")))?;
        writer
            .write_all(&payload)
            .map_err(|e| ck(format!("write failed: {e}")))?;
        writer
            .write_all(&fnv1a64(&payload).to_le_bytes())
            .map_err(|e| ck(format!("write failed: {e}")))?;
        Ok(())
    }

    /// Deserializes a checkpoint written by [`TrainingCheckpoint::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] for a wrong or older-version
    /// magic, a truncated stream, a checksum mismatch, or a structurally
    /// inconsistent payload.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self, ModelError> {
        let mut magic = [0u8; 8];
        reader
            .read_exact(&mut magic)
            .map_err(|_| ck("truncated checkpoint header"))?;
        if &magic == MAGIC {
            return Err(ck(
                "this is a model-only checkpoint (format v1); expected a training checkpoint",
            ));
        }
        if &magic != TRAIN_MAGIC {
            return Err(ck("not an edge-llm training checkpoint"));
        }
        let mut len_bytes = [0u8; 8];
        reader
            .read_exact(&mut len_bytes)
            .map_err(|_| ck("truncated checkpoint header"))?;
        let len = u64::from_le_bytes(len_bytes);
        if len > MAX_PAYLOAD {
            return Err(ck(format!("implausible payload length {len}")));
        }
        let mut payload = vec![0u8; len as usize];
        reader
            .read_exact(&mut payload)
            .map_err(|_| ck("truncated checkpoint payload"))?;
        let mut sum_bytes = [0u8; 8];
        reader
            .read_exact(&mut sum_bytes)
            .map_err(|_| ck("missing checkpoint checksum"))?;
        if u64::from_le_bytes(sum_bytes) != fnv1a64(&payload) {
            return Err(ck("checksum mismatch: checkpoint is corrupt"));
        }
        Self::parse_payload(&payload)
    }

    /// Atomically writes the checkpoint to `path`: the bytes land in a
    /// `.tmp` sibling first and are renamed into place, so an interrupted
    /// save never destroys the previous checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] wrapping any filesystem error.
    pub fn save_file(&self, path: &Path) -> Result<(), ModelError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(&tmp)
                .map_err(|e| ck(format!("cannot create {}: {e}", tmp.display())))?,
        );
        self.write_to(&mut file)?;
        file.flush().map_err(|e| ck(format!("flush failed: {e}")))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| ck(format!("cannot rename into {}: {e}", path.display())))
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Checkpoint`] if the file cannot be read or
    /// fails any of [`TrainingCheckpoint::read_from`]'s validation.
    pub fn load_file(path: &Path) -> Result<Self, ModelError> {
        let bytes =
            std::fs::read(path).map_err(|e| ck(format!("cannot read {}: {e}", path.display())))?;
        Self::read_from(&mut bytes.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let m = model(1);
        let mut bytes = Vec::new();
        save_model(&m, &mut bytes).unwrap();
        let loaded = load_model(&mut bytes.as_slice()).unwrap();
        let tokens: Vec<usize> = (0..8).map(|i| i % 32).collect();
        let a = m.logits(&tokens, 1).unwrap();
        let b = loaded.logits(&tokens, 1).unwrap();
        assert!(a.approx_eq(&b, 0.0), "loaded model must be bit-identical");
        assert_eq!(loaded.config(), m.config());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTEDGE\x01restofjunkrestofjunkrestofjunk".to_vec();
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let m = model(2);
        let mut bytes = Vec::new();
        save_model(&m, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn corrupt_param_count_rejected() {
        let m = model(3);
        let mut bytes = Vec::new();
        save_model(&m, &mut bytes).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip the recorded count
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    fn training_state(seed: u64) -> (EdgeModel, Sgd, TensorRng) {
        let mut m = model(seed);
        let mut opt = Sgd::with_momentum(0.05, 0.9).with_clip(1.0);
        let mut rng = TensorRng::seed_from(seed ^ 0xabcd);
        // a few real steps so velocity and RNG state are non-trivial
        let tokens: Vec<usize> = (0..m.config().seq_len).map(|i| i % 16).collect();
        let mut tuner =
            crate::adaptive::AdaptiveTuner::new(crate::adaptive::WindowSchedule::FullDepth);
        for _ in 0..3 {
            tuner.step(&mut m, &mut opt, &tokens, &tokens, 1).unwrap();
            let _ = rng.normal();
        }
        (m, opt, rng)
    }

    #[test]
    fn training_checkpoint_roundtrips_bit_identically() {
        let (m, opt, rng) = training_state(6);
        let ckpt = TrainingCheckpoint::capture(&m, &opt, 3, &rng, b"policy=none".to_vec());
        let mut bytes = Vec::new();
        ckpt.write_to(&mut bytes).unwrap();
        let back = TrainingCheckpoint::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(ckpt, back);
        let rebuilt = back.build_model().unwrap();
        let tokens: Vec<usize> = (0..m.config().seq_len).map(|i| i % 16).collect();
        let a = m.logits(&tokens, 1).unwrap();
        let b = rebuilt.logits(&tokens, 1).unwrap();
        assert!(a.approx_eq(&b, 0.0), "restored model must be bit-identical");
        assert_eq!(
            back.rng().next_u64(),
            TensorRng::from_state(rng.state()).next_u64()
        );
    }

    #[test]
    fn training_checkpoint_detects_truncation_and_bitflips() {
        let (m, opt, rng) = training_state(7);
        let ckpt = TrainingCheckpoint::capture(&m, &opt, 1, &rng, Vec::new());
        let mut bytes = Vec::new();
        ckpt.write_to(&mut bytes).unwrap();
        // every truncation point fails with a typed error
        for cut in [4usize, 12, bytes.len() / 2, bytes.len() - 1] {
            let short = &bytes[..cut];
            let err = TrainingCheckpoint::read_from(&mut &short[..]).unwrap_err();
            assert!(
                matches!(err, ModelError::Checkpoint { .. }),
                "cut {cut}: {err}"
            );
        }
        // a single flipped payload bit trips the checksum
        let mut flipped = bytes.clone();
        let mid = 16 + (flipped.len() - 24) / 2;
        flipped[mid] ^= 0x40;
        let err = TrainingCheckpoint::read_from(&mut flipped.as_slice()).unwrap_err();
        assert!(err.to_string().contains("corrupt") || err.to_string().contains("truncated"));
    }

    #[test]
    fn training_checkpoint_rejects_v1_and_foreign_files() {
        let m = model(8);
        let mut v1 = Vec::new();
        save_model(&m, &mut v1).unwrap();
        let err = TrainingCheckpoint::read_from(&mut v1.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("model-only"),
            "v1 gets a pointed message: {err}"
        );
        let junk = b"GARBAGE!whatever".to_vec();
        assert!(TrainingCheckpoint::read_from(&mut junk.as_slice()).is_err());
    }

    #[test]
    fn training_checkpoint_restore_rejects_wrong_architecture() {
        let (m, opt, rng) = training_state(9);
        let ckpt = TrainingCheckpoint::capture(&m, &opt, 0, &rng, Vec::new());
        let mut rng2 = TensorRng::seed_from(1);
        let mut other = EdgeModel::new(
            ModelConfig::tiny().with_layers(m.config().n_layers + 1),
            &mut rng2,
        )
        .unwrap();
        assert!(ckpt.restore_params(&mut other).is_err());
    }

    #[test]
    fn save_file_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join("edgellm-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let (m, opt, rng) = training_state(10);
        let ckpt = TrainingCheckpoint::capture(&m, &opt, 2, &rng, vec![1, 2, 3]);
        ckpt.save_file(&path).unwrap();
        // no temp file left behind
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = TrainingCheckpoint::load_file(&path).unwrap();
        assert_eq!(back, ckpt);
        // overwrite with new state keeps the file valid
        let ckpt2 = TrainingCheckpoint::capture(&m, &opt, 5, &rng, vec![9]);
        ckpt2.save_file(&path).unwrap();
        assert_eq!(TrainingCheckpoint::load_file(&path).unwrap().iteration, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn different_models_serialize_differently() {
        let a = model(4);
        let b = model(5);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        save_model(&a, &mut ba).unwrap();
        save_model(&b, &mut bb).unwrap();
        assert_ne!(ba, bb);
        assert_eq!(ba.len(), bb.len(), "same config, same checkpoint size");
    }
}
