//! Checkpoint serialization.
//!
//! An adapted model is only useful if it can be stored on the device and
//! reloaded. The format is a small self-describing binary: a magic tag and
//! version, the [`ModelConfig`], then every parameter tensor in the
//! model's canonical visitation order (little-endian `f32`). Compression
//! state (masks/quant hooks) is runtime configuration and is re-installed
//! by re-applying the policy after loading.

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::TensorRng;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"EDGELLM\x01";

fn io_err(e: std::io::Error) -> ModelError {
    ModelError::BadConfig { reason: format!("checkpoint io error: {e}") }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), ModelError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ModelError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

fn config_fields(config: &ModelConfig) -> [u64; 7] {
    [
        config.vocab_size as u64,
        config.d_model as u64,
        config.n_heads as u64,
        config.n_layers as u64,
        config.seq_len as u64,
        config.d_ff as u64,
        config.tie_exit_heads as u64,
    ]
}

/// Serializes `model` to `writer`.
///
/// A mutable borrow is required because parameters are reached through the
/// model's canonical visitor; the model is not modified.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] wrapping any underlying I/O error.
pub fn save_model<W: Write>(model: &mut EdgeModel, writer: &mut W) -> Result<(), ModelError> {
    writer.write_all(MAGIC).map_err(io_err)?;
    for f in config_fields(&model.config().clone()) {
        write_u64(writer, f)?;
    }
    let mut result = Ok(());
    let mut total = 0u64;
    model.visit_params_all(&mut |_, p, _| {
        if result.is_err() {
            return;
        }
        total += p.len() as u64;
        for v in p.iter() {
            if let Err(e) = writer.write_all(&v.to_le_bytes()) {
                result = Err(io_err(e));
                return;
            }
        }
    });
    result?;
    write_u64(writer, total)
}

/// Deserializes a model previously written by [`save_model`].
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for a bad magic tag, a corrupt or
/// truncated stream, or a parameter-count mismatch.
pub fn load_model<R: Read>(reader: &mut R) -> Result<EdgeModel, ModelError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(ModelError::BadConfig { reason: "not an edge-llm checkpoint".into() });
    }
    let mut f = [0u64; 7];
    for v in f.iter_mut() {
        *v = read_u64(reader)?;
    }
    let config = ModelConfig {
        vocab_size: f[0] as usize,
        d_model: f[1] as usize,
        n_heads: f[2] as usize,
        n_layers: f[3] as usize,
        seq_len: f[4] as usize,
        d_ff: f[5] as usize,
        tie_exit_heads: f[6] != 0,
    };
    let mut rng = TensorRng::seed_from(0);
    let mut model = EdgeModel::new(config, &mut rng)?;
    let mut result = Ok(());
    let mut total = 0u64;
    model.visit_params_all(&mut |_, p, _| {
        if result.is_err() {
            return;
        }
        total += p.len() as u64;
        let mut buf = [0u8; 4];
        for v in p.iter_mut() {
            match reader.read_exact(&mut buf) {
                Ok(()) => *v = f32::from_le_bytes(buf),
                Err(e) => {
                    result = Err(io_err(e));
                    return;
                }
            }
        }
    });
    result?;
    let recorded = read_u64(reader)?;
    if recorded != total {
        return Err(ModelError::BadConfig {
            reason: format!("checkpoint holds {recorded} params, model needs {total}"),
        });
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut m = model(1);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).unwrap();
        let loaded = load_model(&mut bytes.as_slice()).unwrap();
        let tokens: Vec<usize> = (0..8).map(|i| i % 32).collect();
        let a = m.logits(&tokens, 1).unwrap();
        let b = loaded.logits(&tokens, 1).unwrap();
        assert!(a.approx_eq(&b, 0.0), "loaded model must be bit-identical");
        assert_eq!(loaded.config(), m.config());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTEDGE\x01restofjunkrestofjunkrestofjunk".to_vec();
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut m = model(2);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn corrupt_param_count_rejected() {
        let mut m = model(3);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip the recorded count
        assert!(load_model(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn different_models_serialize_differently() {
        let mut a = model(4);
        let mut b = model(5);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        save_model(&mut a, &mut ba).unwrap();
        save_model(&mut b, &mut bb).unwrap();
        assert_ne!(ba, bb);
        assert_eq!(ba.len(), bb.len(), "same config, same checkpoint size");
    }
}
