//! Per-tenant LoRA adapters applied per slot over one frozen base.
//!
//! Multi-tenant serving splits the model exactly the way Edge-LLM's
//! adaptation scheme does: the compressed base weights are packed once
//! and shared by every request, and each tenant carries only small
//! low-rank deltas for a subset of `(layer, projection)` sites. A
//! [`TenantAdapter`] is the portable description (factors `A`/`B` plus a
//! scale per site); [`TenantAdapter::resolve`] validates it against a
//! concrete model and produces a [`ResolvedAdapter`] the decode paths can
//! index in O(1) per projection.
//!
//! # Bit-identity
//!
//! The serving oracle demands that a tenant's tokens under mixed-tenant
//! batching are bit-identical to a solo run with the same adapter. Floats
//! make `x·(W + s·A·B)` differ in low bits from `x·W + s·(x·A)·B`, so
//! "merged into the base" is defined *computationally*, not by folding
//! weights: every path — batched, chunked speculative, solo — applies the
//! delta through the one [`ResolvedAdapter::apply_row`] primitive, row by
//! row, after the shared base matmul. Identical scalar operations per row
//! give bitwise identity by construction, and the base matmul stays a
//! single shared multi-row kernel call regardless of how many tenants are
//! in flight.

use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::{Tensor, TensorRng};

/// Which projection inside a block a delta attaches to.
///
/// Exit heads and the unembedding are deliberately not adaptable: they
/// are shared across tenants by design (the per-tenant state must stay
/// small), and the voting combiner already owns per-exit calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdapterTarget {
    /// The fused query/key/value projection, `(d_model, 3·d_model)`.
    Qkv,
    /// The attention output projection, `(d_model, d_model)`.
    Proj,
    /// The MLP up-projection, `(d_model, d_ff)`.
    Fc1,
    /// The MLP down-projection, `(d_ff, d_model)`.
    Fc2,
}

impl AdapterTarget {
    /// Every target, in block order.
    pub const ALL: [AdapterTarget; 4] = [
        AdapterTarget::Qkv,
        AdapterTarget::Proj,
        AdapterTarget::Fc1,
        AdapterTarget::Fc2,
    ];

    /// The `(d_in, d_out)` shape of this projection under `cfg`.
    pub fn shape(self, cfg: &ModelConfig) -> (usize, usize) {
        let c = cfg.d_model;
        match self {
            AdapterTarget::Qkv => (c, 3 * c),
            AdapterTarget::Proj => (c, c),
            AdapterTarget::Fc1 => (c, cfg.d_ff),
            AdapterTarget::Fc2 => (cfg.d_ff, c),
        }
    }

    /// Stable display name.
    pub fn label(self) -> &'static str {
        match self {
            AdapterTarget::Qkv => "qkv",
            AdapterTarget::Proj => "proj",
            AdapterTarget::Fc1 => "fc1",
            AdapterTarget::Fc2 => "fc2",
        }
    }

    fn slot(self) -> usize {
        match self {
            AdapterTarget::Qkv => 0,
            AdapterTarget::Proj => 1,
            AdapterTarget::Fc1 => 2,
            AdapterTarget::Fc2 => 3,
        }
    }
}

/// One low-rank delta: at `(layer, target)`, add `scale · (x·A)·B` to the
/// projection output.
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterDelta {
    /// Block index the delta attaches to.
    pub layer: usize,
    /// Projection inside the block.
    pub target: AdapterTarget,
    /// Down-projection factor, `(d_in, rank)`.
    pub a: Tensor,
    /// Up-projection factor, `(rank, d_out)`.
    pub b: Tensor,
    /// Multiplier on the low-rank product (LoRA's `alpha / rank`).
    pub scale: f32,
}

/// A tenant's complete adapter: a set of low-rank deltas, kept as
/// factors (never densified — the factors *are* the per-tenant weight
/// state, and their size is what the multi-tenant bench gates).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantAdapter {
    deltas: Vec<AdapterDelta>,
}

impl TenantAdapter {
    /// Wraps a delta list. Validation happens at [`Self::resolve`] time,
    /// against a concrete model.
    pub fn new(deltas: Vec<AdapterDelta>) -> Self {
        TenantAdapter { deltas }
    }

    /// A deterministic random adapter of rank `rank` at the given
    /// `(layer, target)` sites — the test/bench stand-in for a trained
    /// per-tenant adapter. Both factors are non-zero so the delta
    /// actually moves logits (a zero `B` would make every tenant
    /// identical and the differential oracle vacuous).
    pub fn seeded(
        cfg: &ModelConfig,
        seed: u64,
        rank: usize,
        sites: &[(usize, AdapterTarget)],
    ) -> Self {
        let mut rng = TensorRng::seed_from(seed);
        let deltas = sites
            .iter()
            .map(|&(layer, target)| {
                let (d_in, d_out) = target.shape(cfg);
                AdapterDelta {
                    layer,
                    target,
                    a: Tensor::randn(d_in, rank.max(1), 0.05, &mut rng),
                    b: Tensor::randn(rank.max(1), d_out, 0.05, &mut rng),
                    scale: 0.5,
                }
            })
            .collect();
        TenantAdapter { deltas }
    }

    /// The deltas, in insertion order.
    pub fn deltas(&self) -> &[AdapterDelta] {
        &self.deltas
    }

    /// Bytes of per-tenant weight state: the `A`/`B` factors only.
    pub fn bytes(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| (d.a.len() + d.b.len()) * 4)
            .sum()
    }

    /// Validates every delta against `model` (layer in range, factor
    /// shapes matching the target projection, matching ranks, finite
    /// scale, at most one delta per site) and returns the resolved form.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::LayerOutOfRange`] or
    /// [`ModelError::BadConfig`] describing the first offending delta.
    pub fn resolve(&self, model: &EdgeModel) -> Result<ResolvedAdapter, ModelError> {
        let cfg = model.config();
        let n_layers = model.n_layers();
        let mut index = vec![None; n_layers * 4];
        for (i, d) in self.deltas.iter().enumerate() {
            if d.layer >= n_layers {
                return Err(ModelError::LayerOutOfRange {
                    layer: d.layer,
                    depth: n_layers,
                });
            }
            let (d_in, d_out) = d.target.shape(cfg);
            let (a_rows, a_cols) = d.a.shape();
            let (b_rows, b_cols) = d.b.shape();
            if a_rows != d_in || b_cols != d_out || a_cols != b_rows {
                return Err(ModelError::BadConfig {
                    reason: format!(
                        "adapter delta at layer {} {}: factors ({a_rows}x{a_cols})·\
                         ({b_rows}x{b_cols}) do not form a {d_in}x{d_out} delta",
                        d.layer,
                        d.target.label()
                    ),
                });
            }
            if !d.scale.is_finite() {
                return Err(ModelError::BadConfig {
                    reason: format!(
                        "adapter delta at layer {} {}: non-finite scale",
                        d.layer,
                        d.target.label()
                    ),
                });
            }
            let slot = d.layer * 4 + d.target.slot();
            if index[slot].is_some() {
                return Err(ModelError::BadConfig {
                    reason: format!(
                        "duplicate adapter delta at layer {} {}",
                        d.layer,
                        d.target.label()
                    ),
                });
            }
            index[slot] = Some(i);
        }
        Ok(ResolvedAdapter {
            deltas: self.deltas.clone(),
            index,
            bytes: self.bytes(),
        })
    }
}

/// A [`TenantAdapter`] validated against a model, indexed for O(1)
/// lookup per `(layer, target)` during decode.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedAdapter {
    deltas: Vec<AdapterDelta>,
    /// `layer * 4 + target.slot()` → index into `deltas`.
    index: Vec<Option<usize>>,
    bytes: usize,
}

impl ResolvedAdapter {
    /// Bytes of per-tenant weight state (the resident-size unit the
    /// adapter cache budgets).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The delta at `(layer, target)`, if any.
    pub fn delta(&self, layer: usize, target: AdapterTarget) -> Option<&AdapterDelta> {
        let slot = layer * 4 + target.slot();
        self.index
            .get(slot)
            .copied()
            .flatten()
            .map(|i| &self.deltas[i])
    }

    /// Adds this adapter's delta at `(layer, target)` to one output row:
    /// `y += scale · (x·A)·B` with `x` the projection's input row.
    ///
    /// This is the *single* delta-application primitive — every decode
    /// path (batched, chunked, solo) routes each row through this exact
    /// sequence of scalar operations, which is what makes mixed-tenant
    /// batching bit-identical to a solo run per tenant. No-op when the
    /// adapter has no delta at this site.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (impossible once resolved against
    /// the model the rows came from).
    pub fn apply_row(
        &self,
        layer: usize,
        target: AdapterTarget,
        x_row: &[f32],
        y_row: &mut [f32],
    ) -> Result<(), ModelError> {
        let Some(d) = self.delta(layer, target) else {
            return Ok(());
        };
        let x = Tensor::from_vec(1, x_row.len(), x_row.to_vec()).map_err(ModelError::Tensor)?;
        let xa = x.matmul(&d.a)?;
        let dy = xa.matmul(&d.b)?;
        for (y, &v) in y_row.iter_mut().zip(dy.row(0).iter()) {
            *y += d.scale * v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn seeded_adapter_resolves_and_reports_bytes() {
        let m = model(1);
        let cfg = m.config();
        let sites: Vec<(usize, AdapterTarget)> = (0..m.n_layers())
            .flat_map(|l| AdapterTarget::ALL.into_iter().map(move |t| (l, t)))
            .collect();
        let ad = TenantAdapter::seeded(cfg, 7, 2, &sites);
        let resolved = ad.resolve(&m).unwrap();
        assert_eq!(resolved.bytes(), ad.bytes());
        let expected: usize = sites
            .iter()
            .map(|&(_, t)| {
                let (d_in, d_out) = t.shape(cfg);
                (d_in * 2 + 2 * d_out) * 4
            })
            .sum();
        assert_eq!(ad.bytes(), expected);
        for &(l, t) in &sites {
            assert!(resolved.delta(l, t).is_some());
        }
    }

    #[test]
    fn resolve_rejects_bad_layer_shape_and_duplicates() {
        let m = model(2);
        let cfg = m.config().clone();
        let ok = TenantAdapter::seeded(&cfg, 1, 1, &[(0, AdapterTarget::Qkv)]);
        assert!(ok.resolve(&m).is_ok());
        let bad_layer = TenantAdapter::seeded(&cfg, 1, 1, &[(99, AdapterTarget::Qkv)]);
        assert!(matches!(
            bad_layer.resolve(&m),
            Err(ModelError::LayerOutOfRange { .. })
        ));
        let mut wrong = ok.deltas()[0].clone();
        wrong.a = Tensor::zeros(cfg.d_model + 1, 1);
        assert!(matches!(
            TenantAdapter::new(vec![wrong]).resolve(&m),
            Err(ModelError::BadConfig { .. })
        ));
        let dup = TenantAdapter::new(vec![ok.deltas()[0].clone(), ok.deltas()[0].clone()]);
        assert!(matches!(dup.resolve(&m), Err(ModelError::BadConfig { .. })));
        let mut nan = ok.deltas()[0].clone();
        nan.scale = f32::NAN;
        assert!(matches!(
            TenantAdapter::new(vec![nan]).resolve(&m),
            Err(ModelError::BadConfig { .. })
        ));
    }

    #[test]
    fn apply_row_matches_manual_low_rank_product() {
        let m = model(3);
        let cfg = m.config().clone();
        let ad = TenantAdapter::seeded(&cfg, 11, 2, &[(1, AdapterTarget::Proj)]);
        let resolved = ad.resolve(&m).unwrap();
        let mut rng = TensorRng::seed_from(5);
        let x = Tensor::randn(1, cfg.d_model, 1.0, &mut rng);
        let mut y = vec![0.0f32; cfg.d_model];
        resolved
            .apply_row(1, AdapterTarget::Proj, x.row(0), &mut y)
            .unwrap();
        let d = &ad.deltas()[0];
        let expect = x.matmul(&d.a).unwrap().matmul(&d.b).unwrap();
        for (k, &got) in y.iter().enumerate() {
            let want = d.scale * expect.get(0, k);
            assert_eq!(got.to_bits(), want.to_bits(), "col {k}");
        }
        // sites without a delta are untouched
        let before = y.clone();
        resolved
            .apply_row(0, AdapterTarget::Fc1, x.row(0), &mut y[..cfg.d_model])
            .unwrap();
        assert_eq!(before, y);
    }
}
