//! Adaptive layer voting: combining early-exit logits at inference time.
//!
//! Adaptive layer tuning leaves the model with several trained exit heads.
//! Rather than trusting only the deepest exit, Edge-LLM *votes*: each exit's
//! distribution contributes to the final prediction with a weight that
//! adapts to how confident that exit is on the current input.

use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::{softmax_rows, Tensor};

/// Strategy for combining per-exit logits.
#[derive(Debug, Clone, PartialEq)]
pub enum VotingCombiner {
    /// Use only the deepest exit (the no-voting ablation).
    LastExit,
    /// Uniform average of the exit probability distributions.
    Average,
    /// Weight each exit per token by its confidence
    /// `exp(-entropy / temperature)`, normalized across exits — confident
    /// exits dominate, uncertain ones are discounted (the paper's adaptive
    /// combination).
    ConfidenceWeighted {
        /// Softening temperature for the confidence weights (must be > 0).
        temperature: f32,
    },
    /// Fixed learned per-exit scalar weights (normalized internally).
    Learned(Vec<f32>),
}

impl Default for VotingCombiner {
    fn default() -> Self {
        VotingCombiner::ConfidenceWeighted { temperature: 1.0 }
    }
}

/// Which exits participate in voting, plus the combiner.
#[derive(Debug, Clone, PartialEq)]
pub struct VotingPolicy {
    /// Exit layer indices, ascending.
    pub exits: Vec<usize>,
    /// How to combine them.
    pub combiner: VotingCombiner,
}

impl VotingPolicy {
    /// Votes over every layer of a model of depth `n_layers`.
    pub fn all_exits(n_layers: usize, combiner: VotingCombiner) -> Self {
        VotingPolicy {
            exits: (0..n_layers).collect(),
            combiner,
        }
    }

    /// Uses only the final exit (vanilla inference).
    pub fn final_only(n_layers: usize) -> Self {
        VotingPolicy {
            exits: vec![n_layers.saturating_sub(1)],
            combiner: VotingCombiner::LastExit,
        }
    }

    /// Runs the model and returns the combined probability distribution,
    /// `(batch * seq) x vocab`.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns [`ModelError::BadConfig`] for an
    /// empty exit list, a non-positive temperature, or mismatched learned
    /// weights.
    pub fn predict(
        &self,
        model: &EdgeModel,
        tokens: &[usize],
        batch: usize,
    ) -> Result<Tensor, ModelError> {
        if self.exits.is_empty() {
            return Err(ModelError::BadConfig {
                reason: "voting requires at least one exit".into(),
            });
        }
        let logits = model.logits_at_exits(tokens, batch, &self.exits)?;
        combine(&logits, &self.combiner)
    }
}

/// Combines per-exit logits into one probability tensor.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for invalid combiner parameters and
/// propagates shape errors.
pub fn combine(exit_logits: &[Tensor], combiner: &VotingCombiner) -> Result<Tensor, ModelError> {
    let last = exit_logits.last().ok_or_else(|| ModelError::BadConfig {
        reason: "no exit logits provided".into(),
    })?;
    match combiner {
        VotingCombiner::LastExit => Ok(softmax_rows(last)),
        VotingCombiner::Average => {
            let mut acc = Tensor::zeros(last.rows(), last.cols());
            for logits in exit_logits {
                acc.axpy(1.0 / exit_logits.len() as f32, &softmax_rows(logits))?;
            }
            Ok(acc)
        }
        VotingCombiner::ConfidenceWeighted { temperature } => {
            if *temperature <= 0.0 || temperature.is_nan() {
                return Err(ModelError::BadConfig {
                    reason: "temperature must be positive".into(),
                });
            }
            let probs: Vec<Tensor> = exit_logits.iter().map(softmax_rows).collect();
            let (rows, cols) = last.shape();
            let mut out = Tensor::zeros(rows, cols);
            for r in 0..rows {
                // per-token confidence weight: exp(-entropy / T)
                let mut weights = Vec::with_capacity(probs.len());
                let mut wsum = 0.0f32;
                for p in &probs {
                    let h: f32 = p
                        .row(r)
                        .iter()
                        .map(|&q| if q > 1e-12 { -q * q.ln() } else { 0.0 })
                        .sum();
                    let w = (-h / temperature).exp();
                    weights.push(w);
                    wsum += w;
                }
                if wsum <= 0.0 {
                    weights
                        .iter_mut()
                        .for_each(|w| *w = 1.0 / probs.len() as f32);
                } else {
                    weights.iter_mut().for_each(|w| *w /= wsum);
                }
                let orow = out.row_mut(r);
                for (p, &w) in probs.iter().zip(weights.iter()) {
                    for (o, &q) in orow.iter_mut().zip(p.row(r).iter()) {
                        *o += w * q;
                    }
                }
            }
            Ok(out)
        }
        VotingCombiner::Learned(ws) => {
            if ws.len() != exit_logits.len() {
                return Err(ModelError::BadConfig {
                    reason: format!("{} weights for {} exits", ws.len(), exit_logits.len()),
                });
            }
            let total: f32 = ws.iter().map(|w| w.max(0.0)).sum();
            if total <= 0.0 {
                return Err(ModelError::BadConfig {
                    reason: "learned weights sum to zero".into(),
                });
            }
            let mut acc = Tensor::zeros(last.rows(), last.cols());
            for (logits, &w) in exit_logits.iter().zip(ws.iter()) {
                acc.axpy(w.max(0.0) / total, &softmax_rows(logits))?;
            }
            Ok(acc)
        }
    }
}

/// Fits [`VotingCombiner::Learned`] weights on held-out data by measuring
/// each exit's standalone accuracy and weighting exits proportionally.
///
/// `targets` uses [`edge_llm_tensor::IGNORE_TARGET`] for untested positions.
///
/// # Errors
///
/// Propagates model errors.
pub fn fit_learned_weights(
    model: &EdgeModel,
    exits: &[usize],
    tokens: &[usize],
    targets: &[usize],
    batch: usize,
) -> Result<Vec<f32>, ModelError> {
    let logits = model.logits_at_exits(tokens, batch, exits)?;
    let mut weights = Vec::with_capacity(exits.len());
    for l in &logits {
        let probs = softmax_rows(l);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (r, &t) in targets.iter().enumerate() {
            if t == edge_llm_tensor::IGNORE_TARGET {
                continue;
            }
            total += 1;
            let row = probs.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == t {
                correct += 1;
            }
        }
        let acc = if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        };
        weights.push(acc + 1e-3); // floor so no exit is hard-zeroed
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn logits_pair() -> Vec<Tensor> {
        // exit 0: confident on class 0; exit 1: uniform (max entropy)
        let confident = Tensor::from_vec(1, 3, vec![10.0, 0.0, 0.0]).unwrap();
        let uniform = Tensor::zeros(1, 3);
        vec![confident, uniform]
    }

    #[test]
    fn last_exit_ignores_earlier() {
        let out = combine(&logits_pair(), &VotingCombiner::LastExit).unwrap();
        for c in 0..3 {
            assert!((out.get(0, c) - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn average_blends_equally() {
        let out = combine(&logits_pair(), &VotingCombiner::Average).unwrap();
        // class 0 gets ~ (1.0 + 1/3)/2
        assert!((out.get(0, 0) - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-3);
        let s: f32 = out.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn confidence_weighting_prefers_confident_exit() {
        let out = combine(
            &logits_pair(),
            &VotingCombiner::ConfidenceWeighted { temperature: 0.5 },
        )
        .unwrap();
        // confident exit (entropy ~0) should dominate the uniform one
        assert!(out.get(0, 0) > 0.9, "got {}", out.get(0, 0));
    }

    #[test]
    fn learned_weights_normalize() {
        let out = combine(&logits_pair(), &VotingCombiner::Learned(vec![3.0, 1.0])).unwrap();
        assert!((out.get(0, 0) - (0.75 * 1.0 + 0.25 / 3.0)).abs() < 1e-3);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(combine(&logits_pair(), &VotingCombiner::Learned(vec![1.0])).is_err());
        assert!(combine(&logits_pair(), &VotingCombiner::Learned(vec![0.0, 0.0])).is_err());
        assert!(combine(
            &logits_pair(),
            &VotingCombiner::ConfidenceWeighted { temperature: 0.0 }
        )
        .is_err());
        assert!(combine(&[], &VotingCombiner::Average).is_err());
    }

    #[test]
    fn policy_runs_on_model() {
        let mut rng = TensorRng::seed_from(1);
        let cfg = ModelConfig::tiny();
        let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| i % cfg.vocab_size).collect();
        let policy = VotingPolicy::all_exits(model.n_layers(), VotingCombiner::default());
        let probs = policy.predict(&model, &tokens, 1).unwrap();
        assert_eq!(probs.shape(), (cfg.seq_len, cfg.vocab_size));
        for r in 0..cfg.seq_len {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn fit_learned_weights_produces_positive_weights() {
        let mut rng = TensorRng::seed_from(2);
        let cfg = ModelConfig::tiny();
        let model = EdgeModel::new(cfg.clone(), &mut rng).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| i % cfg.vocab_size).collect();
        let ws = fit_learned_weights(&model, &[0, 1], &tokens, &tokens, 1).unwrap();
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|&w| w > 0.0));
    }
}
