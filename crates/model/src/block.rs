use crate::attention::{Attention, AttentionCache};
use crate::error::ModelError;
use crate::mlp::{Mlp, MlpCache};
use crate::norm::LayerNorm;
use edge_llm_tensor::{LayerNormCache, Tensor, TensorRng};

/// A pre-norm transformer block:
/// `x + attn(ln1(x))` followed by `x + mlp(ln2(x))`.
#[derive(Debug, Clone)]
pub struct Block {
    ln1: LayerNorm,
    attn: Attention,
    ln2: LayerNorm,
    mlp: Mlp,
}

/// Activations cached by [`Block::forward`]. Dropping a block's cache is
/// exactly the memory saving adaptive layer tuning exploits for frozen
/// layers.
#[derive(Debug, Clone)]
pub struct BlockCache {
    ln1_cache: LayerNormCache,
    attn_cache: AttentionCache,
    ln2_cache: LayerNormCache,
    mlp_cache: MlpCache,
}

impl BlockCache {
    /// Approximate bytes held alive by this cache.
    pub fn bytes(&self) -> usize {
        let ln = (self.ln1_cache.xhat.len() + self.ln2_cache.xhat.len()) * 4
            + (self.ln1_cache.rstd.len() + self.ln2_cache.rstd.len()) * 4;
        ln + self.attn_cache.bytes() + self.mlp_cache.bytes()
    }
}

impl Block {
    /// Creates a block for the given width, head count, and MLP width.
    pub fn new(d_model: usize, n_heads: usize, d_ff: usize, rng: &mut TensorRng) -> Self {
        Block {
            ln1: LayerNorm::new(d_model),
            attn: Attention::new(d_model, n_heads, rng),
            ln2: LayerNorm::new(d_model),
            mlp: Mlp::new(d_model, d_ff, rng),
        }
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.ln1.num_params()
            + self.attn.num_params()
            + self.ln2.num_params()
            + self.mlp.num_params()
    }

    /// The attention module (exposed for compression policies).
    pub fn attn_mut(&mut self) -> &mut Attention {
        &mut self.attn
    }

    /// The MLP module (exposed for compression policies).
    pub fn mlp_mut(&mut self) -> &mut Mlp {
        &mut self.mlp
    }

    /// Read access to the attention module.
    pub fn attn(&self) -> &Attention {
        &self.attn
    }

    /// Read access to the first LayerNorm (pre-attention).
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// Read access to the second LayerNorm (pre-MLP).
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// Read access to the MLP module.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Forward pass, caching activations for backward.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, BlockCache), ModelError> {
        let (n1, ln1_cache) = self.ln1.forward(x)?;
        let (a, attn_cache) = self.attn.forward(&n1, batch, seq)?;
        let x1 = x.add(&a)?;
        let (n2, ln2_cache) = self.ln2.forward(&x1)?;
        let (m, mlp_cache) = self.mlp.forward(&n2)?;
        let y = x1.add(&m)?;
        Ok((
            y,
            BlockCache {
                ln1_cache,
                attn_cache,
                ln2_cache,
                mlp_cache,
            },
        ))
    }

    /// Forward pass without retaining activations (frozen layers).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn forward_no_cache(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, ModelError> {
        let n1 = self.ln1.forward_no_cache(x)?;
        let a = self.attn.forward_no_cache(&n1, batch, seq)?;
        let x1 = x.add(&a)?;
        let n2 = self.ln2.forward_no_cache(&x1)?;
        let m = self.mlp.forward_no_cache(&n2)?;
        Ok(x1.add(&m)?)
    }

    /// Backward pass: accumulates gradients in every submodule, returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        // y = x1 + mlp(ln2(x1))
        let dm = dy; // gradient into mlp output
        let dn2 = self.mlp.backward(&cache.mlp_cache, dm)?;
        let mut dx1 = self.ln2.backward(&cache.ln2_cache, &dn2)?;
        dx1.axpy(1.0, dy)?; // residual path
                            // x1 = x + attn(ln1(x))
        let dn1 = self.attn.backward(&cache.attn_cache, &dx1)?;
        let mut dx = self.ln1.backward(&cache.ln1_cache, &dn1)?;
        dx.axpy(1.0, &dx1)?; // residual path
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attn.zero_grad();
        self.ln2.zero_grad();
        self.mlp.zero_grad();
    }

    /// Visits `(param, grad)` pairs in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }

    /// Read-only mirror of [`Block::visit_params`]: same slice order, no
    /// cache invalidation.
    pub fn visit_params_ro(&self, f: &mut dyn FnMut(&[f32])) {
        self.ln1.visit_params_ro(f);
        self.attn.visit_params_ro(f);
        self.ln2.visit_params_ro(f);
        self.mlp.visit_params_ro(f);
    }

    /// Number of slice pairs [`Block::visit_params`] yields. Window
    /// traversals use this to skip frozen blocks without borrowing their
    /// parameters mutably (which would invalidate their weight caches).
    pub fn param_slice_count(&self) -> usize {
        self.ln1.param_slice_count()
            + self.attn.param_slice_count()
            + self.ln2.param_slice_count()
            + self.mlp.param_slice_count()
    }

    /// Re-applies pruning masks after an optimizer step.
    pub fn enforce_masks(&mut self) {
        self.attn.enforce_masks();
        self.mlp.enforce_masks();
    }

    /// Quantizes this block's four projection weights into packed integer
    /// codes for the decode path (see [`crate::Linear::pack_weights`]).
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn pack_weights(&self) -> Result<(), ModelError> {
        self.attn.pack_weights()?;
        self.mlp.pack_weights()
    }

    /// Enables or disables the compressed-weight cache on every projection.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.attn.set_cache_enabled(enabled);
        self.mlp.set_cache_enabled(enabled);
    }

    /// Enables or disables the packed integer-GEMM decode route on every
    /// projection.
    pub fn set_integer_decode_enabled(&mut self, enabled: bool) {
        self.attn.set_integer_decode_enabled(enabled);
        self.mlp.set_integer_decode_enabled(enabled);
    }

    /// Bytes the decode path keeps resident for this block's projection
    /// weights.
    pub fn weight_storage_bytes(&self) -> usize {
        self.attn.weight_storage_bytes() + self.mlp.weight_storage_bytes()
    }

    /// Effective-weight re-quantizations across this block's projections.
    pub fn requant_count(&self) -> u64 {
        self.attn.requant_count() + self.mlp.requant_count()
    }

    /// Weight-cache evictions across this block's projections.
    pub fn cache_invalidation_count(&self) -> u64 {
        self.attn.cache_invalidation_count() + self.mlp.cache_invalidation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_no_cache_equivalence() {
        let mut rng = TensorRng::seed_from(1);
        let block = Block::new(8, 2, 16, &mut rng);
        let x = Tensor::randn(2 * 4, 8, 1.0, &mut rng);
        let (y, _) = block.forward(&x, 2, 4).unwrap();
        assert_eq!(y.shape(), (8, 8));
        assert!(y.approx_eq(&block.forward_no_cache(&x, 2, 4).unwrap(), 0.0));
    }

    #[test]
    fn backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(2);
        let mut block = Block::new(4, 2, 8, &mut rng);
        let seq = 3;
        let x = Tensor::randn(seq, 4, 0.6, &mut rng);
        let dy = Tensor::randn(seq, 4, 1.0, &mut rng);
        let (_, cache) = block.forward(&x, 1, seq).unwrap();
        let dx = block.backward(&cache, &dy).unwrap();
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let lp: f32 = block
                .forward_no_cache(&xp, 1, seq)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig - eps;
            let lm: f32 = block
                .forward_no_cache(&xp, 1, seq)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 5e-2,
                "element {i}: {num} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn residual_path_preserves_identity_signal() {
        // With zeroed attention/MLP output projections, a block is identity.
        let mut rng = TensorRng::seed_from(3);
        let mut block = Block::new(8, 2, 16, &mut rng);
        block.attn_mut().proj_mut().weight_mut().fill(0.0);
        block.mlp_mut().fc2_mut().weight_mut().fill(0.0);
        let x = Tensor::randn(4, 8, 1.0, &mut rng);
        let y = block.forward_no_cache(&x, 1, 4).unwrap();
        assert!(y.approx_eq(&x, 1e-5));
    }

    #[test]
    fn cache_bytes_positive() {
        let mut rng = TensorRng::seed_from(4);
        let block = Block::new(8, 2, 16, &mut rng);
        let x = Tensor::randn(4, 8, 1.0, &mut rng);
        let (_, cache) = block.forward(&x, 1, 4).unwrap();
        assert!(cache.bytes() > 0);
    }
}
