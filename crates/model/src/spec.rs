//! Self-speculative decoding: a shallow exit drafts, the full depth
//! verifies.
//!
//! Adaptive layer tuning leaves the model with a trained head at every
//! exit, so the model contains its own draft model for free: run the
//! forward only up to `draft_depth`, read that exit's logits, and propose
//! the greedy token. [`spec_round`] drafts `k` tokens that way, then
//! verifies all of them in **one** chunked full-depth pass (k+1 positions
//! through the shared multi-row projections), accepts the longest prefix
//! on which draft and verifier agree plus the verifier's own next token,
//! and rolls the KV cache back past every rejected position.
//!
//! # Why the output is bit-identical to greedy full-depth decode
//!
//! Every accepted token is the argmax of the *verifier's* full-depth
//! distribution at its position — the draft only decides how many
//! positions one pass may emit, never what they are. Two facts make the
//! verifier's distribution bitwise equal to the one a plain greedy
//! session would have computed:
//!
//! - every stage of the chunked verify pass is row-independent (the
//!   [`crate::batched_decode_step`] bit-identity contract: fixed
//!   reduction order in the blocked matmul, per-row norms/softmax/GELU,
//!   per-position scalar attention), so feeding k+1 positions in one
//!   chunk produces the same bits as k+1 sequential single-token steps;
//! - rolling back ([`SequenceKv::truncate`]) is a pure cursor move: rows
//!   past the cursor are never read, only overwritten, so a rejected
//!   draft leaves no trace in later steps.
//!
//! Greedy tie-breaks resolve to the lowest index on both sides (the same
//! [`crate::sample_token`] rule), so draft/verifier agreement is exact
//! token equality, never a float comparison.

use crate::adapter::{AdapterTarget, ResolvedAdapter};
use crate::batched::SequenceKv;
use crate::error::ModelError;
use crate::generate::argmax;
use crate::model::EdgeModel;
use crate::voting::{combine, VotingCombiner};
use edge_llm_telemetry as telemetry;
use edge_llm_tensor::{gelu_forward, softmax_rows, Tensor};

/// Outcome of one draft/verify round.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecReport {
    /// Tokens emitted by the round, in order: the longest draft prefix
    /// the verifier agreed with, followed by the verifier's own token at
    /// the first disagreement (or its bonus token when every draft was
    /// accepted). Always non-empty: a round makes at least one token of
    /// progress, exactly like a plain greedy step.
    pub accepted: Vec<usize>,
    /// The verifier's full-depth probability row for each accepted token
    /// (softmax of the final exit's logits), for parity with the serving
    /// engine's `final_probs` reporting.
    pub probs: Vec<Vec<f32>>,
    /// Draft tokens proposed this round (`min(k, remaining - 1)`).
    pub drafted: usize,
    /// Positions fed through the full-depth verify pass (`drafted + 1`).
    pub verified: usize,
}

/// Validates speculative parameters against a model — shared by
/// [`spec_round`], [`crate::generate`], and the serving frontends so a
/// bad configuration is rejected at submission instead of mid-decode.
///
/// # Errors
///
/// Returns [`ModelError::LayerOutOfRange`] when `draft_depth` is not a
/// valid exit and [`ModelError::BadConfig`] when `k` is zero.
pub fn validate_spec_params(
    model: &EdgeModel,
    draft_depth: usize,
    k: usize,
) -> Result<(), ModelError> {
    if draft_depth >= model.n_layers() {
        return Err(ModelError::LayerOutOfRange {
            layer: draft_depth,
            depth: model.n_layers(),
        });
    }
    if k == 0 {
        return Err(ModelError::BadConfig {
            reason: "self-speculative decoding needs k >= 1 draft tokens".into(),
        });
    }
    Ok(())
}

/// One self-speculative round over a KV-cached sequence: feed `token`,
/// draft up to `k` tokens from exit `draft_depth`, verify them all in one
/// chunked full-depth pass, and return the accepted tokens (at least
/// one). On return the cache has consumed exactly `token` plus all but
/// the last accepted token — the last accepted token is the round's
/// frontier, fed by the next round, exactly as a greedy session would.
///
/// When fewer than `k + 1` positions remain the draft count is clamped,
/// degenerating to a plain greedy step at `remaining == 1`, so the
/// sequence exhausts capacity at the same stream point as greedy decode.
///
/// # Errors
///
/// As [`crate::batched_decode_step`] for the token/cache checks, plus
/// [`validate_spec_params`]; on error the cache has not advanced.
pub fn spec_round(
    model: &EdgeModel,
    kv: &mut SequenceKv,
    token: usize,
    draft_depth: usize,
    k: usize,
) -> Result<SpecReport, ModelError> {
    spec_round_with_adapter(model, kv, token, draft_depth, k, None)
}

/// [`spec_round`] with a per-tenant adapter: both the shallow draft
/// passes and the full-depth verify pass apply the adapter's deltas
/// after each base projection, so the round is bit-identical to an
/// adapted greedy session (the multi-tenant serving engine's speculative
/// slots route here).
///
/// # Errors
///
/// As [`spec_round`].
pub fn spec_round_with_adapter(
    model: &EdgeModel,
    kv: &mut SequenceKv,
    token: usize,
    draft_depth: usize,
    k: usize,
    adapter: Option<&ResolvedAdapter>,
) -> Result<SpecReport, ModelError> {
    let cfg = model.config();
    validate_spec_params(model, draft_depth, k)?;
    if token >= cfg.vocab_size {
        return Err(ModelError::BadConfig {
            reason: format!("token {} outside vocabulary {}", token, cfg.vocab_size),
        });
    }
    kv.check_model(model)?;
    if kv.remaining() == 0 {
        return Err(ModelError::CapacityExhausted {
            capacity: kv.capacity,
        });
    }
    let t0 = kv.len();
    // Leave one position for the verify pass's correction token: drafting
    // never pushes the sequence past where greedy decode would stop.
    let k_eff = k.min(kv.remaining() - 1);
    let final_exit = model.n_layers() - 1;

    // Draft: k_eff sequential shallow steps. Only layers 0..=draft_depth
    // run; their KV rows are overwritten by the verify pass below, so the
    // untouched deeper layers never see stale rows.
    let mut guesses = Vec::with_capacity(k_eff);
    {
        let _draft = telemetry::span("spec.draft");
        let mut feed = token;
        for _ in 0..k_eff {
            let logits = forward_chunk(model, kv, &[feed], draft_depth, adapter)?;
            let probs = combine(&logits, &VotingCombiner::LastExit)?;
            let g = argmax(probs.row(0));
            guesses.push(g);
            feed = g;
        }
    }
    telemetry::counter("spec.draft_tokens", k_eff as u64);
    kv.truncate(t0);

    // Verify: one chunked full-depth causal pass over the real token plus
    // every draft guess.
    let mut fed = Vec::with_capacity(k_eff + 1);
    fed.push(token);
    fed.extend(guesses.iter().copied());
    let rows = {
        let _verify = telemetry::span("spec.verify");
        forward_chunk(model, kv, &fed, final_exit, adapter)?
    };
    telemetry::counter("spec.verify_passes", 1);

    // Accept the longest agreeing prefix plus the verifier's own token at
    // the first mismatch (or its bonus token after a full agreement).
    let mut accepted = Vec::new();
    let mut probs_out = Vec::new();
    for (j, row) in rows.iter().enumerate() {
        let probs = combine(std::slice::from_ref(row), &VotingCombiner::LastExit)?;
        let v = argmax(probs.row(0));
        accepted.push(v);
        probs_out.push(probs.row(0).to_vec());
        if j >= guesses.len() || guesses[j] != v {
            break;
        }
    }
    kv.truncate(t0 + accepted.len());
    telemetry::counter("spec.accepted_tokens", accepted.len() as u64);
    Ok(SpecReport {
        accepted,
        probs: probs_out,
        drafted: k_eff,
        verified: fed.len(),
    })
}

/// Generates `n_new` tokens after `prompt` with self-speculative decoding
/// — token-identical to greedy decoding over a KV-cached session with the
/// same windowing (proven by the decode-equivalence suite), but emitting
/// up to `k + 1` tokens per full-depth pass.
///
/// Windowing: the session holds the most recent `seq_len` tokens; when
/// its capacity is exhausted the session is rebuilt from the last
/// `seq_len` tokens of the stream (prefill all but the last, which the
/// next round feeds). Both the speculative path and its greedy oracle
/// rebuild at exactly `len == seq_len`, so their windows never diverge.
///
/// # Errors
///
/// As [`crate::generate`] for the prompt checks, plus
/// [`validate_spec_params`].
pub fn speculative_generate(
    model: &EdgeModel,
    prompt: &[usize],
    n_new: usize,
    draft_depth: usize,
    k: usize,
) -> Result<Vec<usize>, ModelError> {
    let seq_len = model.config().seq_len;
    let vocab = model.config().vocab_size;
    if prompt.is_empty() {
        return Err(ModelError::BadBatch {
            expected: 1,
            actual: 0,
        });
    }
    if let Some(&bad) = prompt.iter().find(|&&t| t >= vocab) {
        return Err(ModelError::BadConfig {
            reason: format!("prompt token {bad} outside vocabulary {vocab}"),
        });
    }
    validate_spec_params(model, draft_depth, k)?;
    let mut tokens = prompt.to_vec();
    let mut produced = 0usize;
    let mut kv = SequenceKv::new(model);
    'window: while produced < n_new {
        kv.reset();
        let take = tokens.len().min(seq_len);
        let window: Vec<usize> = tokens[tokens.len() - take..].to_vec();
        // Prefill must run the FULL stack: every layer's attention reads
        // the prompt positions' K/V rows, so a shallow prefill would leave
        // deeper layers attending over unwritten rows.
        if window.len() > 1 {
            forward_chunk(
                model,
                &mut kv,
                &window[..window.len() - 1],
                model.n_layers() - 1,
                None,
            )?;
        }
        // Invariant: the cache has consumed every stream token except the
        // frontier, which the next round feeds.
        let mut frontier = *window.last().expect("non-empty window");
        while produced < n_new {
            if kv.remaining() == 0 {
                continue 'window;
            }
            let round = spec_round(model, &mut kv, frontier, draft_depth, k)?;
            let keep = round.accepted.len().min(n_new - produced);
            if keep < round.accepted.len() {
                let drop = round.accepted.len() - keep;
                kv.truncate(kv.len() - drop);
            }
            tokens.extend_from_slice(&round.accepted[..keep]);
            produced += keep;
            frontier = *tokens.last().expect("round accepts at least one token");
        }
    }
    Ok(tokens)
}

/// Runs `fed` as one causal chunk through layers `0..=exit_layer`,
/// writing each position's K/V rows and advancing the cursor by
/// `fed.len()`, and returns one `(1, vocab)` logits tensor per position
/// from `exit_layer`'s head.
///
/// This is the single forward primitive behind both halves of a round:
/// the draft calls it one token at a time with a shallow exit, the
/// verifier with the whole draft chunk at full depth. It is the chunked
/// (multi-position, one sequence) sibling of the batched step's
/// `decode_chunk` (multi-sequence, one position each) and inherits its
/// bit-identity: all projections are shared multi-row matmuls, attention
/// is a per-position scalar loop over `0..=t0+i`, so the chunk equals
/// `fed.len()` sequential single-token steps bit-for-bit.
///
/// Callers must have validated tokens, capacity (`remaining >=
/// fed.len()`), and `exit_layer`.
pub(crate) fn forward_chunk(
    model: &EdgeModel,
    kv: &mut SequenceKv,
    fed: &[usize],
    exit_layer: usize,
    adapter: Option<&ResolvedAdapter>,
) -> Result<Vec<Tensor>, ModelError> {
    let cfg = model.config();
    let (c, heads) = (cfg.d_model, cfg.n_heads);
    let hs = c / heads;
    let scale = 1.0 / (hs as f32).sqrt();
    let n = fed.len();
    let t0 = kv.t;
    let mut x = Tensor::zeros(n, c);
    for (i, &tok) in fed.iter().enumerate() {
        let e = model.embed_one(tok, t0 + i)?;
        x.row_mut(i).copy_from_slice(e.row(0));
    }
    for l in 0..=exit_layer {
        let block = model.block(l);
        let n1 = block.ln1().forward_no_cache(&x)?;
        let (qkv_lin, proj) = block.attn().linears();
        let mut qkv = qkv_lin.forward_rows_no_cache(&n1)?; // (n, 3c)
        if let Some(ad) = adapter {
            // Delta lands before the K/V writes: the cached history must
            // be the adapted one, same as the batched step's contract.
            for i in 0..n {
                ad.apply_row(l, AdapterTarget::Qkv, n1.row(i), qkv.row_mut(i))?;
            }
        }
        // Write every position's K/V first; position i then attends over
        // rows 0..=t0+i only, exactly the causal prefix a sequential
        // session would have cached.
        for (i, row) in (0..n).map(|i| (i, qkv.row(i))) {
            kv.keys[l].row_mut(t0 + i).copy_from_slice(&row[c..2 * c]);
            kv.values[l]
                .row_mut(t0 + i)
                .copy_from_slice(&row[2 * c..3 * c]);
        }
        let mut concat = Tensor::zeros(n, c);
        for i in 0..n {
            let row = qkv.row(i);
            let t_now = t0 + i + 1;
            for h in 0..heads {
                let q = &row[h * hs..(h + 1) * hs];
                let mut scores = Tensor::zeros(1, t_now);
                for p in 0..t_now {
                    let kk = &kv.keys[l].row(p)[h * hs..(h + 1) * hs];
                    let dot: f32 = q.iter().zip(kk.iter()).map(|(a, b)| a * b).sum();
                    scores.set(0, p, dot * scale);
                }
                let att = softmax_rows(&scores);
                let out = &mut concat.row_mut(i)[h * hs..(h + 1) * hs];
                for p in 0..t_now {
                    let w = att.get(0, p);
                    let v = &kv.values[l].row(p)[h * hs..(h + 1) * hs];
                    for (o, &vv) in out.iter_mut().zip(v.iter()) {
                        *o += w * vv;
                    }
                }
            }
        }
        let mut a = proj.forward_rows_no_cache(&concat)?;
        if let Some(ad) = adapter {
            for i in 0..n {
                ad.apply_row(l, AdapterTarget::Proj, concat.row(i), a.row_mut(i))?;
            }
        }
        let x1 = x.add(&a)?;
        let n2 = block.ln2().forward_no_cache(&x1)?;
        let (fc1, fc2) = block.mlp().linears();
        let mut mid = fc1.forward_rows_no_cache(&n2)?;
        if let Some(ad) = adapter {
            for i in 0..n {
                ad.apply_row(l, AdapterTarget::Fc1, n2.row(i), mid.row_mut(i))?;
            }
        }
        let act = gelu_forward(&mid);
        let mut m_out = fc2.forward_rows_no_cache(&act)?;
        if let Some(ad) = adapter {
            for i in 0..n {
                ad.apply_row(l, AdapterTarget::Fc2, act.row(i), m_out.row_mut(i))?;
            }
        }
        x = x1.add(&m_out)?;
    }
    kv.t = t0 + n;
    let logits = model.exit_logits_rows(&x, exit_layer)?;
    let vocab = logits.shape().1;
    (0..n)
        .map(|i| Tensor::from_vec(1, vocab, logits.row(i).to_vec()).map_err(ModelError::Tensor))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::infer::InferenceSession;
    use edge_llm_tensor::TensorRng;

    fn model(seed: u64, layers: usize) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny().with_layers(layers), &mut rng).unwrap()
    }

    #[test]
    fn chunked_forward_matches_sequential_steps_bitwise() {
        let m = model(1, 3);
        let fed = [1usize, 4, 7, 2];
        let exit = m.n_layers() - 1;
        let mut chunk_kv = SequenceKv::new(&m);
        let chunk = forward_chunk(&m, &mut chunk_kv, &fed, exit, None).unwrap();
        assert_eq!(chunk_kv.len(), fed.len());
        let mut solo = InferenceSession::new(&m);
        for (i, &tok) in fed.iter().enumerate() {
            let r = solo.push_token_exits(tok, &[exit]).unwrap();
            let (a, b) = (&chunk[i], &r[0]);
            assert_eq!(a.shape(), b.shape());
            for v in 0..a.cols() {
                assert_eq!(
                    a.get(0, v).to_bits(),
                    b.get(0, v).to_bits(),
                    "position {i} vocab {v}"
                );
            }
        }
    }

    #[test]
    fn round_makes_progress_and_rolls_back() {
        let m = model(2, 4);
        let mut kv = SequenceKv::new(&m);
        let round = spec_round(&m, &mut kv, 3, 1, 4).unwrap();
        assert!(!round.accepted.is_empty());
        assert_eq!(round.verified, round.drafted + 1);
        assert!(round.accepted.len() <= round.verified);
        assert_eq!(round.probs.len(), round.accepted.len());
        // the frontier token (last accepted) has not been consumed yet
        assert_eq!(kv.len(), round.accepted.len());
    }

    #[test]
    fn draft_count_clamps_near_capacity() {
        let m = model(3, 2);
        let seq_len = m.config().seq_len;
        let mut kv = SequenceKv::new(&m);
        for t in 0..seq_len - 1 {
            forward_chunk(&m, &mut kv, &[t % m.config().vocab_size], 0, None).unwrap();
        }
        assert_eq!(kv.remaining(), 1);
        // remaining == 1 leaves no draft room: a round is a plain greedy step
        let round = spec_round(&m, &mut kv, 1, 1, 8).unwrap();
        assert_eq!(round.drafted, 0);
        assert_eq!(round.verified, 1);
        assert_eq!(round.accepted.len(), 1);
        assert_eq!(kv.remaining(), 0);
        assert!(matches!(
            spec_round(&m, &mut kv, 1, 1, 8),
            Err(ModelError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected_without_advancing() {
        let m = model(4, 2);
        let mut kv = SequenceKv::new(&m);
        assert!(matches!(
            spec_round(&m, &mut kv, 1, 99, 4),
            Err(ModelError::LayerOutOfRange { .. })
        ));
        assert!(matches!(
            spec_round(&m, &mut kv, 1, 1, 0),
            Err(ModelError::BadConfig { .. })
        ));
        assert!(matches!(
            spec_round(&m, &mut kv, 99_999, 1, 4),
            Err(ModelError::BadConfig { .. })
        ));
        assert_eq!(kv.len(), 0);
        assert!(speculative_generate(&m, &[], 4, 1, 4).is_err());
        assert!(speculative_generate(&m, &[99_999], 4, 1, 4).is_err());
        assert!(speculative_generate(&m, &[1], 4, 9, 4).is_err());
        assert!(speculative_generate(&m, &[1], 4, 1, 0).is_err());
    }

    #[test]
    fn generate_emits_requested_length() {
        let m = model(5, 4);
        let out = speculative_generate(&m, &[1, 2, 3], 5, 1, 4).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < m.config().vocab_size));
        let zero = speculative_generate(&m, &[1, 2], 0, 1, 4).unwrap();
        assert_eq!(zero, vec![1, 2]);
    }

    #[test]
    fn full_depth_draft_accepts_everything() {
        // drafting at the final exit makes draft == verifier, so every
        // draft must be accepted and each round emits k_eff + 1 tokens
        let m = model(6, 3);
        let mut kv = SequenceKv::new(&m);
        let round = spec_round(&m, &mut kv, 2, m.n_layers() - 1, 3).unwrap();
        assert_eq!(round.accepted.len(), round.drafted + 1);
    }
}
