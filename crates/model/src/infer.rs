//! KV-cached incremental decoding.
//!
//! [`crate::generate`] re-runs the full forward pass per emitted token —
//! simple but O(seq²·layers) per token. An [`InferenceSession`] keeps each
//! layer's key/value projections cached so appending one token costs one
//! token's worth of compute, which is how an adapted Edge-LLM model would
//! actually serve on a device. The session produces exactly the same
//! logits as the batched forward pass (verified by the equivalence tests).

use crate::error::ModelError;
use crate::model::EdgeModel;
use edge_llm_tensor::{softmax_rows, Tensor};

/// Incremental decoding state over a borrowed model.
///
/// # Example
///
/// ```
/// use edge_llm_model::{EdgeModel, InferenceSession, ModelConfig};
/// use edge_llm_tensor::TensorRng;
///
/// # fn main() -> Result<(), edge_llm_model::ModelError> {
/// let mut rng = TensorRng::seed_from(0);
/// let model = EdgeModel::new(ModelConfig::tiny(), &mut rng)?;
/// let mut session = InferenceSession::new(&model);
/// let logits = session.push_token(3)?;
/// assert_eq!(logits.shape(), (1, model.config().vocab_size));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InferenceSession<'a> {
    model: &'a EdgeModel,
    /// Per layer: cached keys and values, `(t, d_model)` filled up to `t`.
    keys: Vec<Tensor>,
    values: Vec<Tensor>,
    t: usize,
}

impl<'a> InferenceSession<'a> {
    /// Starts an empty session (capacity = the model's `seq_len`).
    pub fn new(model: &'a EdgeModel) -> Self {
        let cfg = model.config();
        let keys = (0..model.n_layers())
            .map(|_| Tensor::zeros(cfg.seq_len, cfg.d_model))
            .collect();
        let values = (0..model.n_layers())
            .map(|_| Tensor::zeros(cfg.seq_len, cfg.d_model))
            .collect();
        InferenceSession {
            model,
            keys,
            values,
            t: 0,
        }
    }

    /// Tokens consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no token has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Remaining capacity before the positional table is exhausted.
    pub fn remaining(&self) -> usize {
        self.model.config().seq_len - self.t
    }

    /// Bytes held by the key/value caches.
    pub fn cache_bytes(&self) -> usize {
        self.keys
            .iter()
            .chain(self.values.iter())
            .map(|t| t.len() * 4)
            .sum()
    }

    /// Resets the session to empty without reallocating.
    pub fn reset(&mut self) {
        self.t = 0;
    }

    /// Feeds one token and returns the next-token logits `(1, vocab)` from
    /// the final exit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExhausted`] when capacity (`seq_len`)
    /// is exhausted and [`ModelError::BadConfig`] for an
    /// out-of-vocabulary token.
    pub fn push_token(&mut self, token: usize) -> Result<Tensor, ModelError> {
        let h = self.advance(token)?;
        self.model
            .exit_logits_no_cache(&h, self.model.n_layers() - 1)
    }

    /// Feeds one token without computing any logits (prompt prefill).
    ///
    /// # Errors
    ///
    /// As [`InferenceSession::push_token`].
    pub fn advance_token(&mut self, token: usize) -> Result<(), ModelError> {
        self.advance(token).map(|_| ())
    }

    /// Feeds one token and returns per-exit logits for the given exits
    /// (for voting during incremental decoding).
    ///
    /// # Errors
    ///
    /// As [`InferenceSession::push_token`], plus
    /// [`ModelError::LayerOutOfRange`] for a bad exit index.
    pub fn push_token_exits(
        &mut self,
        token: usize,
        exits: &[usize],
    ) -> Result<Vec<Tensor>, ModelError> {
        if let Some(&bad) = exits.iter().find(|&&e| e >= self.model.n_layers()) {
            return Err(ModelError::LayerOutOfRange {
                layer: bad,
                depth: self.model.n_layers(),
            });
        }
        let capacity = self.model.config().seq_len;
        if self.t >= capacity {
            return Err(ModelError::CapacityExhausted { capacity });
        }
        let mut per_exit = vec![None; exits.len()];
        let mut x = self.model.embed_one(token, self.t)?;
        for l in 0..self.model.n_layers() {
            x = self.block_step(l, &x)?;
            for (slot, &e) in per_exit.iter_mut().zip(exits.iter()) {
                if e == l {
                    *slot = Some(self.model.exit_logits_no_cache(&x, l)?);
                }
            }
        }
        self.t += 1;
        Ok(per_exit
            .into_iter()
            .map(|o| o.expect("exit bounds checked"))
            .collect())
    }

    fn advance(&mut self, token: usize) -> Result<Tensor, ModelError> {
        let capacity = self.model.config().seq_len;
        if self.t >= capacity {
            return Err(ModelError::CapacityExhausted { capacity });
        }
        let mut x = self.model.embed_one(token, self.t)?;
        for l in 0..self.model.n_layers() {
            x = self.block_step(l, &x)?;
        }
        self.t += 1;
        Ok(x)
    }

    /// One block applied to a single-token row, reading/extending the KV
    /// cache for layer `l`.
    fn block_step(&mut self, l: usize, x: &Tensor) -> Result<Tensor, ModelError> {
        let cfg = self.model.config();
        let (c, heads) = (cfg.d_model, cfg.n_heads);
        let hs = c / heads;
        let scale = 1.0 / (hs as f32).sqrt();
        let block = self.model.block(l);
        let n1 = block.ln1().forward_no_cache(x)?;
        let (qkv_lin, proj) = block.attn().linears();
        let qkv = qkv_lin.forward_no_cache(&n1)?; // (1, 3c)
        let row = qkv.row(0);
        self.keys[l].row_mut(self.t).copy_from_slice(&row[c..2 * c]);
        self.values[l]
            .row_mut(self.t)
            .copy_from_slice(&row[2 * c..3 * c]);
        let t_now = self.t + 1;
        let mut concat = Tensor::zeros(1, c);
        for h in 0..heads {
            let q = &qkv.row(0)[h * hs..(h + 1) * hs];
            // scores over cached keys
            let mut scores = Tensor::zeros(1, t_now);
            for p in 0..t_now {
                let k = &self.keys[l].row(p)[h * hs..(h + 1) * hs];
                let dot: f32 = q.iter().zip(k.iter()).map(|(a, b)| a * b).sum();
                scores.set(0, p, dot * scale);
            }
            let att = softmax_rows(&scores);
            let out = &mut concat.row_mut(0)[h * hs..(h + 1) * hs];
            for p in 0..t_now {
                let w = att.get(0, p);
                let v = &self.values[l].row(p)[h * hs..(h + 1) * hs];
                for (o, &vv) in out.iter_mut().zip(v.iter()) {
                    *o += w * vv;
                }
            }
        }
        let a = proj.forward_no_cache(&concat)?;
        let x1 = x.add(&a)?;
        let n2 = block.ln2().forward_no_cache(&x1)?;
        let m = block.mlp().forward_no_cache(&n2)?;
        Ok(x1.add(&m)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn incremental_matches_full_forward_exactly() {
        let m = model(1);
        let cfg = m.config().clone();
        let mut rng = TensorRng::seed_from(2);
        let tokens: Vec<usize> = (0..cfg.seq_len)
            .map(|_| rng.index(cfg.vocab_size))
            .collect();
        let full = m.logits(&tokens, 1).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let row = session.push_token(tok).unwrap();
            for v in 0..cfg.vocab_size {
                let a = full.get(t, v);
                let b = row.get(0, v);
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {t} vocab {v}: batched {a} vs incremental {b}"
                );
            }
        }
    }

    #[test]
    fn per_exit_logits_match_batched_exits() {
        let m = model(3);
        let cfg = m.config().clone();
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3) % cfg.vocab_size).collect();
        let exits = [0usize, 1];
        let batched = m.logits_at_exits(&tokens, 1, &exits).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let rows = session.push_token_exits(tok, &exits).unwrap();
            for (e, row) in rows.iter().enumerate() {
                for v in 0..cfg.vocab_size {
                    assert!(
                        (batched[e].get(t, v) - row.get(0, v)).abs() < 1e-4,
                        "exit {e} position {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let m = model(4);
        let mut session = InferenceSession::new(&m);
        for _ in 0..m.config().seq_len {
            session.push_token(1).unwrap();
        }
        assert_eq!(session.remaining(), 0);
        assert!(session.push_token(1).is_err());
        session.reset();
        assert!(session.is_empty());
        assert!(session.push_token(1).is_ok());
    }

    #[test]
    fn bad_token_rejected() {
        let m = model(5);
        let mut session = InferenceSession::new(&m);
        assert!(session.push_token(9999).is_err());
        // a failed push must not consume capacity
        assert_eq!(session.len(), 0);
    }

    #[test]
    fn bad_exit_rejected() {
        let m = model(6);
        let mut session = InferenceSession::new(&m);
        assert!(session.push_token_exits(1, &[99]).is_err());
        assert_eq!(session.len(), 0);
    }

    #[test]
    fn cache_bytes_scale_with_model() {
        let m = model(7);
        let session = InferenceSession::new(&m);
        let cfg = m.config();
        assert_eq!(
            session.cache_bytes(),
            2 * m.n_layers() * cfg.seq_len * cfg.d_model * 4
        );
    }
}
