//! KV-cached incremental decoding.
//!
//! [`crate::generate`] re-runs the full forward pass per emitted token —
//! simple but O(seq²·layers) per token. An [`InferenceSession`] keeps each
//! layer's key/value projections cached so appending one token costs one
//! token's worth of compute, which is how an adapted Edge-LLM model would
//! actually serve on a device. The session produces exactly the same
//! logits as the batched forward pass (verified by the equivalence tests).
//!
//! A session is a single-slot view over the same machinery the serving
//! engine batches: it owns one [`SequenceKv`] and runs every push through
//! [`batched_decode_step`], so the solo and batched decode paths cannot
//! drift apart — they are one code path.

use crate::adapter::ResolvedAdapter;
use crate::batched::{batched_decode_step, BatchedStep, SequenceKv};
use crate::error::ModelError;
use crate::model::EdgeModel;
use crate::spec::{spec_round_with_adapter, SpecReport};
use edge_llm_tensor::Tensor;
use std::sync::Arc;

/// Incremental decoding state over a borrowed model.
///
/// # Example
///
/// ```
/// use edge_llm_model::{EdgeModel, InferenceSession, ModelConfig};
/// use edge_llm_tensor::TensorRng;
///
/// # fn main() -> Result<(), edge_llm_model::ModelError> {
/// let mut rng = TensorRng::seed_from(0);
/// let model = EdgeModel::new(ModelConfig::tiny(), &mut rng)?;
/// let mut session = InferenceSession::new(&model);
/// let logits = session.push_token(3)?;
/// assert_eq!(logits.shape(), (1, model.config().vocab_size));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InferenceSession<'a> {
    model: &'a EdgeModel,
    kv: SequenceKv,
    adapter: Option<Arc<ResolvedAdapter>>,
}

impl<'a> InferenceSession<'a> {
    /// Starts an empty session (capacity = the model's `seq_len`).
    pub fn new(model: &'a EdgeModel) -> Self {
        InferenceSession {
            model,
            kv: SequenceKv::new(model),
            adapter: None,
        }
    }

    /// Attaches (or clears) a tenant adapter; every subsequent push and
    /// speculative round applies its deltas after the base projections.
    /// The session is the oracle side of the multi-tenant differential
    /// tests: solo-with-adapter is what mixed-tenant batching must match
    /// bit-for-bit.
    pub fn set_adapter(&mut self, adapter: Option<Arc<ResolvedAdapter>>) {
        self.adapter = adapter;
    }

    /// Tokens consumed so far.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// Whether no token has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Remaining capacity before the positional table is exhausted.
    pub fn remaining(&self) -> usize {
        self.kv.remaining()
    }

    /// Bytes held by the key/value caches.
    pub fn cache_bytes(&self) -> usize {
        self.kv.cache_bytes()
    }

    /// Resets the session to empty without reallocating.
    pub fn reset(&mut self) {
        self.kv.reset();
    }

    /// Rolls the session back to `len` consumed tokens (no-op past the
    /// current length) — see [`SequenceKv::truncate`].
    pub fn truncate(&mut self, len: usize) {
        self.kv.truncate(len);
    }

    /// Feeds one token and returns the next-token logits `(1, vocab)` from
    /// the final exit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CapacityExhausted`] when capacity (`seq_len`)
    /// is exhausted and [`ModelError::BadConfig`] for an
    /// out-of-vocabulary token.
    pub fn push_token(&mut self, token: usize) -> Result<Tensor, ModelError> {
        let exits = [self.model.n_layers() - 1];
        let mut rows = self.push_token_exits(token, &exits)?;
        Ok(rows.swap_remove(0))
    }

    /// Feeds one token without computing any logits (prompt prefill).
    ///
    /// # Errors
    ///
    /// As [`InferenceSession::push_token`].
    pub fn advance_token(&mut self, token: usize) -> Result<(), ModelError> {
        self.push_token_exits(token, &[]).map(|_| ())
    }

    /// Feeds one token and returns per-exit logits for the given exits
    /// (for voting during incremental decoding).
    ///
    /// # Errors
    ///
    /// As [`InferenceSession::push_token`], plus
    /// [`ModelError::LayerOutOfRange`] for a bad exit index.
    pub fn push_token_exits(
        &mut self,
        token: usize,
        exits: &[usize],
    ) -> Result<Vec<Tensor>, ModelError> {
        let mut steps = [BatchedStep {
            token,
            kv: &mut self.kv,
            exits,
            adapter: self.adapter.as_deref(),
        }];
        let mut out = batched_decode_step(self.model, &mut steps)?;
        Ok(out.swap_remove(0))
    }

    /// One self-speculative draft/verify round: feeds `token`, drafts up
    /// to `k` tokens from exit `draft_depth`, verifies them in one
    /// full-depth pass, and rolls the cache back past rejected positions
    /// — see [`spec_round`] for the exact semantics and the bit-identity
    /// argument.
    ///
    /// # Errors
    ///
    /// As [`spec_round`].
    pub fn speculative_round(
        &mut self,
        token: usize,
        draft_depth: usize,
        k: usize,
    ) -> Result<SpecReport, ModelError> {
        spec_round_with_adapter(
            self.model,
            &mut self.kv,
            token,
            draft_depth,
            k,
            self.adapter.as_deref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use edge_llm_tensor::TensorRng;

    fn model(seed: u64) -> EdgeModel {
        let mut rng = TensorRng::seed_from(seed);
        EdgeModel::new(ModelConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn incremental_matches_full_forward_exactly() {
        let m = model(1);
        let cfg = m.config().clone();
        let mut rng = TensorRng::seed_from(2);
        let tokens: Vec<usize> = (0..cfg.seq_len)
            .map(|_| rng.index(cfg.vocab_size))
            .collect();
        let full = m.logits(&tokens, 1).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let row = session.push_token(tok).unwrap();
            for v in 0..cfg.vocab_size {
                let a = full.get(t, v);
                let b = row.get(0, v);
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {t} vocab {v}: batched {a} vs incremental {b}"
                );
            }
        }
    }

    #[test]
    fn per_exit_logits_match_batched_exits() {
        let m = model(3);
        let cfg = m.config().clone();
        let tokens: Vec<usize> = (0..cfg.seq_len).map(|i| (i * 3) % cfg.vocab_size).collect();
        let exits = [0usize, 1];
        let batched = m.logits_at_exits(&tokens, 1, &exits).unwrap();
        let mut session = InferenceSession::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let rows = session.push_token_exits(tok, &exits).unwrap();
            for (e, row) in rows.iter().enumerate() {
                for v in 0..cfg.vocab_size {
                    assert!(
                        (batched[e].get(t, v) - row.get(0, v)).abs() < 1e-4,
                        "exit {e} position {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let m = model(4);
        let mut session = InferenceSession::new(&m);
        for _ in 0..m.config().seq_len {
            session.push_token(1).unwrap();
        }
        assert_eq!(session.remaining(), 0);
        assert!(session.push_token(1).is_err());
        session.reset();
        assert!(session.is_empty());
        assert!(session.push_token(1).is_ok());
    }

    #[test]
    fn bad_token_rejected() {
        let m = model(5);
        let mut session = InferenceSession::new(&m);
        assert!(session.push_token(9999).is_err());
        // a failed push must not consume capacity
        assert_eq!(session.len(), 0);
    }

    #[test]
    fn bad_exit_rejected() {
        let m = model(6);
        let mut session = InferenceSession::new(&m);
        assert!(session.push_token_exits(1, &[99]).is_err());
        assert_eq!(session.len(), 0);
    }

    #[test]
    fn cache_bytes_scale_with_model() {
        let m = model(7);
        let session = InferenceSession::new(&m);
        let cfg = m.config();
        assert_eq!(
            session.cache_bytes(),
            2 * m.n_layers() * cfg.seq_len * cfg.d_model * 4
        );
    }

    #[test]
    fn truncate_rolls_back_and_replays_identically() {
        let m = model(8);
        let mut session = InferenceSession::new(&m);
        session.advance_token(1).unwrap();
        session.advance_token(2).unwrap();
        let reference = session.push_token(3).unwrap();
        // roll back past the last token, then replay it
        session.truncate(2);
        assert_eq!(session.len(), 2);
        let replay = session.push_token(3).unwrap();
        for v in 0..m.config().vocab_size {
            assert_eq!(reference.get(0, v).to_bits(), replay.get(0, v).to_bits());
        }
        // truncating past the end is a no-op
        session.truncate(99);
        assert_eq!(session.len(), 3);
    }
}
