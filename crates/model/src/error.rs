use edge_llm_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for model construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The configuration was internally inconsistent.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A token batch did not match `batch * seq_len`.
    BadBatch {
        /// Expected token count.
        expected: usize,
        /// Provided token count.
        actual: usize,
    },
    /// A layer index exceeded the model depth.
    LayerOutOfRange {
        /// Requested layer.
        layer: usize,
        /// Model depth.
        depth: usize,
    },
    /// A decoding session was pushed past the positional capacity
    /// (`seq_len`) of its key/value cache.
    CapacityExhausted {
        /// The session capacity that was exceeded.
        capacity: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A compression operation failed.
    Compression {
        /// Human-readable reason.
        reason: String,
    },
    /// A checkpoint could not be written, or was unreadable, corrupt, or
    /// incompatible with this model.
    Checkpoint {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig { reason } => write!(f, "invalid model config: {reason}"),
            ModelError::BadBatch { expected, actual } => {
                write!(
                    f,
                    "token batch length {actual} does not equal batch*seq_len {expected}"
                )
            }
            ModelError::LayerOutOfRange { layer, depth } => {
                write!(f, "layer {layer} out of range for depth {depth}")
            }
            ModelError::CapacityExhausted { capacity } => {
                write!(f, "session capacity of {capacity} tokens exhausted")
            }
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Compression { reason } => write!(f, "compression error: {reason}"),
            ModelError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<edge_llm_quant::QuantError> for ModelError {
    fn from(e: edge_llm_quant::QuantError) -> Self {
        ModelError::Compression {
            reason: e.to_string(),
        }
    }
}

impl From<edge_llm_prune::PruneError> for ModelError {
    fn from(e: edge_llm_prune::PruneError) -> Self {
        ModelError::Compression {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::from(TensorError::ZeroDimension { op: "x" });
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = ModelError::BadConfig {
            reason: "d_model not divisible".into(),
        };
        assert!(e.to_string().contains("invalid model config"));
    }
}
