use crate::error::ModelError;
use crate::linear::{Linear, LinearCache};
use edge_llm_tensor::{gelu_backward, gelu_forward, Tensor, TensorRng};

/// Two-layer GELU MLP: `d_model -> d_ff -> d_model`.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

/// Activations cached by [`Mlp::forward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    fc1_cache: LinearCache,
    pre_act: Tensor,
    fc2_cache: LinearCache,
}

impl MlpCache {
    /// Approximate bytes held alive by this cache.
    pub fn bytes(&self) -> usize {
        self.fc1_cache.bytes() + self.pre_act.len() * 4 + self.fc2_cache.bytes()
    }
}

impl Mlp {
    /// Creates an MLP with the given input and hidden widths.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut TensorRng) -> Self {
        Mlp {
            fc1: Linear::new(d_model, d_ff, rng),
            fc2: Linear::new(d_ff, d_model, rng),
        }
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.fc1.num_params() + self.fc2.num_params()
    }

    /// First projection (exposed for compression policies).
    pub fn fc1_mut(&mut self) -> &mut Linear {
        &mut self.fc1
    }

    /// Second projection (exposed for compression policies).
    pub fn fc2_mut(&mut self) -> &mut Linear {
        &mut self.fc2
    }

    /// Read access to the projections, `(fc1, fc2)`.
    pub fn linears(&self) -> (&Linear, &Linear) {
        (&self.fc1, &self.fc2)
    }

    /// Forward pass, caching activations.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, MlpCache), ModelError> {
        let (pre_act, fc1_cache) = self.fc1.forward(x)?;
        let act = gelu_forward(&pre_act);
        let (y, fc2_cache) = self.fc2.forward(&act)?;
        Ok((
            y,
            MlpCache {
                fc1_cache,
                pre_act,
                fc2_cache,
            },
        ))
    }

    /// Forward pass without retaining activations.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn forward_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        let h = gelu_forward(&self.fc1.forward_no_cache(x)?);
        self.fc2.forward_no_cache(&h)
    }

    /// Backward pass: accumulates projection gradients, returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn backward(&mut self, cache: &MlpCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        let dact = self.fc2.backward(&cache.fc2_cache, dy)?;
        let dpre = gelu_backward(&cache.pre_act, &dact)?;
        self.fc1.backward(&cache.fc1_cache, &dpre)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.fc1.zero_grad();
        self.fc2.zero_grad();
    }

    /// Visits `(param, grad)` pairs: fc1 then fc2, weight before bias.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    /// Read-only mirror of [`Mlp::visit_params`]: same slice order, no
    /// cache invalidation.
    pub fn visit_params_ro(&self, f: &mut dyn FnMut(&[f32])) {
        self.fc1.visit_params_ro(f);
        self.fc2.visit_params_ro(f);
    }

    /// Number of slice pairs [`Mlp::visit_params`] yields.
    pub fn param_slice_count(&self) -> usize {
        self.fc1.param_slice_count() + self.fc2.param_slice_count()
    }

    /// Re-applies pruning masks after an optimizer step.
    pub fn enforce_masks(&mut self) {
        self.fc1.enforce_mask();
        self.fc2.enforce_mask();
    }

    /// Quantizes the projections' weights into packed integer codes for
    /// the decode path (see [`Linear::pack_weights`]).
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn pack_weights(&self) -> Result<(), ModelError> {
        self.fc1.pack_weights()?;
        self.fc2.pack_weights()
    }

    /// Enables or disables the compressed-weight cache on both projections.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.fc1.set_cache_enabled(enabled);
        self.fc2.set_cache_enabled(enabled);
    }

    /// Enables or disables the packed integer-GEMM decode route on both
    /// projections.
    pub fn set_integer_decode_enabled(&mut self, enabled: bool) {
        self.fc1.set_integer_decode_enabled(enabled);
        self.fc2.set_integer_decode_enabled(enabled);
    }

    /// Bytes the decode path keeps resident for the projections' weights.
    pub fn weight_storage_bytes(&self) -> usize {
        self.fc1.weight_storage_bytes() + self.fc2.weight_storage_bytes()
    }

    /// Effective-weight re-quantizations across both projections.
    pub fn requant_count(&self) -> u64 {
        self.fc1.requant_count() + self.fc2.requant_count()
    }

    /// Weight-cache evictions across both projections.
    pub fn cache_invalidation_count(&self) -> u64 {
        self.fc1.cache_invalidation_count() + self.fc2.cache_invalidation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mlp = Mlp::new(8, 32, &mut rng);
        let x = Tensor::randn(5, 8, 1.0, &mut rng);
        let (y, _) = mlp.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(mlp.num_params(), 8 * 32 + 32 + 32 * 8 + 8);
    }

    #[test]
    fn backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(2);
        let mut mlp = Mlp::new(4, 8, &mut rng);
        let x = Tensor::randn(3, 4, 0.8, &mut rng);
        let dy = Tensor::randn(3, 4, 1.0, &mut rng);
        let (_, cache) = mlp.forward(&x).unwrap();
        let dx = mlp.backward(&cache, &dy).unwrap();
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let lp: f32 = mlp
                .forward_no_cache(&xp)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig - eps;
            let lm: f32 = mlp
                .forward_no_cache(&xp)
                .unwrap()
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            xp.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 2e-2, "element {i}");
        }
    }

    #[test]
    fn no_cache_matches_cached() {
        let mut rng = TensorRng::seed_from(3);
        let mlp = Mlp::new(6, 12, &mut rng);
        let x = Tensor::randn(4, 6, 1.0, &mut rng);
        let (y1, _) = mlp.forward(&x).unwrap();
        assert!(y1.approx_eq(&mlp.forward_no_cache(&x).unwrap(), 0.0));
    }
}
