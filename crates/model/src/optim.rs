use std::collections::HashMap;

/// A parameter-slice optimizer driven by the model's id-keyed visitor.
///
/// The model calls [`Optimizer::update`] once per trainable parameter slice,
/// passing a stable `id` so stateful optimizers can keep per-parameter
/// moments even though adaptive layer tuning trains a different subset of
/// parameters each iteration.
pub trait Optimizer {
    /// Applies one update to `param` given `grad`, then zeroes `grad`.
    fn update(&mut self, id: usize, param: &mut [f32], grad: &mut [f32]);

    /// Advances the step counter (call once per optimization step, before
    /// the per-parameter updates of that step).
    fn begin_step(&mut self);
}

fn clip_slice(grad: &mut [f32], max_norm: f32) {
    if max_norm <= 0.0 || max_norm.is_nan() {
        return;
    }
    let norm = grad
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        grad.iter_mut().for_each(|g| *g *= scale);
    }
}

/// Stochastic gradient descent with optional momentum and per-slice
/// gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD at learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            clip: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables per-parameter-tensor gradient-norm clipping.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        self.clip = max_norm;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Per-slice gradient-norm clip (0 disables).
    pub fn clip(&self) -> f32 {
        self.clip
    }

    /// Snapshots hyperparameters and per-slice velocity, id-sorted so the
    /// result is deterministic and checkpoints are byte-stable.
    pub fn export_state(&self) -> SgdState {
        let mut velocity: Vec<(usize, Vec<f32>)> = self
            .velocity
            .iter()
            .map(|(id, v)| (*id, v.clone()))
            .collect();
        velocity.sort_by_key(|(id, _)| *id);
        SgdState {
            lr: self.lr,
            momentum: self.momentum,
            clip: self.clip,
            velocity,
        }
    }

    /// Rebuilds an optimizer from a snapshot taken by [`Sgd::export_state`].
    pub fn from_state(state: &SgdState) -> Self {
        Sgd {
            lr: state.lr,
            momentum: state.momentum,
            clip: state.clip,
            velocity: state.velocity.iter().cloned().collect(),
        }
    }
}

/// A serializable snapshot of an [`Sgd`] optimizer: hyperparameters plus
/// the per-slice momentum buffers, keyed by the model's stable slice ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdState {
    /// Learning rate at capture time (resume must honor backoff).
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Per-slice gradient-norm clip (0 disables).
    pub clip: f32,
    /// `(slice id, velocity)` pairs, ascending by id.
    pub velocity: Vec<(usize, Vec<f32>)>,
}

impl Optimizer for Sgd {
    fn update(&mut self, id: usize, param: &mut [f32], grad: &mut [f32]) {
        clip_slice(grad, self.clip);
        if self.momentum == 0.0 {
            for (p, g) in param.iter_mut().zip(grad.iter_mut()) {
                *p -= self.lr * *g;
                *g = 0.0;
            }
            return;
        }
        let v = self
            .velocity
            .entry(id)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, g), vi) in param.iter_mut().zip(grad.iter_mut()).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + *g;
            *p -= self.lr * *vi;
            *g = 0.0;
        }
    }

    fn begin_step(&mut self) {}
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam optimizer with bias correction and optional per-slice gradient
/// clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: f32,
    t: u32,
    slots: HashMap<usize, AdamSlot>,
}

impl Adam {
    /// Adam with the standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 0.0,
            t: 0,
            slots: HashMap::new(),
        }
    }

    /// Enables per-parameter-tensor gradient-norm clipping.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        self.clip = max_norm;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn update(&mut self, id: usize, param: &mut [f32], grad: &mut [f32]) {
        clip_slice(grad, self.clip);
        let slot = self.slots.entry(id).or_insert_with(|| AdamSlot {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
        });
        let t = self.t.max(1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..param.len() {
            let g = grad[i];
            slot.m[i] = self.beta1 * slot.m[i] + (1.0 - self.beta1) * g;
            slot.v[i] = self.beta2 * slot.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = slot.m[i] / bc1;
            let vhat = slot.v[i] / bc2;
            param[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            grad[i] = 0.0;
        }
    }

    fn begin_step(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descend<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        // minimize f(p) = 0.5 * p^2, grad = p
        let mut p = vec![4.0f32];
        for _ in 0..steps {
            opt.begin_step();
            let mut g = vec![p[0]];
            opt.update(0, &mut p, &mut g);
            assert_eq!(g[0], 0.0, "grad must be zeroed after update");
        }
        p[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let final_p = quadratic_descend(&mut Sgd::new(0.1), 100);
        assert!(final_p.abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let plain = quadratic_descend(&mut Sgd::new(0.01), 50).abs();
        let fast = quadratic_descend(&mut Sgd::with_momentum(0.01, 0.9), 50).abs();
        assert!(fast < plain);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let final_p = quadratic_descend(&mut Adam::new(0.3), 200);
        assert!(final_p.abs() < 0.05, "got {final_p}");
    }

    #[test]
    fn adam_state_is_per_id() {
        let mut adam = Adam::new(0.1);
        adam.begin_step();
        let mut p0 = vec![1.0f32];
        let mut g0 = vec![1.0f32];
        adam.update(0, &mut p0, &mut g0);
        let mut p1 = vec![1.0f32];
        let mut g1 = vec![1.0f32];
        adam.update(1, &mut p1, &mut g1);
        // identical fresh state: identical first update
        assert_eq!(p0[0], p1[0]);
        assert_eq!(adam.slots.len(), 2);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut sgd = Sgd::new(1.0).with_clip(1.0);
        let mut p = vec![0.0f32, 0.0];
        let mut g = vec![30.0f32, 40.0]; // norm 50 -> clipped to 1
        sgd.begin_step();
        sgd.update(0, &mut p, &mut g);
        let moved = (p[0] * p[0] + p[1] * p[1]).sqrt();
        assert!((moved - 1.0).abs() < 1e-4, "moved {moved}");
        // direction preserved
        assert!((p[0] / p[1] - 30.0 / 40.0).abs() < 1e-4);
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut adam = Adam::new(0.1).with_clip(10.0);
        let mut adam_ref = Adam::new(0.1);
        let mut p1 = vec![1.0f32];
        let mut p2 = vec![1.0f32];
        let mut g1 = vec![0.5f32];
        let mut g2 = vec![0.5f32];
        adam.begin_step();
        adam_ref.begin_step();
        adam.update(0, &mut p1, &mut g1);
        adam_ref.update(0, &mut p2, &mut g2);
        assert_eq!(p1[0], p2[0]);
    }

    #[test]
    fn sgd_state_roundtrip_resumes_identically() {
        let mut a = Sgd::with_momentum(0.05, 0.9).with_clip(2.0);
        let mut p = vec![1.0f32, -2.0];
        for _ in 0..5 {
            a.begin_step();
            let mut g = vec![p[0], p[1]];
            a.update(7, &mut p, &mut g);
        }
        let mut b = Sgd::from_state(&a.export_state());
        assert_eq!(a.export_state(), b.export_state());
        let mut pa = p.clone();
        let mut pb = p;
        let mut ga = vec![0.3f32, -0.7];
        let mut gb = ga.clone();
        a.begin_step();
        b.begin_step();
        a.update(7, &mut pa, &mut ga);
        b.update(7, &mut pb, &mut gb);
        assert_eq!(pa, pb, "restored optimizer must step bit-identically");
    }

    #[test]
    fn sgd_state_is_id_sorted() {
        let mut opt = Sgd::with_momentum(0.1, 0.5);
        for id in [9usize, 2, 5] {
            let mut p = vec![1.0f32];
            let mut g = vec![1.0f32];
            opt.begin_step();
            opt.update(id, &mut p, &mut g);
        }
        let ids: Vec<usize> = opt
            .export_state()
            .velocity
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut sgd = Sgd::new(1.0);
        sgd.set_lr(0.0);
        let mut p = vec![2.0f32];
        let mut g = vec![1.0f32];
        sgd.update(0, &mut p, &mut g);
        assert_eq!(p[0], 2.0);
        assert_eq!(sgd.lr(), 0.0);
    }
}
