use crate::error::ModelError;
use edge_llm_prune::PruneMask;
use edge_llm_quant::{
    fake_quant, fake_quant_backward, fake_quant_row_in_place, packed_decode_matmul,
    packed_gemm_supported, quantize_activations, QuantScheme, QuantizedTensor,
};
use edge_llm_tensor::{
    add_bias_backward, add_bias_forward, matmul_a_bt, matmul_at_b, matmul_fill_b_with, Tensor,
    TensorRng,
};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A fully-connected layer `y = x · W + b` with explicit gradients and
/// optional per-layer compression state.
///
/// The weight is stored as `(d_in, d_out)`. Compression hooks:
///
/// * a [`PruneMask`] keeps pruned weights (and their gradients) at zero,
/// * a [`QuantScheme`] makes the forward pass use the fake-quantized weight
///   while gradients flow via the straight-through estimator.
///
/// These are exactly the per-layer knobs a LUC policy assigns.
///
/// # Compressed-weight cache
///
/// Masking + fake-quantizing the whole weight on every forward call wastes
/// the one property Edge-LLM's compressed layers have: they are *frozen*
/// almost all of the time (only the layers inside the adaptive tuning
/// window change per iteration, and at inference nothing changes at all).
/// The layer therefore keeps a lazily-populated cache of its effective
/// weight, plus — after [`Linear::pack_weights`] — the weight as packed
/// integer codes routed through a blocked row-dequantizing kernel.
///
/// Every mutation path (`visit_params`, `set_mask` / `set_quant` /
/// `set_activation_quant`, `enforce_mask` when it actually changes a
/// value, `weight_mut`) invalidates the cache, so cached results are
/// **bit-identical** to recomputing the effective weight on every call —
/// the invariant the staleness tests in `tests/weight_cache.rs` pin down.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Vec<f32>,
    dw: Tensor,
    db: Vec<f32>,
    mask: Option<PruneMask>,
    quant: Option<QuantScheme>,
    act_quant: Option<QuantScheme>,
    wcache: WeightCache,
    cache_enabled: bool,
    int_decode_enabled: bool,
    counters: CacheCounters,
}

/// Telemetry tallies for the compressed-weight datapath. Atomics because
/// the immutable forward paths (shared across batched-decode workers)
/// bump them through `&self`; purely observational — they never influence
/// computed values.
#[derive(Debug, Default)]
struct CacheCounters {
    /// Effective-weight materializations with a quant scheme installed
    /// (each one is a re-quantization of the full weight).
    requants: AtomicU64,
    /// Cache evictions that actually dropped a cached form.
    invalidations: AtomicU64,
}

impl Clone for CacheCounters {
    fn clone(&self) -> Self {
        CacheCounters {
            requants: AtomicU64::new(self.requants.load(Ordering::Relaxed)),
            invalidations: AtomicU64::new(self.invalidations.load(Ordering::Relaxed)),
        }
    }
}

/// Lazily-populated derived forms of the weight. `OnceLock` lets the
/// immutable forward paths (shared across the batched-decode worker
/// threads) populate the cache; every mutating method clears it by
/// replacing the cells.
#[derive(Debug, Clone, Default)]
struct WeightCache {
    /// The dense effective (masked + fake-quantized) weight.
    dense: OnceLock<Arc<Tensor>>,
    /// The weight as packed integer codes (decode/serving path); holds the
    /// layer's resident weight bytes at the LUC policy's bit-width ratio.
    packed: OnceLock<Arc<QuantizedTensor>>,
    /// The masked *transposed* weight as packed codes (one symmetric
    /// scale per **output channel**) — the operand of the packed integer
    /// GEMM. Populated only for layers eligible for the integer decode
    /// route (see [`Linear::int_decode_schemes`]).
    packed_t: OnceLock<Arc<QuantizedTensor>>,
}

/// Activations cached by [`Linear::forward`] for the backward pass.
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Tensor,
    w_eff: Option<Arc<Tensor>>,
}

impl LinearCache {
    /// Approximate bytes held alive by this cache.
    pub fn bytes(&self) -> usize {
        let w = self.w_eff.as_ref().map_or(0, |t| t.len() * 4);
        self.x.len() * 4 + w
    }
}

impl Linear {
    /// Creates a layer with Kaiming-initialized weights and zero bias.
    pub fn new(d_in: usize, d_out: usize, rng: &mut TensorRng) -> Self {
        Linear {
            w: Tensor::kaiming(d_in, d_out, rng),
            b: vec![0.0; d_out],
            dw: Tensor::zeros(d_in, d_out),
            db: vec![0.0; d_out],
            mask: None,
            quant: None,
            act_quant: None,
            wcache: WeightCache::default(),
            cache_enabled: true,
            int_decode_enabled: true,
            counters: CacheCounters::default(),
        }
    }

    /// Creates a bias-free layer (used for the unembedding head).
    pub fn new_no_bias(d_in: usize, d_out: usize, rng: &mut TensorRng) -> Self {
        let mut l = Self::new(d_in, d_out, rng);
        l.b.clear();
        l.db.clear();
        l
    }

    /// `(d_in, d_out)`.
    pub fn shape(&self) -> (usize, usize) {
        self.w.shape()
    }

    /// Read access to the weight.
    pub fn weight(&self) -> &Tensor {
        &self.w
    }

    /// Mutable access to the weight (used by LoRA merging and tests).
    /// Invalidates the compressed-weight cache: the caller may write
    /// through the returned borrow.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.invalidate_weight_cache();
        &mut self.w
    }

    /// Read access to the accumulated weight gradient.
    pub fn weight_grad(&self) -> &Tensor {
        &self.dw
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Installs (or clears) a pruning mask; the weight is masked immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if the mask shape differs.
    pub fn set_mask(&mut self, mask: Option<PruneMask>) -> Result<(), ModelError> {
        if let Some(m) = &mask {
            m.apply(&mut self.w)?;
        }
        self.mask = mask;
        self.invalidate_weight_cache();
        Ok(())
    }

    /// Installs (or clears) a fake-quantization scheme for the forward pass.
    pub fn set_quant(&mut self, quant: Option<QuantScheme>) {
        self.quant = quant;
        self.invalidate_weight_cache();
    }

    /// Installs (or clears) an *activation* fake-quantization scheme: the
    /// layer input is quantize-dequantized before the matmul, modelling a
    /// fully integer datapath. Use an asymmetric scheme (activations are
    /// not zero-centred); because the fitted range covers the batch, the
    /// straight-through backward is exactly the identity.
    pub fn set_activation_quant(&mut self, act_quant: Option<QuantScheme>) {
        self.act_quant = act_quant;
        // The weight cache does not depend on the activation scheme, but a
        // scheme change redefines the layer's datapath; drop derived state
        // conservatively rather than reason about which parts survive.
        self.invalidate_weight_cache();
    }

    /// The installed activation-quantization scheme, if any.
    pub fn activation_quant(&self) -> Option<QuantScheme> {
        self.act_quant
    }

    /// The installed mask, if any.
    pub fn mask(&self) -> Option<&PruneMask> {
        self.mask.as_ref()
    }

    /// The installed quantization scheme, if any.
    pub fn quant(&self) -> Option<QuantScheme> {
        self.quant
    }

    /// Enables or disables the compressed-weight cache (enabled by
    /// default). Disabling recomputes the effective weight on every
    /// forward call — the recompute-every-time baseline the benchmarks
    /// compare against; results are bit-identical either way.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.invalidate_weight_cache();
        }
    }

    /// Whether the compressed-weight cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Enables or disables the packed integer-GEMM decode route (enabled
    /// by default). Disabling falls back to the f32 routes
    /// (fake-quantized activations x dequantized weight panels) — the
    /// baseline the decode benchmarks compare against. The flag is a
    /// route selector only: it never invalidates caches, and layers
    /// outside [`Linear::int_decode_schemes`] eligibility ignore it.
    pub fn set_integer_decode_enabled(&mut self, enabled: bool) {
        self.int_decode_enabled = enabled;
    }

    /// Whether the packed integer-GEMM decode route is enabled.
    pub fn integer_decode_enabled(&self) -> bool {
        self.int_decode_enabled
    }

    /// The `(weight, activation)` schemes of the integer decode route, or
    /// `None` when this layer stays on the f32 paths.
    ///
    /// Eligible layers carry a symmetric per-row weight scheme **and** an
    /// asymmetric per-row activation scheme, both at ≤ 8-bit codes
    /// ([`packed_gemm_supported`]) — i.e. layers whose LUC policy already
    /// models a fully integer datapath. Weight-only or activation-only
    /// layers keep their existing f32 routes bit-for-bit.
    pub fn int_decode_schemes(&self) -> Option<(QuantScheme, QuantScheme)> {
        if !self.int_decode_enabled {
            return None;
        }
        match (self.quant, self.act_quant) {
            (Some(w), Some(a)) if packed_gemm_supported(w, a) => Some((w, a)),
            _ => None,
        }
    }

    /// Whether the transposed integer-GEMM weight is currently packed.
    pub fn is_int_packed(&self) -> bool {
        self.wcache.packed_t.get().is_some()
    }

    /// Whether a dense effective weight is currently cached (test hook for
    /// the staleness suite).
    pub fn has_cached_weight(&self) -> bool {
        self.wcache.dense.get().is_some()
    }

    /// Whether the weight is held as packed integer codes.
    pub fn is_packed(&self) -> bool {
        self.wcache.packed.get().is_some()
    }

    /// Bytes the decode path keeps resident for this layer's weight:
    /// the packed codes plus group metadata once [`Linear::pack_weights`]
    /// has run, the dense f32 weight otherwise.
    pub fn weight_storage_bytes(&self) -> usize {
        let packed_t = self.wcache.packed_t.get().map_or(0, |q| q.storage_bytes());
        match self.wcache.packed.get() {
            Some(q) => q.storage_bytes() + packed_t,
            None if packed_t > 0 => packed_t,
            None => self.w.len() * 4,
        }
    }

    fn invalidate_weight_cache(&mut self) {
        let had_cached = self.wcache.dense.get().is_some()
            || self.wcache.packed.get().is_some()
            || self.wcache.packed_t.get().is_some();
        self.wcache.dense.take();
        self.wcache.packed.take();
        self.wcache.packed_t.take();
        if had_cached {
            self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Times this layer materialized its effective weight with a quant
    /// scheme installed (each is a full re-quantization). Monotonic over
    /// the layer's lifetime; the tuner reports per-step deltas.
    pub fn requant_count(&self) -> u64 {
        self.counters.requants.load(Ordering::Relaxed)
    }

    /// Cache invalidations that actually evicted a cached weight form.
    pub fn cache_invalidation_count(&self) -> u64 {
        self.counters.invalidations.load(Ordering::Relaxed)
    }

    /// Quantizes the weight into packed integer codes so the no-cache
    /// forward paths (inference, serving) run the blocked row-dequantizing
    /// kernel instead of materializing the dense effective weight. A no-op
    /// for layers without a quant scheme, with the cache disabled, or when
    /// already packed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if quantization fails (e.g.
    /// non-finite weights).
    pub fn pack_weights(&self) -> Result<(), ModelError> {
        let Some(scheme) = self.quant else {
            return Ok(());
        };
        if !self.cache_enabled {
            return Ok(());
        }
        if self.wcache.packed.get().is_none() {
            let q = Arc::new(QuantizedTensor::quantize(&self.w, scheme)?);
            let _ = self.wcache.packed.set(q);
        }
        // Eligible layers additionally pack the transposed integer-GEMM
        // operand so serving never pays the build on the first token.
        if let Some((ws, _)) = self.int_decode_schemes() {
            if self.wcache.packed_t.get().is_none() {
                let q = Arc::new(self.int_weight(ws)?);
                let _ = self.wcache.packed_t.set(q);
            }
        }
        Ok(())
    }

    /// Builds the packed integer-GEMM weight: the masked **transposed**
    /// weight (`d_out x d_in`, so symmetric per-row scales land on output
    /// channels and hoist out of the reduction) quantized under the
    /// layer's weight scheme. Masked positions are written as exact zero
    /// before quantization; symmetric quantization maps them to the
    /// zero-point code, so they contribute exactly nothing to the integer
    /// accumulation — the transposed grid needs no re-mask pass.
    ///
    /// This grid is the canonical numerics of the integer decode route
    /// (DESIGN.md §5k): it differs from the fake-quant grid of the stored
    /// `(d_in, d_out)` orientation, whose per-*input*-row scales cannot
    /// be hoisted out of an integer accumulation at all.
    fn int_weight(&self, scheme: QuantScheme) -> Result<QuantizedTensor, ModelError> {
        let (d_in, d_out) = self.w.shape();
        self.counters.requants.fetch_add(1, Ordering::Relaxed);
        let keep = self.mask.as_ref().map(|m| m.as_slice());
        let mut wt = Tensor::zeros(d_out, d_in);
        {
            let dst = wt.as_mut_slice();
            let src = self.w.as_slice();
            for p in 0..d_in {
                for j in 0..d_out {
                    let kept = match keep {
                        Some(k) => k[p * d_out + j],
                        None => true,
                    };
                    dst[j * d_in + p] = if kept { src[p * d_out + j] } else { 0.0 };
                }
            }
        }
        Ok(QuantizedTensor::quantize(&wt, scheme)?)
    }

    /// Runs the packed integer GEMM for eligible layers, or returns
    /// `Ok(None)` so the caller falls through to the f32 routes.
    ///
    /// The activation rows are quantized per-row (making each batch row
    /// bit-identical to the same row decoded solo — the property batched
    /// serving, speculative draft/verify chunks, and per-row adapter
    /// deltas all lean on), then multiplied directly against the packed
    /// transposed weight words. With the cache enabled the packed operand
    /// is built at most once per mutation; with it disabled the operand
    /// is rebuilt fresh each call — both feed the identical kernel, so
    /// the routes are bit-identical by construction.
    fn integer_decode_matmul(&self, x: &Tensor) -> Result<Option<Tensor>, ModelError> {
        let Some((ws, act)) = self.int_decode_schemes() else {
            return Ok(None);
        };
        let x_q = quantize_activations(x, act)?;
        let y = if self.cache_enabled {
            match self.wcache.packed_t.get() {
                Some(q) => packed_decode_matmul(&x_q, q, 0)?,
                None => {
                    let q = Arc::new(self.int_weight(ws)?);
                    let q = self.wcache.packed_t.get_or_init(|| q);
                    packed_decode_matmul(&x_q, q, 0)?
                }
            }
        } else {
            packed_decode_matmul(&x_q, &self.int_weight(ws)?, 0)?
        };
        Ok(Some(y))
    }

    /// The weight actually used by the forward pass (masked and, when a
    /// scheme is installed, fake-quantized). Borrows the stored weight when
    /// no scheme is installed — the uncompressed path allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if fake quantization fails.
    pub fn effective_weight(&self) -> Result<Cow<'_, Tensor>, ModelError> {
        let Some(scheme) = self.quant else {
            return Ok(Cow::Borrowed(&self.w));
        };
        self.counters.requants.fetch_add(1, Ordering::Relaxed);
        let mut w = fake_quant(&self.w, scheme)?;
        // Quantization can perturb pruned zeros off zero; re-mask.
        if let Some(m) = &self.mask {
            m.apply(&mut w)?;
        }
        Ok(Cow::Owned(w))
    }

    /// [`Linear::effective_weight`] through the cache: computed at most
    /// once per mutation, shared via `Arc`. Falls back to a fresh
    /// computation when the cache is disabled (or no scheme is installed,
    /// where the cache would only duplicate the stored weight).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if fake quantization fails.
    pub fn cached_effective_weight(&self) -> Result<Arc<Tensor>, ModelError> {
        if self.quant.is_none() || !self.cache_enabled {
            return Ok(Arc::new(self.effective_weight()?.into_owned()));
        }
        if let Some(w) = self.wcache.dense.get() {
            return Ok(Arc::clone(w));
        }
        let w = Arc::new(self.effective_weight()?.into_owned());
        // Racing initializers computed identical bits from the same frozen
        // weight; get_or_init keeps exactly one.
        Ok(Arc::clone(self.wcache.dense.get_or_init(|| w)))
    }

    /// Forward pass, caching what the backward pass needs.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LinearCache), ModelError> {
        let x_used = self.effective_input(x)?;
        let (y, w_eff) = self.forward_inner(&x_used)?;
        Ok((
            y,
            LinearCache {
                x: x_used.into_owned(),
                w_eff,
            },
        ))
    }

    fn effective_input<'a>(&self, x: &'a Tensor) -> Result<Cow<'a, Tensor>, ModelError> {
        match self.act_quant {
            Some(scheme) => Ok(Cow::Owned(fake_quant(x, scheme)?)),
            None => Ok(Cow::Borrowed(x)),
        }
    }

    /// Forward pass without retaining activations (inference / frozen
    /// layers in adaptive tuning). Eligible layers (weight *and*
    /// activation quantization, see [`Linear::int_decode_schemes`]) run
    /// the packed integer GEMM; otherwise the packed f32 decode path when
    /// [`Linear::pack_weights`] has run, the dense cache otherwise; every
    /// route is bit-identical to its own cache-disabled recompute.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        if let Some(y) = self.integer_decode_matmul(x)? {
            return self.add_bias(y);
        }
        let x_used = self.effective_input(x)?;
        let y = self.matmul_effective(&x_used)?;
        self.add_bias(y)
    }

    /// Forward pass whose output row `r` is bit-identical to
    /// `forward_no_cache` on row `r` alone, for any batch of rows.
    ///
    /// The matmul kernels already guarantee this (each output element
    /// accumulates in a fixed order independent of the row count), so the
    /// only difference from [`Linear::forward_no_cache`] is that an
    /// installed *activation* quantization scheme is fitted per input row
    /// rather than across the batch — coupling rows there would let one
    /// request's activations perturb another's logits. The batched serving
    /// path routes every projection through this method.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward_rows_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        // The integer route quantizes activations per input row by
        // construction, so it already satisfies this method's contract and
        // serves solo and batched decode through one head.
        if let Some(y) = self.integer_decode_matmul(x)? {
            return self.add_bias(y);
        }
        let x_used = match self.act_quant {
            None => {
                let y = self.matmul_effective(x)?;
                return self.add_bias(y);
            }
            Some(scheme) => {
                // Quantize each row in place in the copied batch: no
                // per-row temporaries, same bits as quantizing a 1 x cols
                // tensor per row.
                let mut q = x.clone();
                let (rows, _) = q.shape();
                for r in 0..rows {
                    fake_quant_row_in_place(q.row_mut(r), scheme)?;
                }
                q
            }
        };
        let y = self.matmul_effective(&x_used)?;
        self.add_bias(y)
    }

    fn forward_inner(&self, x: &Tensor) -> Result<(Tensor, Option<Arc<Tensor>>), ModelError> {
        let (y, w_eff) = match self.quant {
            Some(_) => {
                let w = self.cached_effective_weight()?;
                (x.matmul(w.as_ref())?, Some(w))
            }
            None => (x.matmul(&self.w)?, None),
        };
        Ok((self.add_bias(y)?, w_eff))
    }

    fn add_bias(&self, y: Tensor) -> Result<Tensor, ModelError> {
        if self.b.is_empty() {
            Ok(y)
        } else {
            Ok(add_bias_forward(&y, &self.b)?)
        }
    }

    /// `x · W_eff` for the no-cache paths: packed codes through the blocked
    /// row-dequantizing kernel when available, the cached dense effective
    /// weight otherwise, and a fresh recompute when the cache is disabled.
    fn matmul_effective(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        if self.quant.is_none() {
            return Ok(x.matmul(&self.w)?);
        }
        if self.cache_enabled {
            if let Some(q) = self.wcache.packed.get() {
                return self.packed_matmul(x, q);
            }
            let w = self.cached_effective_weight()?;
            return Ok(x.matmul(w.as_ref())?);
        }
        let w = self.effective_weight()?;
        Ok(x.matmul(w.as_ref())?)
    }

    /// `x · W_eff` where the weight lives as packed codes: `TILE`-row
    /// panels are dequantized (and re-masked, exactly as
    /// [`Linear::effective_weight`] re-masks) on demand inside the kernel,
    /// so the dense weight never materializes. Bit-identical to
    /// `x.matmul(&effective_weight())` because panel dequantization
    /// reproduces `fake_quant` bit-for-bit and the kernel preserves the
    /// per-element accumulation order.
    fn packed_matmul(&self, x: &Tensor, q: &QuantizedTensor) -> Result<Tensor, ModelError> {
        let (rows, cols) = self.w.shape();
        let keep = self.mask.as_ref().map(|m| m.as_slice());
        let fill = move |p0: usize, panel: &mut [f32]| {
            for (r, row) in panel.chunks_mut(cols).enumerate() {
                q.dequantize_row_into(p0 + r, row);
                if let Some(keep) = keep {
                    let krow = &keep[(p0 + r) * cols..(p0 + r + 1) * cols];
                    for (v, &k) in row.iter_mut().zip(krow) {
                        if !k {
                            *v = 0.0;
                        }
                    }
                }
            }
        };
        Ok(matmul_fill_b_with(x, rows, cols, 0, &fill)?)
    }

    /// Backward pass: accumulates `dw`/`db` and returns `dx`.
    ///
    /// Pruned positions receive zero gradient; with quantization installed
    /// the weight gradient passes through the straight-through estimator.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        let w_used: &Tensor = match &cache.w_eff {
            Some(w) => w,
            None => &self.w,
        };
        let dx = matmul_a_bt(dy, w_used)?;
        let mut dw = matmul_at_b(&cache.x, dy)?;
        if let Some(scheme) = self.quant {
            dw = fake_quant_backward(&self.w, &dw, scheme)?;
        }
        if let Some(m) = &self.mask {
            m.apply(&mut dw)?;
        }
        self.dw.axpy(1.0, &dw)?;
        if !self.b.is_empty() {
            let db = add_bias_backward(dy);
            for (acc, g) in self.db.iter_mut().zip(db.iter()) {
                *acc += g;
            }
        }
        Ok(dx)
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.fill(0.0);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(param, grad)` slice pairs in a stable order (weight, then
    /// bias). Optimizers use this to update parameters without owning them.
    /// Invalidates the compressed-weight cache — the visitor may write the
    /// parameters — so callers that only *read* should use
    /// [`Linear::visit_params_ro`].
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.invalidate_weight_cache();
        f(self.w.as_mut_slice(), self.dw.as_mut_slice());
        if !self.b.is_empty() {
            f(&mut self.b, &mut self.db);
        }
    }

    /// Read-only mirror of [`Linear::visit_params`]: identical slice order,
    /// shared borrows, and no cache invalidation. Checkpoint capture and
    /// model serialization use this so saving never forces the next forward
    /// pass to re-quantize.
    pub fn visit_params_ro(&self, f: &mut dyn FnMut(&[f32])) {
        f(self.w.as_slice());
        if !self.b.is_empty() {
            f(&self.b);
        }
    }

    /// Number of slice pairs [`Linear::visit_params`] yields. Traversals
    /// that skip inactive layers advance their id counters by this without
    /// touching (or invalidating) the layer.
    pub fn param_slice_count(&self) -> usize {
        1 + usize::from(!self.b.is_empty())
    }

    /// Re-applies the pruning mask to the stored weight (call after an
    /// optimizer step so pruned weights stay pruned). The weight cache is
    /// invalidated only when a masked position actually held a nonzero
    /// value: the tuner enforces masks on *every* layer every iteration,
    /// and re-masking an unchanged frozen layer must not evict its cache.
    pub fn enforce_mask(&mut self) {
        let Some(m) = &self.mask else {
            return;
        };
        let keep = m.as_slice();
        let w = self.w.as_mut_slice();
        debug_assert_eq!(keep.len(), w.len());
        let mut changed = false;
        for (v, &k) in w.iter_mut().zip(keep) {
            if !k && v.to_bits() != 0 {
                *v = 0.0;
                changed = true;
            }
        }
        if changed {
            self.invalidate_weight_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_prune::magnitude_prune;
    use edge_llm_quant::BitWidth;

    #[test]
    fn forward_matches_manual() {
        let mut rng = TensorRng::seed_from(1);
        let mut l = Linear::new(3, 2, &mut rng);
        l.w.as_mut_slice()
            .copy_from_slice(&[1., 0., 0., 1., 1., 1.]);
        l.b.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(1, 3, vec![2., 3., 4.]).unwrap();
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2. + 4. + 0.5, 3. + 4. - 0.5]);
    }

    #[test]
    fn backward_grad_shapes_and_accumulation() {
        let mut rng = TensorRng::seed_from(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(5, 4, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::randn(5, 3, 1.0, &mut rng);
        let dx = l.backward(&cache, &dy).unwrap();
        assert_eq!(dx.shape(), (5, 4));
        let g1 = l.dw.clone();
        l.backward(&cache, &dy).unwrap();
        // gradients accumulate
        assert!(l.dw.approx_eq(&g1.scale(2.0), 1e-5));
        l.zero_grad();
        assert_eq!(l.dw.sum(), 0.0);
    }

    #[test]
    fn mask_zeroes_weights_and_grads() {
        let mut rng = TensorRng::seed_from(3);
        let mut l = Linear::new(8, 8, &mut rng);
        let mask = magnitude_prune(l.weight(), 0.5).unwrap();
        l.set_mask(Some(mask.clone())).unwrap();
        // weights masked immediately
        for r in 0..8 {
            for c in 0..8 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight().get(r, c), 0.0);
                }
            }
        }
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::randn(2, 8, 1.0, &mut rng);
        l.backward(&cache, &dy).unwrap();
        for r in 0..8 {
            for c in 0..8 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight_grad().get(r, c), 0.0, "pruned grad must be zero");
                }
            }
        }
    }

    #[test]
    fn quantized_forward_uses_quantized_weight() {
        let mut rng = TensorRng::seed_from(4);
        let mut l = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let y_fp = l.forward_no_cache(&x).unwrap();
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W2)));
        let y_q = l.forward_no_cache(&x).unwrap();
        assert!(
            !y_fp.approx_eq(&y_q, 1e-4),
            "2-bit quantization must perturb outputs"
        );
    }

    #[test]
    fn activation_quant_perturbs_outputs() {
        let mut rng = TensorRng::seed_from(7);
        let mut l = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn(3, 8, 1.0, &mut rng);
        let clean = l.forward_no_cache(&x).unwrap();
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W2)));
        let quantized = l.forward_no_cache(&x).unwrap();
        assert!(!clean.approx_eq(&quantized, 1e-4));
        assert!(l.activation_quant().is_some());
        // at 8 bits the perturbation is small
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W8)));
        let fine = l.forward_no_cache(&x).unwrap();
        assert!(clean.approx_eq(&fine, 0.05));
    }

    #[test]
    fn activation_quant_backward_uses_quantized_input() {
        let mut rng = TensorRng::seed_from(8);
        let mut l = Linear::new(4, 4, &mut rng);
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W4)));
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::ones(2, 4);
        let dx = l.backward(&cache, &dy).unwrap();
        assert_eq!(dx.shape(), (2, 4));
        // dW = x_qᵀ·dy with the quantized input
        let xq =
            edge_llm_quant::fake_quant(&x, QuantScheme::asymmetric(edge_llm_quant::BitWidth::W4))
                .unwrap();
        let expect = edge_llm_tensor::matmul_at_b(&xq, &dy).unwrap();
        assert!(l.weight_grad().approx_eq(&expect, 1e-4));
    }

    #[test]
    fn no_bias_layer_visits_one_param() {
        let mut rng = TensorRng::seed_from(5);
        let mut l = Linear::new_no_bias(4, 4, &mut rng);
        let mut count = 0;
        l.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 1);
        assert_eq!(l.param_slice_count(), 1);
        assert_eq!(l.num_params(), 16);
    }

    #[test]
    fn enforce_mask_after_fake_update() {
        let mut rng = TensorRng::seed_from(6);
        let mut l = Linear::new(4, 4, &mut rng);
        let mask = magnitude_prune(l.weight(), 0.5).unwrap();
        l.set_mask(Some(mask.clone())).unwrap();
        // simulate an optimizer perturbing everything
        l.visit_params(&mut |p, _| p.iter_mut().for_each(|v| *v += 1.0));
        l.enforce_mask();
        for r in 0..4 {
            for c in 0..4 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight().get(r, c), 0.0);
                }
            }
        }
    }

    #[test]
    fn uncompressed_effective_weight_borrows() {
        let mut rng = TensorRng::seed_from(11);
        let l = Linear::new(4, 4, &mut rng);
        assert!(matches!(
            l.effective_weight().unwrap(),
            Cow::Borrowed(w) if std::ptr::eq(w, l.weight())
        ));
    }

    #[test]
    fn cache_populates_lazily_and_matches_fresh() {
        let mut rng = TensorRng::seed_from(12);
        let mut l = Linear::new(8, 8, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        assert!(!l.has_cached_weight());
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let y = l.forward_no_cache(&x).unwrap();
        assert!(l.has_cached_weight());
        assert_eq!(
            l.cached_effective_weight().unwrap().as_slice(),
            l.effective_weight().unwrap().as_slice()
        );
        // repeated forwards hit the cache and stay bit-identical
        assert_eq!(y.as_slice(), l.forward_no_cache(&x).unwrap().as_slice());
    }

    #[test]
    fn every_mutation_path_invalidates() {
        let mut rng = TensorRng::seed_from(13);
        let mut l = Linear::new(8, 8, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        let warm = |l: &Linear| {
            let _ = l.cached_effective_weight().unwrap();
            let _ = l.pack_weights();
            assert!(l.has_cached_weight() && l.is_packed());
        };
        warm(&l);
        l.visit_params(&mut |_, _| {});
        assert!(!l.has_cached_weight() && !l.is_packed(), "visit_params");
        warm(&l);
        let _ = l.weight_mut();
        assert!(!l.has_cached_weight() && !l.is_packed(), "weight_mut");
        warm(&l);
        l.set_mask(Some(magnitude_prune(l.weight(), 0.5).unwrap()))
            .unwrap();
        assert!(!l.has_cached_weight() && !l.is_packed(), "set_mask");
        warm(&l);
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
        assert!(
            !l.has_cached_weight() && !l.is_packed(),
            "set_activation_quant"
        );
        warm(&l);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W2)));
        assert!(!l.has_cached_weight() && !l.is_packed(), "set_quant");
    }

    #[test]
    fn enforce_mask_keeps_cache_when_nothing_changed() {
        let mut rng = TensorRng::seed_from(14);
        let mut l = Linear::new(8, 8, &mut rng);
        l.set_mask(Some(magnitude_prune(l.weight(), 0.5).unwrap()))
            .unwrap();
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        let _ = l.cached_effective_weight().unwrap();
        // masked weights already at zero: enforcement is a no-op
        l.enforce_mask();
        assert!(l.has_cached_weight(), "no-op enforce must keep the cache");
        // perturb one masked weight off zero: enforcement must invalidate
        let mask = l.mask().unwrap().clone();
        let (mut mr, mut mc) = (0, 0);
        'outer: for r in 0..8 {
            for c in 0..8 {
                if !mask.is_kept(r, c) {
                    (mr, mc) = (r, c);
                    break 'outer;
                }
            }
        }
        l.weight_mut().set(mr, mc, 0.25);
        let _ = l.cached_effective_weight().unwrap();
        l.enforce_mask();
        assert!(!l.has_cached_weight(), "real change must invalidate");
        assert_eq!(l.weight().get(mr, mc), 0.0);
    }

    #[test]
    fn packed_forward_is_bit_identical_to_dense() {
        let mut rng = TensorRng::seed_from(15);
        for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
            let mut l = Linear::new(40, 24, &mut rng);
            l.set_mask(Some(magnitude_prune(l.weight(), 0.4).unwrap()))
                .unwrap();
            l.set_quant(Some(QuantScheme::symmetric(bits)));
            let x = Tensor::randn(3, 40, 1.0, &mut rng);
            let dense = l.forward_no_cache(&x).unwrap();
            l.pack_weights().unwrap();
            assert!(l.is_packed());
            let packed = l.forward_no_cache(&x).unwrap();
            assert_eq!(dense.as_slice(), packed.as_slice(), "{bits}");
            // and bit-identical to the disabled-cache baseline
            l.set_cache_enabled(false);
            let baseline = l.forward_no_cache(&x).unwrap();
            assert_eq!(baseline.as_slice(), packed.as_slice(), "{bits} baseline");
        }
    }

    #[test]
    fn packed_weight_bytes_drop_by_bit_width_ratio() {
        let mut rng = TensorRng::seed_from(16);
        let mut l = Linear::new(64, 64, &mut rng);
        let dense_bytes = l.weight_storage_bytes();
        assert_eq!(dense_bytes, 64 * 64 * 4);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        l.pack_weights().unwrap();
        // 4-bit codes: 8x fewer code bytes, plus per-row metadata
        assert_eq!(l.weight_storage_bytes(), 64 * 64 / 2 + 64 * 4);
        assert!(l.weight_storage_bytes() * 7 < dense_bytes);
    }

    #[test]
    fn integer_decode_is_bit_identical_across_routes() {
        let mut rng = TensorRng::seed_from(18);
        for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
            let mut l = Linear::new(40, 24, &mut rng);
            l.set_mask(Some(magnitude_prune(l.weight(), 0.4).unwrap()))
                .unwrap();
            l.set_quant(Some(QuantScheme::symmetric(bits)));
            l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
            assert!(l.int_decode_schemes().is_some());
            let x = Tensor::randn(3, 40, 1.0, &mut rng);
            // lazy cache build
            let lazy = l.forward_no_cache(&x).unwrap();
            assert!(l.is_int_packed());
            // explicit pack, solo row, batched rows — all the same kernel
            let packed = l.forward_no_cache(&x).unwrap();
            assert_eq!(lazy.as_slice(), packed.as_slice(), "{bits}");
            let rows = l.forward_rows_no_cache(&x).unwrap();
            assert_eq!(lazy.as_slice(), rows.as_slice(), "{bits} rows");
            // cache-disabled route rebuilds the operand fresh every call
            l.set_cache_enabled(false);
            let fresh = l.forward_no_cache(&x).unwrap();
            assert_eq!(lazy.as_slice(), fresh.as_slice(), "{bits} no-cache");
        }
    }

    #[test]
    fn integer_decode_solo_rows_equal_batched_rows() {
        let mut rng = TensorRng::seed_from(19);
        let mut l = Linear::new(16, 10, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
        let x = Tensor::randn(5, 16, 1.0, &mut rng);
        let batched = l.forward_rows_no_cache(&x).unwrap();
        for r in 0..5 {
            let row = Tensor::from_vec(1, 16, x.row(r).to_vec()).unwrap();
            let solo = l.forward_no_cache(&row).unwrap();
            assert_eq!(batched.row(r), solo.row(0), "row {r}");
        }
    }

    #[test]
    fn integer_decode_knob_reverts_to_f32_route() {
        let mut rng = TensorRng::seed_from(20);
        let mut l = Linear::new(24, 12, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
        let x = Tensor::randn(2, 24, 1.0, &mut rng);
        let int_y = l.forward_no_cache(&x).unwrap();
        assert!(l.is_int_packed());
        l.set_integer_decode_enabled(false);
        assert!(l.int_decode_schemes().is_none());
        // f32 fallback: fake-quantized activations x cached dense weight
        let f32_y = l.forward_no_cache(&x).unwrap();
        let x_hat = fake_quant(&x, QuantScheme::asymmetric(BitWidth::W8)).unwrap();
        let expect = x_hat.matmul(&l.effective_weight().unwrap()).unwrap();
        assert_eq!(f32_y.as_slice(), expect.as_slice());
        // the two grids agree to quantization error, not bitwise
        let rel = edge_llm_tensor::l2_norm(&int_y.sub(&f32_y).unwrap())
            / edge_llm_tensor::l2_norm(&f32_y).max(1e-6);
        assert!(rel < 0.3, "grid divergence too large: rel {rel}");
        // W16 activations are never eligible (i32 lane budget)
        l.set_integer_decode_enabled(true);
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W16)));
        assert!(l.int_decode_schemes().is_none());
    }

    #[test]
    fn mutations_invalidate_int_packed_weight() {
        let mut rng = TensorRng::seed_from(21);
        let mut l = Linear::new(8, 8, &mut rng);
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W4)));
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W8)));
        l.pack_weights().unwrap();
        assert!(l.is_packed() && l.is_int_packed());
        let _ = l.weight_mut();
        assert!(!l.is_int_packed(), "weight_mut must drop packed_t");
        l.pack_weights().unwrap();
        assert!(l.is_int_packed());
        l.visit_params(&mut |_, _| {});
        assert!(!l.is_int_packed(), "visit_params must drop packed_t");
    }

    #[test]
    fn forward_rows_matches_per_row_calls_with_act_quant() {
        let mut rng = TensorRng::seed_from(17);
        let mut l = Linear::new(8, 6, &mut rng);
        l.set_activation_quant(Some(QuantScheme::asymmetric(BitWidth::W4)));
        let x = Tensor::randn(5, 8, 1.0, &mut rng);
        let batched = l.forward_rows_no_cache(&x).unwrap();
        for r in 0..5 {
            let row = Tensor::from_vec(1, 8, x.row(r).to_vec()).unwrap();
            let solo = l.forward_no_cache(&row).unwrap();
            assert_eq!(batched.row(r), solo.row(0), "row {r}");
        }
    }
}
