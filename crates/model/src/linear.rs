use crate::error::ModelError;
use edge_llm_prune::PruneMask;
use edge_llm_quant::{fake_quant, fake_quant_backward, QuantScheme};
use edge_llm_tensor::{
    add_bias_backward, add_bias_forward, matmul_a_bt, matmul_at_b, Tensor, TensorRng,
};

/// A fully-connected layer `y = x · W + b` with explicit gradients and
/// optional per-layer compression state.
///
/// The weight is stored as `(d_in, d_out)`. Compression hooks:
///
/// * a [`PruneMask`] keeps pruned weights (and their gradients) at zero,
/// * a [`QuantScheme`] makes the forward pass use the fake-quantized weight
///   while gradients flow via the straight-through estimator.
///
/// These are exactly the per-layer knobs a LUC policy assigns.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Vec<f32>,
    dw: Tensor,
    db: Vec<f32>,
    mask: Option<PruneMask>,
    quant: Option<QuantScheme>,
    act_quant: Option<QuantScheme>,
}

/// Activations cached by [`Linear::forward`] for the backward pass.
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Tensor,
    w_eff: Option<Tensor>,
}

impl LinearCache {
    /// Approximate bytes held alive by this cache.
    pub fn bytes(&self) -> usize {
        let w = self.w_eff.as_ref().map_or(0, |t| t.len() * 4);
        self.x.len() * 4 + w
    }
}

impl Linear {
    /// Creates a layer with Kaiming-initialized weights and zero bias.
    pub fn new(d_in: usize, d_out: usize, rng: &mut TensorRng) -> Self {
        Linear {
            w: Tensor::kaiming(d_in, d_out, rng),
            b: vec![0.0; d_out],
            dw: Tensor::zeros(d_in, d_out),
            db: vec![0.0; d_out],
            mask: None,
            quant: None,
            act_quant: None,
        }
    }

    /// Creates a bias-free layer (used for the unembedding head).
    pub fn new_no_bias(d_in: usize, d_out: usize, rng: &mut TensorRng) -> Self {
        let mut l = Self::new(d_in, d_out, rng);
        l.b.clear();
        l.db.clear();
        l
    }

    /// `(d_in, d_out)`.
    pub fn shape(&self) -> (usize, usize) {
        self.w.shape()
    }

    /// Read access to the weight.
    pub fn weight(&self) -> &Tensor {
        &self.w
    }

    /// Mutable access to the weight (used by LoRA merging and tests).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.w
    }

    /// Read access to the accumulated weight gradient.
    pub fn weight_grad(&self) -> &Tensor {
        &self.dw
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Installs (or clears) a pruning mask; the weight is masked immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if the mask shape differs.
    pub fn set_mask(&mut self, mask: Option<PruneMask>) -> Result<(), ModelError> {
        if let Some(m) = &mask {
            m.apply(&mut self.w)?;
        }
        self.mask = mask;
        Ok(())
    }

    /// Installs (or clears) a fake-quantization scheme for the forward pass.
    pub fn set_quant(&mut self, quant: Option<QuantScheme>) {
        self.quant = quant;
    }

    /// Installs (or clears) an *activation* fake-quantization scheme: the
    /// layer input is quantize-dequantized before the matmul, modelling a
    /// fully integer datapath. Use an asymmetric scheme (activations are
    /// not zero-centred); because the fitted range covers the batch, the
    /// straight-through backward is exactly the identity.
    pub fn set_activation_quant(&mut self, act_quant: Option<QuantScheme>) {
        self.act_quant = act_quant;
    }

    /// The installed activation-quantization scheme, if any.
    pub fn activation_quant(&self) -> Option<QuantScheme> {
        self.act_quant
    }

    /// The installed mask, if any.
    pub fn mask(&self) -> Option<&PruneMask> {
        self.mask.as_ref()
    }

    /// The installed quantization scheme, if any.
    pub fn quant(&self) -> Option<QuantScheme> {
        self.quant
    }

    /// The weight actually used by the forward pass (masked and, when a
    /// scheme is installed, fake-quantized).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Compression`] if fake quantization fails.
    pub fn effective_weight(&self) -> Result<Tensor, ModelError> {
        let mut w = match self.quant {
            Some(scheme) => fake_quant(&self.w, scheme)?,
            None => return Ok(self.w.clone()),
        };
        // Quantization can perturb pruned zeros off zero; re-mask.
        if let Some(m) = &self.mask {
            m.apply(&mut w)?;
        }
        Ok(w)
    }

    /// Forward pass, caching what the backward pass needs.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LinearCache), ModelError> {
        let x_used = self.effective_input(x)?;
        let (y, w_eff) = self.forward_inner(&x_used)?;
        Ok((y, LinearCache { x: x_used, w_eff }))
    }

    fn effective_input(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        match self.act_quant {
            Some(scheme) => Ok(fake_quant(x, scheme)?),
            None => Ok(x.clone()),
        }
    }

    /// Forward pass without retaining activations (inference / frozen
    /// layers in adaptive tuning).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        let x_used = self.effective_input(x)?;
        Ok(self.forward_inner(&x_used)?.0)
    }

    /// Forward pass whose output row `r` is bit-identical to
    /// `forward_no_cache` on row `r` alone, for any batch of rows.
    ///
    /// The matmul kernels already guarantee this (each output element
    /// accumulates in a fixed order independent of the row count), so the
    /// only difference from [`Linear::forward_no_cache`] is that an
    /// installed *activation* quantization scheme is fitted per input row
    /// rather than across the batch — coupling rows there would let one
    /// request's activations perturb another's logits. The batched serving
    /// path routes every projection through this method.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn forward_rows_no_cache(&self, x: &Tensor) -> Result<Tensor, ModelError> {
        let x_used = match self.act_quant {
            None => return Ok(self.forward_inner(x)?.0),
            Some(scheme) => {
                let (rows, cols) = x.shape();
                let mut q = Tensor::zeros(rows, cols);
                for r in 0..rows {
                    let row =
                        Tensor::from_vec(1, cols, x.row(r).to_vec()).map_err(ModelError::Tensor)?;
                    let qr = fake_quant(&row, scheme)?;
                    q.row_mut(r).copy_from_slice(qr.row(0));
                }
                q
            }
        };
        Ok(self.forward_inner(&x_used)?.0)
    }

    fn forward_inner(&self, x: &Tensor) -> Result<(Tensor, Option<Tensor>), ModelError> {
        let (y, w_eff) = match self.quant {
            Some(_) => {
                let w = self.effective_weight()?;
                (x.matmul(&w)?, Some(w))
            }
            None => (x.matmul(&self.w)?, None),
        };
        let y = if self.b.is_empty() {
            y
        } else {
            add_bias_forward(&y, &self.b)?
        };
        Ok((y, w_eff))
    }

    /// Backward pass: accumulates `dw`/`db` and returns `dx`.
    ///
    /// Pruned positions receive zero gradient; with quantization installed
    /// the weight gradient passes through the straight-through estimator.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernels.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Result<Tensor, ModelError> {
        let w_used = cache.w_eff.as_ref().unwrap_or(&self.w);
        let dx = matmul_a_bt(dy, w_used)?;
        let mut dw = matmul_at_b(&cache.x, dy)?;
        if let Some(scheme) = self.quant {
            dw = fake_quant_backward(&self.w, &dw, scheme)?;
        }
        if let Some(m) = &self.mask {
            m.apply(&mut dw)?;
        }
        self.dw.axpy(1.0, &dw)?;
        if !self.b.is_empty() {
            let db = add_bias_backward(dy);
            for (acc, g) in self.db.iter_mut().zip(db.iter()) {
                *acc += g;
            }
        }
        Ok(dx)
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.fill(0.0);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(param, grad)` slice pairs in a stable order (weight, then
    /// bias). Optimizers use this to update parameters without owning them.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.dw.as_mut_slice());
        if !self.b.is_empty() {
            f(&mut self.b, &mut self.db);
        }
    }

    /// Re-applies the pruning mask to the stored weight (call after an
    /// optimizer step so pruned weights stay pruned).
    pub fn enforce_mask(&mut self) {
        if let Some(m) = self.mask.clone() {
            let _ = m.apply(&mut self.w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_llm_prune::magnitude_prune;
    use edge_llm_quant::BitWidth;

    #[test]
    fn forward_matches_manual() {
        let mut rng = TensorRng::seed_from(1);
        let mut l = Linear::new(3, 2, &mut rng);
        l.w.as_mut_slice()
            .copy_from_slice(&[1., 0., 0., 1., 1., 1.]);
        l.b.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(1, 3, vec![2., 3., 4.]).unwrap();
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2. + 4. + 0.5, 3. + 4. - 0.5]);
    }

    #[test]
    fn backward_grad_shapes_and_accumulation() {
        let mut rng = TensorRng::seed_from(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(5, 4, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::randn(5, 3, 1.0, &mut rng);
        let dx = l.backward(&cache, &dy).unwrap();
        assert_eq!(dx.shape(), (5, 4));
        let g1 = l.dw.clone();
        l.backward(&cache, &dy).unwrap();
        // gradients accumulate
        assert!(l.dw.approx_eq(&g1.scale(2.0), 1e-5));
        l.zero_grad();
        assert_eq!(l.dw.sum(), 0.0);
    }

    #[test]
    fn mask_zeroes_weights_and_grads() {
        let mut rng = TensorRng::seed_from(3);
        let mut l = Linear::new(8, 8, &mut rng);
        let mask = magnitude_prune(l.weight(), 0.5).unwrap();
        l.set_mask(Some(mask.clone())).unwrap();
        // weights masked immediately
        for r in 0..8 {
            for c in 0..8 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight().get(r, c), 0.0);
                }
            }
        }
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::randn(2, 8, 1.0, &mut rng);
        l.backward(&cache, &dy).unwrap();
        for r in 0..8 {
            for c in 0..8 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight_grad().get(r, c), 0.0, "pruned grad must be zero");
                }
            }
        }
    }

    #[test]
    fn quantized_forward_uses_quantized_weight() {
        let mut rng = TensorRng::seed_from(4);
        let mut l = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let y_fp = l.forward_no_cache(&x).unwrap();
        l.set_quant(Some(QuantScheme::symmetric(BitWidth::W2)));
        let y_q = l.forward_no_cache(&x).unwrap();
        assert!(
            !y_fp.approx_eq(&y_q, 1e-4),
            "2-bit quantization must perturb outputs"
        );
    }

    #[test]
    fn activation_quant_perturbs_outputs() {
        let mut rng = TensorRng::seed_from(7);
        let mut l = Linear::new(8, 8, &mut rng);
        let x = Tensor::randn(3, 8, 1.0, &mut rng);
        let clean = l.forward_no_cache(&x).unwrap();
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W2)));
        let quantized = l.forward_no_cache(&x).unwrap();
        assert!(!clean.approx_eq(&quantized, 1e-4));
        assert!(l.activation_quant().is_some());
        // at 8 bits the perturbation is small
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W8)));
        let fine = l.forward_no_cache(&x).unwrap();
        assert!(clean.approx_eq(&fine, 0.05));
    }

    #[test]
    fn activation_quant_backward_uses_quantized_input() {
        let mut rng = TensorRng::seed_from(8);
        let mut l = Linear::new(4, 4, &mut rng);
        l.set_activation_quant(Some(QuantScheme::asymmetric(edge_llm_quant::BitWidth::W4)));
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let (_, cache) = l.forward(&x).unwrap();
        let dy = Tensor::ones(2, 4);
        let dx = l.backward(&cache, &dy).unwrap();
        assert_eq!(dx.shape(), (2, 4));
        // dW = x_qᵀ·dy with the quantized input
        let xq =
            edge_llm_quant::fake_quant(&x, QuantScheme::asymmetric(edge_llm_quant::BitWidth::W4))
                .unwrap();
        let expect = edge_llm_tensor::matmul_at_b(&xq, &dy).unwrap();
        assert!(l.weight_grad().approx_eq(&expect, 1e-4));
    }

    #[test]
    fn no_bias_layer_visits_one_param() {
        let mut rng = TensorRng::seed_from(5);
        let mut l = Linear::new_no_bias(4, 4, &mut rng);
        let mut count = 0;
        l.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 1);
        assert_eq!(l.num_params(), 16);
    }

    #[test]
    fn enforce_mask_after_fake_update() {
        let mut rng = TensorRng::seed_from(6);
        let mut l = Linear::new(4, 4, &mut rng);
        let mask = magnitude_prune(l.weight(), 0.5).unwrap();
        l.set_mask(Some(mask.clone())).unwrap();
        // simulate an optimizer perturbing everything
        l.visit_params(&mut |p, _| p.iter_mut().for_each(|v| *v += 1.0));
        l.enforce_mask();
        for r in 0..4 {
            for c in 0..4 {
                if !mask.is_kept(r, c) {
                    assert_eq!(l.weight().get(r, c), 0.0);
                }
            }
        }
    }
}
