//! Chunked thread pool for the CPU kernels.
//!
//! Every parallel kernel in the workspace splits its **output** into
//! contiguous, disjoint row panels and hands each panel to one worker, so
//! each output element is written by exactly one thread and the
//! per-element arithmetic (including the floating-point reduction order)
//! is the same code path the serial kernel runs. The panel boundaries are
//! a pure function of `(total, threads)` — never of timing — which makes
//! every kernel **bit-identical across thread counts** (see DESIGN.md,
//! "Deterministic multi-threading").
//!
//! The pool is dependency-free (`std::thread::scope` only; the workspace
//! builds offline). Workers are scoped per call rather than parked in a
//! persistent pool: borrowed operands can then cross into workers without
//! `'static` erasure or unsafe lifetime laundering, and the spawn cost is
//! amortized by the work-size thresholds the kernels apply before going
//! parallel.
//!
//! The global thread count defaults to `1` (serial, the seed behaviour)
//! and is raised either programmatically ([`set_configured_threads`]) or
//! through the `EDGELLM_THREADS` environment variable, which the CLI and
//! the benchmark harness also honour. `0` means "use all available
//! cores".

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable controlling the default worker count.
pub const THREADS_ENV_VAR: &str = "EDGELLM_THREADS";

/// Products below this many multiply-accumulates (`m * k * n`) stay serial
/// even when more workers are configured.
///
/// Rationale: the pool spawns scoped workers per kernel call (no parked
/// threads, see the module docs), so going parallel costs one
/// `thread::spawn` + `join` per extra worker — roughly 10–30 µs on a
/// CPU-class edge part. At ~1 MAC/ns serial throughput, `2^16` MACs is
/// ~65 µs of arithmetic: below that the spawn overhead rivals or exceeds
/// the work being split. Because the serial and parallel paths are
/// bit-identical by construction, the cutoff affects wall-clock only,
/// never results. Every matmul-shaped kernel in the workspace (dense f32,
/// row-dequantizing, packed-integer) shares this one constant.
pub const MIN_PARALLEL_MACS: usize = 1 << 16;

/// Workers an `m x k x n` matmul-shaped product actually uses: the
/// resolved request, capped by the number of splittable output rows and
/// forced serial below [`MIN_PARALLEL_MACS`].
pub fn matmul_workers(requested: usize, m: usize, k: usize, n: usize) -> usize {
    let macs = m.saturating_mul(k).saturating_mul(n);
    if macs < MIN_PARALLEL_MACS {
        return 1;
    }
    resolve_threads(requested).min(m.max(1))
}

/// Upper bound on workers per kernel call; panels shrink past the point
/// of usefulness long before this.
const MAX_THREADS: usize = 64;

/// `usize::MAX` marks "not yet configured" so `0` can mean "auto".
static CONFIGURED: AtomicUsize = AtomicUsize::new(usize::MAX);
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set inside [`serial_scope`]: kernels on this thread resolve to one
    /// worker regardless of the global setting.
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with every kernel-level thread request on the current thread
/// resolved to `1`.
///
/// Used by callers that already parallelized at a coarser granularity
/// (e.g. the batched decode step splitting its slots across workers):
/// nested kernel-level spawns would oversubscribe the machine for
/// microseconds of work per call. The override is per-thread and restored
/// on exit, including on unwind.
pub fn serial_scope<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SERIAL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SERIAL.with(|c| c.replace(true)));
    f()
}

fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn clamp_threads(n: usize) -> usize {
    if n == 0 {
        auto_threads().clamp(1, MAX_THREADS)
    } else {
        n.min(MAX_THREADS)
    }
}

fn env_default() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        match std::env::var(THREADS_ENV_VAR) {
            // unset or unparseable -> serial, the seed behaviour
            Err(_) => 1,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => clamp_threads(n),
                Err(_) => 1,
            },
        }
    })
}

/// The process-wide worker count used by kernels when the caller does not
/// pass an explicit one. Resolution order: an enclosing [`serial_scope`]
/// (always 1), else the last [`set_configured_threads`] call, else
/// `EDGELLM_THREADS`, else 1.
pub fn configured_threads() -> usize {
    if FORCE_SERIAL.with(|c| c.get()) {
        return 1;
    }
    match CONFIGURED.load(Ordering::Relaxed) {
        usize::MAX => env_default(),
        n => n,
    }
}

/// Sets the process-wide worker count (`0` = all available cores).
/// Overrides `EDGELLM_THREADS`.
pub fn set_configured_threads(threads: usize) {
    CONFIGURED.store(clamp_threads(threads), Ordering::Relaxed);
}

/// Resolves a kernel-level request: `0` defers to the global setting,
/// anything else is clamped to the pool's cap. Inside a [`serial_scope`]
/// every request resolves to 1.
pub fn resolve_threads(requested: usize) -> usize {
    if FORCE_SERIAL.with(|c| c.get()) {
        1
    } else if requested == 0 {
        configured_threads()
    } else {
        clamp_threads(requested)
    }
}

/// Splits `0..total` into at most `chunks` contiguous, near-equal ranges.
///
/// The split depends only on `(total, chunks)`: the first `total % chunks`
/// ranges get one extra element. Empty input yields no ranges; excess
/// chunks are dropped rather than emitted empty.
pub fn partition(total: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1).min(total);
    let mut out = Vec::with_capacity(chunks);
    if total == 0 {
        return out;
    }
    let base = total / chunks;
    let extra = total % chunks;
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `body` over disjoint row panels of a `rows x cols` row-major
/// output buffer, one panel per worker.
///
/// `body` receives the panel's starting row and its mutable slice
/// (`panel_rows * cols` long). Panels are contiguous and cover the buffer
/// exactly once, so every output element is written by exactly one
/// thread. With one worker (or an empty output) the body runs inline on
/// the calling thread — byte-for-byte the serial kernel.
pub fn parallel_rows_mut<F>(out: &mut [f32], rows: usize, cols: usize, threads: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols);
    let panels = partition(rows, threads.max(1));
    if panels.len() <= 1 {
        if !out.is_empty() || rows > 0 {
            body(0, out);
        }
        return;
    }
    edge_llm_telemetry::counter("pool.parallel_ops", 1);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut workers = Vec::with_capacity(panels.len() - 1);
        let mut first: Option<(usize, &mut [f32])> = None;
        for (i, panel) in panels.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(panel.len() * cols);
            rest = tail;
            if i == 0 {
                // the calling thread takes the first panel, after spawning
                first = Some((panel.start, chunk));
            } else {
                let start = panel.start;
                let body = &body;
                workers.push(scope.spawn(move || body(start, chunk)));
            }
        }
        if let Some((start, chunk)) = first {
            body(start, chunk);
        }
        for w in workers {
            // a panicking worker propagates: determinism bugs must not be
            // silently swallowed
            if let Err(p) = w.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

/// Computes `f(0..n)` across workers and returns the results in index
/// order.
///
/// Indices are partitioned into contiguous chunks; each worker evaluates
/// its chunk in ascending order, and the chunks are reassembled in chunk
/// order, so the output is identical for every worker count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunks = partition(n, threads.max(1));
    if chunks.len() <= 1 {
        return (0..n).map(f).collect();
    }
    edge_llm_telemetry::counter("pool.parallel_ops", 1);
    let mut results: Vec<Vec<T>> = std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(chunks.len());
        for chunk in chunks.iter().skip(1).cloned() {
            let f = &f;
            workers.push(scope.spawn(move || chunk.map(f).collect::<Vec<T>>()));
        }
        let head: Vec<T> = chunks[0].clone().map(&f).collect();
        let mut all = vec![head];
        for w in workers {
            match w.join() {
                Ok(v) => all.push(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        all
    });
    let mut out = Vec::with_capacity(n);
    for v in &mut results {
        out.append(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once() {
        for total in [0usize, 1, 2, 7, 32, 33, 100] {
            for chunks in 1..9 {
                let parts = partition(total, chunks);
                let mut next = 0;
                for p in &parts {
                    assert_eq!(p.start, next, "gap at {total}/{chunks}");
                    assert!(!p.is_empty(), "empty panel at {total}/{chunks}");
                    next = p.end;
                }
                assert_eq!(next, total, "coverage at {total}/{chunks}");
            }
        }
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let a = partition(100, 8);
        let b = partition(100, 8);
        assert_eq!(a, b);
        let lens: Vec<usize> = a.iter().map(|r| r.len()).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn parallel_rows_mut_writes_every_row_once() {
        for threads in [1usize, 2, 3, 8] {
            let (rows, cols) = (13, 5);
            let mut buf = vec![0.0f32; rows * cols];
            parallel_rows_mut(&mut buf, rows, cols, threads, |start, panel| {
                for (r, row) in panel.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (start + r) as f32;
                    }
                }
            });
            for r in 0..rows {
                assert!(
                    buf[r * cols..(r + 1) * cols].iter().all(|&v| v == r as f32),
                    "row {r} wrong under {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_rows_mut_handles_empty_output() {
        let mut buf: Vec<f32> = Vec::new();
        parallel_rows_mut(&mut buf, 0, 4, 4, |_, _| panic!("no panels expected"));
        parallel_rows_mut(&mut buf, 4, 0, 4, |_, panel| assert!(panel.is_empty()));
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1usize, 2, 5, 16] {
            let got = parallel_map(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "order broke under {threads} threads");
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn resolve_and_clamp() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(MAX_THREADS + 10), MAX_THREADS);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn serial_scope_forces_one_worker_and_restores() {
        assert_eq!(serial_scope(|| resolve_threads(8)), 1);
        assert_eq!(serial_scope(configured_threads), 1);
        // nested scopes restore the outer override, not the global state
        serial_scope(|| {
            serial_scope(|| assert_eq!(resolve_threads(4), 1));
            assert_eq!(resolve_threads(4), 1);
        });
        assert_eq!(resolve_threads(3), 3);
        // the override is per-thread, not process-wide
        serial_scope(|| {
            let other = std::thread::spawn(|| resolve_threads(5)).join().unwrap();
            assert_eq!(other, 5);
        });
    }

    #[test]
    fn matmul_workers_applies_cutoff_and_row_cap() {
        // below the MAC cutoff: always serial, whatever was requested
        assert_eq!(matmul_workers(8, 4, 16, 16), 1);
        // above the cutoff: the request resolves, capped by the row count
        assert_eq!(matmul_workers(8, 256, 64, 64), 8);
        assert_eq!(matmul_workers(8, 3, 512, 512), 3);
        // degenerate shapes never panic and stay serial
        assert_eq!(matmul_workers(8, 0, 0, 0), 1);
        // saturating product: absurd shapes cannot overflow the cutoff math
        assert_eq!(matmul_workers(2, usize::MAX, 2, 2), 2);
    }

    #[test]
    fn set_configured_threads_round_trips() {
        let before = configured_threads();
        set_configured_threads(2);
        assert_eq!(configured_threads(), 2);
        set_configured_threads(before);
        assert_eq!(configured_threads(), before);
    }
}
