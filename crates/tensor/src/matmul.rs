//! Matrix multiplication kernels.
//!
//! Three layouts are needed by transformer training:
//!
//! * `C = A · B` — forward projections ([`Tensor::matmul`]),
//! * `C = Aᵀ · B` — weight gradients ([`matmul_at_b`]),
//! * `C = A · Bᵀ` — input gradients and attention scores ([`matmul_a_bt`]).
//!
//! All kernels are cache-blocked over `TILE x TILE` panels; the block size is
//! also the unit the hardware scheduling search in `edge-llm-hw` reasons
//! about. Inside a panel the forward kernel runs an `IR x JR` register
//! micro-tile that reuses each loaded `B` vector across `IR` output rows, so
//! a multi-row (batched) product is genuinely cheaper per row than repeated
//! single-row calls — without changing the per-element accumulation order
//! (see [`micro_tile`]): results stay bit-identical to the scalar loop for
//! every row count.
//!
//! Every layout also has a multi-threaded path
//! ([`MatmulKernel::BlockedParallel`]) that splits the **output rows** into
//! disjoint contiguous panels via [`crate::pool`] and runs the serial blocked
//! loop on each panel. Because the per-element accumulation order over the
//! reduction dimension is unchanged (ascending `p`, regardless of how rows
//! are grouped into panels), the parallel kernels are **bit-identical to the
//! serial ones for every thread count** — the property the oracle tests in
//! `tests/parallel_oracle.rs` pin down with exact `f32` equality.

use crate::error::TensorError;
use crate::pool;
use crate::tensor::Tensor;

/// Cache block edge used by the blocked kernels.
const TILE: usize = 32;

/// Selects the matmul implementation.
///
/// The naive kernel exists as a correctness oracle for tests and as the
/// "unscheduled" baseline in the hardware-scheduling experiments (F3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatmulKernel {
    /// Triple loop in row-major order, no blocking.
    Naive,
    /// Cache-blocked serial kernel (default).
    #[default]
    Blocked,
    /// Cache-blocked kernel over disjoint row panels on `threads` workers
    /// (`0` = the process-wide [`pool::configured_threads`] setting).
    /// Bit-identical to [`MatmulKernel::Blocked`] for every thread count.
    BlockedParallel {
        /// Worker count; `0` defers to the global `EDGELLM_THREADS` knob.
        threads: usize,
    },
}

impl MatmulKernel {
    /// The kernel honouring the process-wide thread configuration: the
    /// parallel path when more than one worker is configured, the serial
    /// blocked kernel otherwise.
    pub fn auto() -> Self {
        MatmulKernel::BlockedParallel { threads: 0 }
    }

    /// Worker count this kernel resolves to (1 for the serial kernels).
    pub fn resolved_threads(&self) -> usize {
        match self {
            MatmulKernel::Naive | MatmulKernel::Blocked => 1,
            MatmulKernel::BlockedParallel { threads } => pool::resolve_threads(*threads),
        }
    }
}

use pool::matmul_workers as effective_threads;

impl Tensor {
    /// Computes `self · other` with the default kernel: the blocked kernel,
    /// parallelized over row panels when the process-wide thread setting
    /// (`EDGELLM_THREADS` / [`pool::set_configured_threads`]) asks for more
    /// than one worker. Results are bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_with(other, MatmulKernel::auto())
    }

    /// Computes `self · other` with an explicit kernel choice.
    ///
    /// Degenerate operands (zero rows, columns, or reduction length) are
    /// valid and produce the corresponding all-zero `m x n` output.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul_with(&self, other: &Tensor, kernel: MatmulKernel) -> Result<Tensor, TensorError> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Tensor::zeros(m, n);
        if out.is_empty() {
            // zero-sized output: nothing to compute for any kernel
            return Ok(out);
        }
        let (a, b) = (self.as_slice(), other.as_slice());
        match kernel {
            MatmulKernel::Naive => naive(a, b, out.as_mut_slice(), m, k, n),
            MatmulKernel::Blocked => blocked(a, b, out.as_mut_slice(), m, k, n),
            MatmulKernel::BlockedParallel { threads } => {
                let workers = effective_threads(threads, m, k, n);
                pool::parallel_rows_mut(out.as_mut_slice(), m, n, workers, |row0, panel| {
                    let rows = panel.len() / n.max(1);
                    blocked(&a[row0 * k..(row0 + rows) * k], b, panel, rows, k, n);
                });
            }
        }
        Ok(out)
    }
}

fn naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
}

/// Columns per register micro-tile: the partial sums for `JR` output
/// columns stay in registers across a whole `p` block instead of being
/// loaded and stored from `C` on every step.
const JR: usize = 8;

/// Rows per register micro-tile: each `B` vector loaded in the inner loop
/// is reused across `IR` output rows, which is what makes a multi-row
/// (batched) product genuinely cheaper per row than `IR` single-row calls.
const IR: usize = 4;

/// `IR x JR` register micro-kernel over the `p` block `prange`.
///
/// For every output element the adds still happen in ascending-`p` order
/// within the block (the accumulator is loaded from `C` before the block
/// and stored after), so the result is bit-identical to the plain scalar
/// loop.
///
/// `b` holds rows `[b_row0, …)` of the right-hand operand, so a caller can
/// pass either the whole matrix (`b_row0 = 0`) or just the panel covering
/// the current `p` block ([`matmul_fill_b_with`]).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // private register kernel; every operand is load-bearing
fn micro_tile<const ROWS: usize>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    (i, j): (usize, usize),
    prange: std::ops::Range<usize>,
    b_row0: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0f32; JR]; ROWS];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&c[(i + r) * n + j..(i + r) * n + j + JR]);
    }
    for p in prange {
        let brow: [f32; JR] = b[(p - b_row0) * n + j..(p - b_row0) * n + j + JR]
            .try_into()
            .expect("JR-sized slice");
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[(i + r) * k + p];
            for jj in 0..JR {
                accr[jj] += av * brow[jj];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        c[(i + r) * n + j..(i + r) * n + j + JR].copy_from_slice(accr);
    }
}

fn blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for ib in (0..m).step_by(TILE) {
        let imax = (ib + TILE).min(m);
        for pb in (0..k).step_by(TILE) {
            let pmax = (pb + TILE).min(k);
            for jb in (0..n).step_by(TILE) {
                let jmax = (jb + TILE).min(n);
                // full row quads go through the register micro-kernel
                let quads_end = ib + (imax - ib) / IR * IR;
                let mut j = jb;
                while j + JR <= jmax {
                    let mut i = ib;
                    while i < quads_end {
                        micro_tile::<IR>(a, b, c, (i, j), pb..pmax, 0, k, n);
                        i += IR;
                    }
                    j += JR;
                }
                // ragged column tail of the quad rows, then leftover rows
                // (fewer than IR, e.g. any single-row product) over the
                // whole tile: the plain scalar loop, same p order
                let tails = [(ib, quads_end, j), (quads_end, imax, jb)];
                for (row0, row1, jtail) in tails {
                    for i in row0..row1 {
                        let arow = &a[i * k..(i + 1) * k];
                        let crow = &mut c[i * n..(i + 1) * n];
                        for p in pb..pmax {
                            let av = arow[p];
                            let brow = &b[p * n..(p + 1) * n];
                            for jj in jtail..jmax {
                                crow[jj] += av * brow[jj];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `C = A · B` where `B` is *produced on demand* in `TILE`-row panels.
///
/// `fill(p0, panel)` must write rows `p0 .. p0 + panel.len() / b_cols` of
/// the `b_rows x b_cols` right-hand operand into `panel` (row-major). The
/// kernel hoists the `p` block to the outer loop so each panel is
/// materialized once per worker and reused across every output tile — the
/// execution pattern of a decode path whose weights live as packed
/// quantized codes and are dequantized one cache block at a time.
///
/// Peak extra memory is one `TILE x b_cols` panel per worker instead of
/// the whole dense `B`. Because every output element still accumulates in
/// ascending-`p` order through the same [`micro_tile`] / scalar-tail code
/// paths as [`MatmulKernel::Blocked`] (reordering the `ib`/`jb` loops
/// around the `p` blocks never reorders any single element's adds), the
/// result is **bit-identical** to `a.matmul(&b_dense)` for every thread
/// count — the property `fill_b_is_bit_identical_to_dense` pins down.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b_rows`.
pub fn matmul_fill_b_with(
    a: &Tensor,
    b_rows: usize,
    b_cols: usize,
    threads: usize,
    fill: &(dyn Fn(usize, &mut [f32]) + Sync),
) -> Result<Tensor, TensorError> {
    if a.cols() != b_rows {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_fill_b",
            lhs: a.shape(),
            rhs: (b_rows, b_cols),
        });
    }
    let (m, k) = a.shape();
    let n = b_cols;
    let mut out = Tensor::zeros(m, n);
    if out.is_empty() {
        return Ok(out);
    }
    let ad = a.as_slice();
    let workers = effective_threads(threads, m, k, n);
    pool::parallel_rows_mut(out.as_mut_slice(), m, n, workers, |row0, panel| {
        let rows = panel.len() / n.max(1);
        let mut scratch = vec![0.0f32; k.min(TILE) * n];
        blocked_fill_b(
            &ad[row0 * k..(row0 + rows) * k],
            panel,
            rows,
            k,
            n,
            fill,
            &mut scratch,
        );
    });
    Ok(out)
}

/// [`blocked`] with the `p` block hoisted outermost and `B` rows streamed
/// into `scratch` one panel at a time. Identical per-element accumulation
/// order (each element's adds ascend over `p` regardless of which loop is
/// outermost), hence bit-identical results.
fn blocked_fill_b(
    a: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    fill: &(dyn Fn(usize, &mut [f32]) + Sync),
    scratch: &mut [f32],
) {
    for pb in (0..k).step_by(TILE) {
        let pmax = (pb + TILE).min(k);
        let b = &mut scratch[..(pmax - pb) * n];
        fill(pb, b);
        let b = &*b;
        for ib in (0..m).step_by(TILE) {
            let imax = (ib + TILE).min(m);
            for jb in (0..n).step_by(TILE) {
                let jmax = (jb + TILE).min(n);
                let quads_end = ib + (imax - ib) / IR * IR;
                let mut j = jb;
                while j + JR <= jmax {
                    let mut i = ib;
                    while i < quads_end {
                        micro_tile::<IR>(a, b, c, (i, j), pb..pmax, pb, k, n);
                        i += IR;
                    }
                    j += JR;
                }
                let tails = [(ib, quads_end, j), (quads_end, imax, jb)];
                for (row0, row1, jtail) in tails {
                    for i in row0..row1 {
                        let arow = &a[i * k..(i + 1) * k];
                        let crow = &mut c[i * n..(i + 1) * n];
                        for p in pb..pmax {
                            let av = arow[p];
                            let brow = &b[(p - pb) * n..(p - pb + 1) * n];
                            for jj in jtail..jmax {
                                crow[jj] += av * brow[jj];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Serial `Aᵀ · B` over an output-row slice: computes rows
/// `[i0, i0 + c.len() / n)` of the `m x n` result into `c`.
///
/// `p` stays the outer loop exactly as in the full serial kernel, so each
/// output element accumulates in ascending-`p` order no matter how the
/// rows are partitioned.
fn at_b_rows(a: &[f32], b: &[f32], c: &mut [f32], i0: usize, k: usize, m: usize, n: usize) {
    let rows = c.len() / n.max(1);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for r in 0..rows {
            let av = arow[i0 + r];
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[r * n..(r + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
}

/// Computes `Aᵀ · B` without materializing the transpose.
///
/// Given `A: k x m` and `B: k x n`, returns an `m x n` tensor. This is the
/// weight-gradient kernel: `dW = Xᵀ · dY`. Honours the process-wide
/// thread setting; see [`matmul_at_b_with`] for an explicit worker count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.rows() == b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_at_b_with(a, b, 0)
}

/// [`matmul_at_b`] with an explicit worker count (`0` = global setting,
/// `1` = serial). Bit-identical for every thread count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.rows() == b.rows()`.
pub fn matmul_at_b_with(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor, TensorError> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    if out.is_empty() {
        return Ok(out);
    }
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let workers = effective_threads(threads, m, k, n);
    pool::parallel_rows_mut(out.as_mut_slice(), m, n, workers, |i0, panel| {
        at_b_rows(ad, bd, panel, i0, k, m, n);
    });
    Ok(out)
}

/// Serial `A · Bᵀ` over an output-row slice: rows `[i0, i0 + rows)`.
fn a_bt_rows(a: &[f32], b: &[f32], c: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        let crow = &mut c[r * n..(r + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            crow[j] = acc;
        }
    }
}

/// Computes `A · Bᵀ` without materializing the transpose.
///
/// Given `A: m x k` and `B: n x k`, returns an `m x n` tensor. This is the
/// input-gradient kernel (`dX = dY · Wᵀ`) and the attention-score kernel
/// (`S = Q · Kᵀ`). Honours the process-wide thread setting; see
/// [`matmul_a_bt_with`] for an explicit worker count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_a_bt_with(a, b, 0)
}

/// [`matmul_a_bt`] with an explicit worker count (`0` = global setting,
/// `1` = serial). Bit-identical for every thread count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.cols()`.
pub fn matmul_a_bt_with(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor, TensorError> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    if out.is_empty() {
        return Ok(out);
    }
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let workers = effective_threads(threads, m, k, n);
    pool::parallel_rows_mut(out.as_mut_slice(), m, n, workers, |i0, panel| {
        let rows = panel.len() / n.max(1);
        a_bt_rows(ad, bd, panel, i0, rows, k, n);
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::seed_from(1);
        let a = Tensor::randn(5, 5, 1.0, &mut rng);
        let mut eye = Tensor::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        let out = a.matmul(&eye).unwrap();
        assert!(out.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = TensorRng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (33, 65, 34), (64, 32, 96)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            let c1 = a.matmul_with(&b, MatmulKernel::Naive).unwrap();
            let c2 = a.matmul_with(&b, MatmulKernel::Blocked).unwrap();
            assert!(c1.approx_eq(&c2, 1e-4), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_blocked() {
        let mut rng = TensorRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (33, 65, 34), (70, 64, 48)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            let serial = a.matmul_with(&b, MatmulKernel::Blocked).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par = a
                    .matmul_with(&b, MatmulKernel::BlockedParallel { threads })
                    .unwrap();
                assert_eq!(
                    serial.as_slice(),
                    par.as_slice(),
                    "bit drift at {m}x{k}x{n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn fill_b_is_bit_identical_to_dense() {
        let mut rng = TensorRng::seed_from(11);
        // ragged in every dimension, plus micro-tile-aligned and tiny shapes
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 48, 33),
            (3, 7, 5),
            (33, 65, 34),
            (48, 64, 96),
            (70, 64, 48),
        ] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            let want = a.matmul_with(&b, MatmulKernel::Blocked).unwrap();
            let bd = b.as_slice();
            let fill = |p0: usize, panel: &mut [f32]| {
                panel.copy_from_slice(&bd[p0 * n..p0 * n + panel.len()]);
            };
            for threads in [1usize, 2, 3, 8] {
                let got = matmul_fill_b_with(&a, k, n, threads, &fill).unwrap();
                assert_eq!(
                    want.as_slice(),
                    got.as_slice(),
                    "bit drift at {m}x{k}x{n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn fill_b_handles_degenerate_shapes_and_mismatch() {
        let fill = |_: usize, panel: &mut [f32]| panel.fill(1.0);
        for &(m, k, n) in &[(0usize, 3usize, 2usize), (2, 0, 3), (2, 3, 0)] {
            let a = Tensor::zeros(m, k);
            let c = matmul_fill_b_with(&a, k, n, 4, &fill).unwrap();
            assert_eq!(c.shape(), (m, n), "{m}x{k}x{n}");
            assert!(c.as_slice().iter().all(|&v| v == 0.0));
        }
        let a = Tensor::zeros(2, 3);
        assert!(matmul_fill_b_with(&a, 4, 2, 1, &fill).is_err());
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(3);
        let a = Tensor::randn(9, 4, 1.0, &mut rng);
        let b = Tensor::randn(9, 6, 1.0, &mut rng);
        let fast = matmul_at_b(&a, &b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(4);
        let a = Tensor::randn(5, 8, 1.0, &mut rng);
        let b = Tensor::randn(7, 8, 1.0, &mut rng);
        let fast = matmul_a_bt(&a, &b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn transposed_layouts_are_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(5);
        let a = Tensor::randn(65, 33, 1.0, &mut rng);
        let b = Tensor::randn(65, 41, 1.0, &mut rng);
        let serial = matmul_at_b_with(&a, &b, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let par = matmul_at_b_with(&a, &b, threads).unwrap();
            assert_eq!(serial.as_slice(), par.as_slice(), "at_b threads={threads}");
        }
        let x = Tensor::randn(65, 33, 1.0, &mut rng);
        let y = Tensor::randn(41, 33, 1.0, &mut rng);
        let serial = matmul_a_bt_with(&x, &y, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let par = matmul_a_bt_with(&x, &y, threads).unwrap();
            assert_eq!(serial.as_slice(), par.as_slice(), "a_bt threads={threads}");
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        let c = Tensor::zeros(4, 5);
        assert!(matmul_a_bt(&a, &c).is_err());
    }

    #[test]
    fn empty_operands_produce_empty_output() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }

    #[test]
    fn degenerate_shapes_return_cleanly_in_every_layout_and_kernel() {
        // (m, k, n) with a zero in every position, plus all-zero
        for &(m, k, n) in &[(0usize, 3usize, 2usize), (2, 0, 3), (2, 3, 0), (0, 0, 0)] {
            for kernel in [
                MatmulKernel::Naive,
                MatmulKernel::Blocked,
                MatmulKernel::BlockedParallel { threads: 4 },
            ] {
                let a = Tensor::zeros(m, k);
                let b = Tensor::zeros(k, n);
                let c = a.matmul_with(&b, kernel).unwrap();
                assert_eq!(c.shape(), (m, n), "{m}x{k}x{n} {kernel:?}");
                assert!(c.as_slice().iter().all(|&v| v == 0.0));
            }
            for threads in [1usize, 4] {
                let at = Tensor::zeros(k, m);
                let b = Tensor::zeros(k, n);
                let c = matmul_at_b_with(&at, &b, threads).unwrap();
                assert_eq!(c.shape(), (m, n), "at_b {m}x{k}x{n} t={threads}");
                let a = Tensor::zeros(m, k);
                let bt = Tensor::zeros(n, k);
                let c = matmul_a_bt_with(&a, &bt, threads).unwrap();
                assert_eq!(c.shape(), (m, n), "a_bt {m}x{k}x{n} t={threads}");
            }
        }
    }

    #[test]
    fn matmul_kernel_default_is_blocked() {
        assert_eq!(MatmulKernel::default(), MatmulKernel::Blocked);
    }

    #[test]
    fn auto_kernel_defers_to_global_setting() {
        assert_eq!(
            MatmulKernel::auto(),
            MatmulKernel::BlockedParallel { threads: 0 }
        );
        assert_eq!(MatmulKernel::Blocked.resolved_threads(), 1);
        assert_eq!(
            MatmulKernel::BlockedParallel { threads: 3 }.resolved_threads(),
            3
        );
    }
}
