//! Matrix multiplication kernels.
//!
//! Three layouts are needed by transformer training:
//!
//! * `C = A · B` — forward projections ([`Tensor::matmul`]),
//! * `C = Aᵀ · B` — weight gradients ([`matmul_at_b`]),
//! * `C = A · Bᵀ` — input gradients and attention scores ([`matmul_a_bt`]).
//!
//! All kernels are cache-blocked over `TILE x TILE` panels; the block size is
//! also the unit the hardware scheduling search in `edge-llm-hw` reasons
//! about.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Cache block edge used by the blocked kernels.
const TILE: usize = 32;

/// Selects the matmul implementation.
///
/// The naive kernel exists as a correctness oracle for tests and as the
/// "unscheduled" baseline in the hardware-scheduling experiments (F3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatmulKernel {
    /// Triple loop in row-major order, no blocking.
    Naive,
    /// Cache-blocked kernel (default).
    #[default]
    Blocked,
}

impl Tensor {
    /// Computes `self · other` with the default blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_with(other, MatmulKernel::Blocked)
    }

    /// Computes `self · other` with an explicit kernel choice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul_with(&self, other: &Tensor, kernel: MatmulKernel) -> Result<Tensor, TensorError> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Tensor::zeros(m, n);
        match kernel {
            MatmulKernel::Naive => naive(
                self.as_slice(),
                other.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
            ),
            MatmulKernel::Blocked => blocked(
                self.as_slice(),
                other.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
            ),
        }
        Ok(out)
    }
}

fn naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
}

fn blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for ib in (0..m).step_by(TILE) {
        let imax = (ib + TILE).min(m);
        for pb in (0..k).step_by(TILE) {
            let pmax = (pb + TILE).min(k);
            for jb in (0..n).step_by(TILE) {
                let jmax = (jb + TILE).min(n);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n..(i + 1) * n];
                    for p in pb..pmax {
                        let av = arow[p];
                        let brow = &b[p * n..(p + 1) * n];
                        for j in jb..jmax {
                            crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Computes `Aᵀ · B` without materializing the transpose.
///
/// Given `A: k x m` and `B: k x n`, returns an `m x n` tensor. This is the
/// weight-gradient kernel: `dW = Xᵀ · dY`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.rows() == b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    let (ad, bd, cd) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for i in 0..m {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
    Ok(out)
}

/// Computes `A · Bᵀ` without materializing the transpose.
///
/// Given `A: m x k` and `B: n x k`, returns an `m x n` tensor. This is the
/// input-gradient kernel (`dX = dY · Wᵀ`) and the attention-score kernel
/// (`S = Q · Kᵀ`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    let (ad, bd, cd) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            crow[j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::seed_from(1);
        let a = Tensor::randn(5, 5, 1.0, &mut rng);
        let mut eye = Tensor::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        let out = a.matmul(&eye).unwrap();
        assert!(out.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = TensorRng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (33, 65, 34), (64, 32, 96)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            let c1 = a.matmul_with(&b, MatmulKernel::Naive).unwrap();
            let c2 = a.matmul_with(&b, MatmulKernel::Blocked).unwrap();
            assert!(c1.approx_eq(&c2, 1e-4), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(3);
        let a = Tensor::randn(9, 4, 1.0, &mut rng);
        let b = Tensor::randn(9, 6, 1.0, &mut rng);
        let fast = matmul_at_b(&a, &b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(4);
        let a = Tensor::randn(5, 8, 1.0, &mut rng);
        let b = Tensor::randn(7, 8, 1.0, &mut rng);
        let fast = matmul_a_bt(&a, &b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        let c = Tensor::zeros(4, 5);
        assert!(matmul_a_bt(&a, &c).is_err());
    }

    #[test]
    fn empty_operands_produce_empty_output() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }

    #[test]
    fn matmul_kernel_default_is_blocked() {
        assert_eq!(MatmulKernel::default(), MatmulKernel::Blocked);
    }
}
