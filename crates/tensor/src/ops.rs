//! Forward and backward neural-network primitives.
//!
//! Each primitive comes as a `*_forward` / `*_backward` pair. Backward
//! functions take whatever the forward pass cached (inputs, outputs, or a
//! dedicated cache struct) so the training loop in `edge-llm-model` can
//! decide per layer whether to keep activations alive — the knob behind the
//! paper's adaptive-layer-tuning memory savings.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Sentinel target value ignored by the cross-entropy loss.
///
/// Sequence tasks in `edge-llm-data` mark prompt positions with this value
/// so only answer tokens contribute to loss and gradients.
pub const IGNORE_TARGET: usize = usize::MAX;

/// Row-wise numerically stable softmax.
///
/// Each row of the result sums to 1.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape();
    let mut out = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let xin = x.row(r);
        let xout = out.row_mut(r);
        let max = xin.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in xout.iter_mut().zip(xin.iter()) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in xout.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Backward pass of row-wise softmax.
///
/// Takes the forward *output* `y` and upstream gradient `dy`; returns
/// `dx` where `dx_i = y_i * (dy_i - Σ_j dy_j y_j)` per row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `y` and `dy` differ in shape.
pub fn softmax_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    if y.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_backward",
            lhs: y.shape(),
            rhs: dy.shape(),
        });
    }
    let (rows, cols) = y.shape();
    let mut dx = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
        let dxr = dx.row_mut(r);
        for j in 0..cols {
            dxr[j] = yr[j] * (dyr[j] - dot);
        }
    }
    Ok(dx)
}

/// Per-row statistics cached by [`layernorm_forward`] for the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Reciprocal standard deviation per row.
    pub rstd: Vec<f32>,
    /// Normalized input `x̂` (before scale/shift).
    pub xhat: Tensor,
}

/// Layer normalization over each row.
///
/// `y = x̂ * gamma + beta` with `x̂ = (x - mean) * rstd`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `gamma` or `beta` length does
/// not equal `x.cols()`.
pub fn layernorm_forward(
    x: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<(Tensor, LayerNormCache), TensorError> {
    let (rows, cols) = x.shape();
    if gamma.len() != cols || beta.len() != cols {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm_forward",
            lhs: (rows, cols),
            rhs: (gamma.len(), beta.len()),
        });
    }
    let mut y = Tensor::zeros(rows, cols);
    let mut xhat = Tensor::zeros(rows, cols);
    let mut rstd = vec![0.0f32; rows];
    for (r, rstd_r) in rstd.iter_mut().enumerate() {
        let xr = x.row(r);
        let mean: f32 = xr.iter().sum::<f32>() / cols as f32;
        let var: f32 = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let rs = 1.0 / (var + eps).sqrt();
        *rstd_r = rs;
        let xhr = xhat.row_mut(r);
        let yr = y.row_mut(r);
        for c in 0..cols {
            let xh = (xr[c] - mean) * rs;
            xhr[c] = xh;
            yr[c] = xh * gamma[c] + beta[c];
        }
    }
    Ok((y, LayerNormCache { rstd, xhat }))
}

/// Backward pass of layer normalization.
///
/// Returns `(dx, dgamma, dbeta)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `dy` does not match the cached
/// shape or `gamma` has the wrong length.
pub fn layernorm_backward(
    dy: &Tensor,
    cache: &LayerNormCache,
    gamma: &[f32],
) -> Result<(Tensor, Vec<f32>, Vec<f32>), TensorError> {
    let (rows, cols) = cache.xhat.shape();
    if dy.shape() != (rows, cols) || gamma.len() != cols {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm_backward",
            lhs: dy.shape(),
            rhs: (rows, cols),
        });
    }
    let mut dx = Tensor::zeros(rows, cols);
    let mut dgamma = vec![0.0f32; cols];
    let mut dbeta = vec![0.0f32; cols];
    for r in 0..rows {
        let dyr = dy.row(r);
        let xhr = cache.xhat.row(r);
        let rs = cache.rstd[r];
        let mut sum_g = 0.0f32;
        let mut sum_gx = 0.0f32;
        for c in 0..cols {
            let g = dyr[c] * gamma[c];
            sum_g += g;
            sum_gx += g * xhr[c];
            dgamma[c] += dyr[c] * xhr[c];
            dbeta[c] += dyr[c];
        }
        let inv_n = 1.0 / cols as f32;
        let dxr = dx.row_mut(r);
        for c in 0..cols {
            let g = dyr[c] * gamma[c];
            dxr[c] = rs * (g - inv_n * sum_g - xhr[c] * inv_n * sum_gx);
        }
    }
    Ok((dx, dgamma, dbeta))
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

/// GELU activation (tanh approximation), element-wise.
pub fn gelu_forward(x: &Tensor) -> Tensor {
    x.map(|v| 0.5 * v * (1.0 + (GELU_C * (v + 0.044715 * v * v * v)).tanh()))
}

/// Backward pass of GELU; takes the forward *input* `x` and upstream `dy`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "gelu_backward",
            lhs: x.shape(),
            rhs: dy.shape(),
        });
    }
    let mut dx = Tensor::zeros(x.rows(), x.cols());
    for (o, (&v, &g)) in dx
        .as_mut_slice()
        .iter_mut()
        .zip(x.as_slice().iter().zip(dy.as_slice().iter()))
    {
        let inner = GELU_C * (v + 0.044715 * v * v * v);
        let t = inner.tanh();
        let sech2 = 1.0 - t * t;
        let d_inner = GELU_C * (1.0 + 3.0 * 0.044715 * v * v);
        *o = g * (0.5 * (1.0 + t) + 0.5 * v * sech2 * d_inner);
    }
    Ok(dx)
}

/// ReLU activation, element-wise.
pub fn relu_forward(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward pass of ReLU; takes the forward *input* `x` and upstream `dy`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Result<Tensor, TensorError> {
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "relu_backward",
            lhs: x.shape(),
            rhs: dy.shape(),
        });
    }
    let mut dx = dy.clone();
    for (o, &v) in dx.as_mut_slice().iter_mut().zip(x.as_slice().iter()) {
        if v <= 0.0 {
            *o = 0.0;
        }
    }
    Ok(dx)
}

/// Adds a bias row-vector to every row of `x`, returning a new tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias.len() != x.cols()`.
pub fn add_bias_forward(x: &Tensor, bias: &[f32]) -> Result<Tensor, TensorError> {
    if bias.len() != x.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_forward",
            lhs: x.shape(),
            rhs: (1, bias.len()),
        });
    }
    let mut y = x.clone();
    for r in 0..y.rows() {
        for (o, &b) in y.row_mut(r).iter_mut().zip(bias.iter()) {
            *o += b;
        }
    }
    Ok(y)
}

/// Backward pass of a bias add: the bias gradient is the column-wise sum of
/// the upstream gradient.
pub fn add_bias_backward(dy: &Tensor) -> Vec<f32> {
    let (rows, cols) = dy.shape();
    let mut db = vec![0.0f32; cols];
    for r in 0..rows {
        for (acc, &g) in db.iter_mut().zip(dy.row(r).iter()) {
            *acc += g;
        }
    }
    db
}

/// Gathers rows of an embedding `table` for each id in `ids`.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any id exceeds the table.
pub fn embedding_forward(ids: &[usize], table: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::zeros(ids.len(), table.cols());
    for (r, &id) in ids.iter().enumerate() {
        if id >= table.rows() {
            return Err(TensorError::IndexOutOfBounds {
                index: id,
                bound: table.rows(),
            });
        }
        out.row_mut(r).copy_from_slice(table.row(id));
    }
    Ok(out)
}

/// Scatters the upstream gradient `dy` back into `table_grad` (accumulating).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `dy.rows() != ids.len()` or the
/// column counts differ; [`TensorError::IndexOutOfBounds`] for bad ids.
pub fn embedding_backward(
    ids: &[usize],
    dy: &Tensor,
    table_grad: &mut Tensor,
) -> Result<(), TensorError> {
    if dy.rows() != ids.len() || dy.cols() != table_grad.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "embedding_backward",
            lhs: dy.shape(),
            rhs: table_grad.shape(),
        });
    }
    for (r, &id) in ids.iter().enumerate() {
        if id >= table_grad.rows() {
            return Err(TensorError::IndexOutOfBounds {
                index: id,
                bound: table_grad.rows(),
            });
        }
        let src = dy.row(r);
        for (acc, &g) in table_grad.row_mut(id).iter_mut().zip(src.iter()) {
            *acc += g;
        }
    }
    Ok(())
}

/// Output of [`cross_entropy_forward`]: the mean loss over non-ignored
/// targets plus the softmax probabilities needed by the backward pass.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over non-ignored positions.
    pub loss: f32,
    /// Softmax of the logits (kept for the backward pass).
    pub probs: Tensor,
    /// Number of positions that contributed to the loss.
    pub n_valid: usize,
}

/// Softmax cross-entropy loss over rows of `logits`.
///
/// Positions whose target equals [`IGNORE_TARGET`] are excluded from both
/// the loss average and (via [`cross_entropy_backward`]) the gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `targets.len() != logits.rows()`
/// and [`TensorError::IndexOutOfBounds`] for a target outside the vocabulary.
pub fn cross_entropy_forward(
    logits: &Tensor,
    targets: &[usize],
) -> Result<CrossEntropyOutput, TensorError> {
    if targets.len() != logits.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy_forward",
            lhs: logits.shape(),
            rhs: (targets.len(), 1),
        });
    }
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut n_valid = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_TARGET {
            continue;
        }
        if t >= logits.cols() {
            return Err(TensorError::IndexOutOfBounds {
                index: t,
                bound: logits.cols(),
            });
        }
        loss += -(probs.get(r, t).max(1e-12) as f64).ln();
        n_valid += 1;
    }
    let loss = if n_valid == 0 {
        0.0
    } else {
        (loss / n_valid as f64) as f32
    };
    Ok(CrossEntropyOutput {
        loss,
        probs,
        n_valid,
    })
}

/// Backward pass of softmax cross-entropy: `dlogits = (probs - onehot) / n`.
///
/// Rows whose target is [`IGNORE_TARGET`] receive a zero gradient.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `targets.len() != probs.rows()`.
pub fn cross_entropy_backward(
    out: &CrossEntropyOutput,
    targets: &[usize],
) -> Result<Tensor, TensorError> {
    let probs = &out.probs;
    if targets.len() != probs.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy_backward",
            lhs: probs.shape(),
            rhs: (targets.len(), 1),
        });
    }
    let mut dl = Tensor::zeros(probs.rows(), probs.cols());
    if out.n_valid == 0 {
        return Ok(dl);
    }
    let scale = 1.0 / out.n_valid as f32;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_TARGET {
            continue;
        }
        let pr = probs.row(r);
        let dr = dl.row_mut(r);
        for c in 0..pr.len() {
            dr[c] = pr[c] * scale;
        }
        dr[t] -= scale;
    }
    Ok(dl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn numeric_grad<F: FnMut(&Tensor) -> f32>(x: &Tensor, mut f: F) -> Tensor {
        let eps = 1e-3;
        let mut g = Tensor::zeros(x.rows(), x.cols());
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let fp = f(&xp);
            xp.as_mut_slice()[i] = orig - eps;
            let fm = f(&xp);
            xp.as_mut_slice()[i] = orig;
            g.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
        }
        g
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = TensorRng::seed_from(1);
        let x = Tensor::randn(6, 10, 3.0, &mut rng);
        let y = softmax_rows(&x);
        for r in 0..6 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let shifted = x.map(|v| v + 100.0);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&shifted), 1e-6));
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(2);
        let x = Tensor::randn(3, 5, 1.0, &mut rng);
        let dy = Tensor::randn(3, 5, 1.0, &mut rng);
        let y = softmax_rows(&x);
        let dx = softmax_backward(&y, &dy).unwrap();
        let num = numeric_grad(&x, |xp| {
            let yp = softmax_rows(xp);
            yp.as_slice()
                .iter()
                .zip(dy.as_slice().iter())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert!(
            dx.approx_eq(&num, 2e-2),
            "analytic {dx:?} vs numeric {num:?}"
        );
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut rng = TensorRng::seed_from(3);
        let x = Tensor::randn(4, 32, 2.0, &mut rng);
        let gamma = vec![1.0f32; 32];
        let beta = vec![0.0f32; 32];
        let (y, _) = layernorm_forward(&x, &gamma, &beta, 1e-5).unwrap();
        for r in 0..4 {
            let m: f32 = y.row(r).iter().sum::<f32>() / 32.0;
            let v: f32 = y.row(r).iter().map(|a| (a - m) * (a - m)).sum::<f32>() / 32.0;
            assert!(m.abs() < 1e-4);
            assert!((v - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(4);
        let x = Tensor::randn(3, 8, 1.0, &mut rng);
        let gamma: Vec<f32> = (0..8).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..8).map(|i| 0.05 * i as f32).collect();
        let dy = Tensor::randn(3, 8, 1.0, &mut rng);
        let (_, cache) = layernorm_forward(&x, &gamma, &beta, 1e-5).unwrap();
        let (dx, dgamma, dbeta) = layernorm_backward(&dy, &cache, &gamma).unwrap();
        let num_dx = numeric_grad(&x, |xp| {
            let (yp, _) = layernorm_forward(xp, &gamma, &beta, 1e-5).unwrap();
            yp.as_slice()
                .iter()
                .zip(dy.as_slice().iter())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert!(dx.approx_eq(&num_dx, 3e-2));
        // dbeta is the column sum of dy
        let db = add_bias_backward(&dy);
        for (a, b) in dbeta.iter().zip(db.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(dgamma.len(), 8);
    }

    #[test]
    fn gelu_backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(5);
        let x = Tensor::randn(2, 6, 1.5, &mut rng);
        let dy = Tensor::randn(2, 6, 1.0, &mut rng);
        let dx = gelu_backward(&x, &dy).unwrap();
        let num = numeric_grad(&x, |xp| {
            gelu_forward(xp)
                .as_slice()
                .iter()
                .zip(dy.as_slice().iter())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert!(dx.approx_eq(&num, 2e-2));
    }

    #[test]
    fn gelu_limits() {
        let x = Tensor::from_vec(1, 3, vec![-10.0, 0.0, 10.0]).unwrap();
        let y = gelu_forward(&x);
        assert!(y.get(0, 0).abs() < 1e-3); // large negative -> 0
        assert_eq!(y.get(0, 1), 0.0);
        assert!((y.get(0, 2) - 10.0).abs() < 1e-3); // large positive -> identity
    }

    #[test]
    fn relu_roundtrip() {
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu_forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor::ones(1, 4);
        let dx = relu_backward(&x, &dy).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_forward_backward() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let y = add_bias_forward(&x, &[10., 20., 30.]).unwrap();
        assert_eq!(y.as_slice(), &[11., 22., 33., 14., 25., 36.]);
        let db = add_bias_backward(&x);
        assert_eq!(db, vec![5., 7., 9.]);
    }

    #[test]
    fn embedding_gather_scatter() {
        let table = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let out = embedding_forward(&[2, 0, 2], &table).unwrap();
        assert_eq!(out.as_slice(), &[5., 6., 1., 2., 5., 6.]);
        let mut grad = Tensor::zeros(3, 2);
        let dy = Tensor::ones(3, 2);
        embedding_backward(&[2, 0, 2], &dy, &mut grad).unwrap();
        assert_eq!(grad.as_slice(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn embedding_bad_id_errors() {
        let table = Tensor::zeros(3, 2);
        assert!(embedding_forward(&[5], &table).is_err());
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(2, 4);
        let out = cross_entropy_forward(&logits, &[0, 3]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
        assert_eq!(out.n_valid, 2);
    }

    #[test]
    fn cross_entropy_ignores_masked_targets() {
        let logits = Tensor::zeros(3, 4);
        let out = cross_entropy_forward(&logits, &[0, IGNORE_TARGET, 1]).unwrap();
        assert_eq!(out.n_valid, 2);
        let dl = cross_entropy_backward(&out, &[0, IGNORE_TARGET, 1]).unwrap();
        assert!(dl.row(1).iter().all(|&g| g == 0.0));
        assert!(dl.row(0).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn cross_entropy_backward_matches_numeric() {
        let mut rng = TensorRng::seed_from(6);
        let logits = Tensor::randn(3, 5, 1.0, &mut rng);
        let targets = [1usize, 4, 0];
        let out = cross_entropy_forward(&logits, &targets).unwrap();
        let dl = cross_entropy_backward(&out, &targets).unwrap();
        let num = numeric_grad(&logits, |lp| {
            cross_entropy_forward(lp, &targets).unwrap().loss
        });
        assert!(dl.approx_eq(&num, 2e-2));
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let logits = Tensor::zeros(2, 3);
        let t = [IGNORE_TARGET, IGNORE_TARGET];
        let out = cross_entropy_forward(&logits, &t).unwrap();
        assert_eq!(out.loss, 0.0);
        let dl = cross_entropy_backward(&out, &t).unwrap();
        assert!(dl.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cross_entropy_target_out_of_vocab_errors() {
        let logits = Tensor::zeros(1, 3);
        assert!(cross_entropy_forward(&logits, &[3]).is_err());
    }
}
