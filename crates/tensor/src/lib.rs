//! Dense tensor math for the Edge-LLM reproduction.
//!
//! This crate provides the numerical substrate every other Edge-LLM crate is
//! built on: a row-major, `f32`, two-dimensional [`Tensor`], blocked matrix
//! multiplication kernels, and forward **and** backward implementations of
//! the neural-network primitives a decoder-only transformer needs (softmax,
//! layer normalization, GELU, embeddings, cross-entropy).
//!
//! Backward passes are explicit free functions rather than an autograd tape:
//! the Edge-LLM adaptive layer tuning scheme controls *which* layers run
//! backward each iteration, so the training loop — not a tape — must own
//! backward scheduling (see `edge-llm-model`).
//!
//! # Example
//!
//! ```
//! use edge_llm_tensor::{Tensor, TensorRng};
//!
//! # fn main() -> Result<(), edge_llm_tensor::TensorError> {
//! let mut rng = TensorRng::seed_from(42);
//! let a = Tensor::randn(4, 8, 0.1, &mut rng);
//! let b = Tensor::randn(8, 3, 0.1, &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), (4, 3));
//! # Ok(())
//! # }
//! ```

pub mod check;
mod error;
pub mod lanes;
mod matmul;
mod ops;
pub mod pool;
mod rng;
mod stats;
mod tensor;

pub use error::TensorError;
pub use matmul::{
    matmul_a_bt, matmul_a_bt_with, matmul_at_b, matmul_at_b_with, matmul_fill_b_with, MatmulKernel,
};
pub use ops::{
    add_bias_backward, add_bias_forward, cross_entropy_backward, cross_entropy_forward,
    embedding_backward, embedding_forward, gelu_backward, gelu_forward, layernorm_backward,
    layernorm_forward, relu_backward, relu_forward, softmax_backward, softmax_rows,
    CrossEntropyOutput, LayerNormCache, IGNORE_TARGET,
};
pub use pool::{configured_threads, set_configured_threads, THREADS_ENV_VAR};
pub use rng::{RngState, TensorRng, RNG_STATE_BYTES};
pub use stats::{cosine_similarity, l2_norm, max_abs_diff, mean, variance};
pub use tensor::Tensor;
