//! Small statistics helpers shared by tests, compression-error metrics, and
//! the sensitivity profiler.

use crate::tensor::Tensor;

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance of a slice; `0.0` for an empty slice.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Euclidean norm of all elements of a tensor.
pub fn l2_norm(t: &Tensor) -> f32 {
    t.as_slice()
        .iter()
        .map(|x| (*x as f64) * (*x as f64))
        .sum::<f64>()
        .sqrt() as f32
}

/// Largest absolute element-wise difference; `f32::INFINITY` when shapes
/// differ.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    if a.shape() != b.shape() {
        return f32::INFINITY;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Cosine similarity between two tensors flattened to vectors.
///
/// Returns `0.0` when either vector has zero norm or shapes differ.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    if a.shape() != b.shape() {
        return 0.0;
    }
    let dot: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| (*x as f64) * (*y as f64))
        .sum();
    let na = l2_norm(a) as f64;
    let nb = l2_norm(b) as f64;
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn l2_norm_pythagorean() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((l2_norm(&t) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn max_abs_diff_detects_worst_element() {
        let a = Tensor::from_vec(1, 3, vec![0.0, 1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![0.1, 1.0, -1.0]).unwrap();
        assert!((max_abs_diff(&a, &b) - 3.0).abs() < 1e-6);
        assert_eq!(max_abs_diff(&a, &Tensor::zeros(2, 2)), f32::INFINITY);
    }

    #[test]
    fn cosine_similarity_extremes() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let b = Tensor::from_vec(1, 2, vec![2.0, 0.0]).unwrap();
        let c = Tensor::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &c).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &Tensor::zeros(1, 2)), 0.0);
    }
}
