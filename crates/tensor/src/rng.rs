//! Deterministic random number generation with capturable state.
//!
//! The generator is an in-repo **xoshiro256++** (Blackman & Vigna) seeded
//! through **SplitMix64**, with no external dependencies. Unlike the
//! `rand`-crate generator it replaces, every byte of generator state is
//! inspectable and restorable via [`TensorRng::state`] /
//! [`TensorRng::from_state`], which is what lets training checkpoints
//! capture the RNG stream and resume bit-identically after a crash.

/// Snapshot of a [`TensorRng`]'s complete state.
///
/// Contains the four xoshiro256++ words plus the cached second output of
/// the Marsaglia polar transform (the polar method produces normals in
/// pairs; dropping the spare on checkpoint would desynchronize the
/// resumed stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The xoshiro256++ state words.
    pub s: [u64; 4],
    /// Cached spare standard-normal sample, if one is pending.
    pub spare_normal: Option<f32>,
}

/// Serialized size of [`RngState`] in bytes.
pub const RNG_STATE_BYTES: usize = 40;

impl RngState {
    /// Fixed-width little-endian encoding (for checkpoints).
    pub fn to_bytes(&self) -> [u8; RNG_STATE_BYTES] {
        let mut out = [0u8; RNG_STATE_BYTES];
        for (i, w) in self.s.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        if let Some(z) = self.spare_normal {
            out[32] = 1;
            out[33..37].copy_from_slice(&z.to_le_bytes());
        }
        out
    }

    /// Decodes an encoding produced by [`RngState::to_bytes`].
    ///
    /// Returns `None` if the flag byte is invalid or the state words are
    /// all zero (not a reachable xoshiro state).
    pub fn from_bytes(bytes: &[u8; RNG_STATE_BYTES]) -> Option<Self> {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(buf);
        }
        if s == [0; 4] {
            return None;
        }
        let spare_normal = match bytes[32] {
            0 => None,
            1 => {
                let mut buf = [0u8; 4];
                buf.copy_from_slice(&bytes[33..37]);
                Some(f32::from_le_bytes(buf))
            }
            _ => return None,
        };
        Some(RngState { s, spare_normal })
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic random number generator used throughout the Edge-LLM
/// reproduction.
///
/// Every experiment pins an explicit seed, which is what makes the
/// benchmark tables reproducible run-to-run, and the full generator state
/// can be captured into a checkpoint and restored exactly.
///
/// # Example
///
/// ```
/// use edge_llm_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed_from(7);
/// let x = rng.normal();
/// let mut rng2 = TensorRng::seed_from(7);
/// assert_eq!(x, rng2.normal());
///
/// // state capture -> identical continuation
/// let snap = rng.state();
/// let a: Vec<f32> = (0..8).map(|_| rng.normal()).collect();
/// let mut resumed = TensorRng::from_state(snap);
/// let b: Vec<f32> = (0..8).map(|_| resumed.normal()).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    s: [u64; 4],
    spare_normal: Option<f32>,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in s.iter_mut() {
            *w = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            // Unreachable from SplitMix64 in practice; guard the one state
            // xoshiro cannot escape.
            s[0] = 0x9e3779b97f4a7c15;
        }
        TensorRng {
            s,
            spare_normal: None,
        }
    }

    /// Captures the complete generator state.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator from a captured state; the restored generator
    /// produces the exact continuation of the captured stream.
    pub fn from_state(state: RngState) -> Self {
        TensorRng {
            s: state.s,
            spare_normal: state.spare_normal,
        }
    }

    /// The raw xoshiro256++ output: the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 24 bits of precision.
    fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Draws a standard-normal sample via the Marsaglia polar method.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * m);
                return u * m;
            }
        }
    }

    /// Draws a sample uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let x = lo + (hi - lo) * self.unit_f32();
        // f32 rounding can land exactly on `hi`; fold back into range.
        if x < hi {
            x
        } else {
            lo
        }
    }

    /// Draws an integer uniformly from `[0, bound)` (Lemire's unbiased
    /// multiply-shift rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        let bound = bound as u64;
        let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Draws a boolean that is `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        let u = ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TensorRng::seed_from(11);
        let mut b = TensorRng::seed_from(11);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.index(10), b.index(10));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = TensorRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn uniform_bad_bounds_panics() {
        let mut rng = TensorRng::seed_from(1);
        let _ = rng.uniform(3.0, 2.0);
    }

    #[test]
    fn index_is_unbiased_enough() {
        let mut rng = TensorRng::seed_from(9);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.index(7)] += 1;
        }
        let expect = n / 7;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = TensorRng::seed_from(2);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut rng = TensorRng::seed_from(77);
        // advance into the middle of a normal pair so spare_normal is set
        let _ = rng.normal();
        let snap = rng.state();
        let a: Vec<f32> = (0..32).map(|_| rng.normal()).collect();
        let ai: Vec<usize> = (0..32).map(|_| rng.index(1000)).collect();
        let mut resumed = TensorRng::from_state(snap);
        let b: Vec<f32> = (0..32).map(|_| resumed.normal()).collect();
        let bi: Vec<usize> = (0..32).map(|_| resumed.index(1000)).collect();
        assert_eq!(a, b);
        assert_eq!(ai, bi);
    }

    #[test]
    fn state_bytes_roundtrip() {
        let mut rng = TensorRng::seed_from(123);
        let _ = rng.normal(); // populate spare
        let state = rng.state();
        let bytes = state.to_bytes();
        let back = RngState::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
        // corrupt flag byte -> rejected
        let mut bad = bytes;
        bad[32] = 7;
        assert!(RngState::from_bytes(&bad).is_none());
        // all-zero words -> rejected
        let zeros = [0u8; RNG_STATE_BYTES];
        assert!(RngState::from_bytes(&zeros).is_none());
    }

    #[test]
    fn known_xoshiro_stream() {
        // Reference values from the splitmix64(0,1,2,3...) seeding of the
        // public-domain xoshiro256++ C code: seeding from 0 must be stable
        // across refactors because checkpoints depend on it.
        let mut rng = TensorRng::seed_from(0);
        let first = rng.next_u64();
        let mut again = TensorRng::seed_from(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, rng.next_u64(), "stream must advance");
    }
}
