use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random number generator used throughout the Edge-LLM
/// reproduction.
///
/// Wrapping [`rand::rngs::StdRng`] behind a newtype keeps the dependency out
/// of the public API surface of downstream crates and pins every experiment
/// to an explicit seed, which is what makes the benchmark tables
/// reproducible run-to-run.
///
/// # Example
///
/// ```
/// use edge_llm_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed_from(7);
/// let x = rng.normal();
/// let mut rng2 = TensorRng::seed_from(7);
/// assert_eq!(x, rng2.normal());
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    inner: StdRng,
    spare_normal: Option<f32>,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Draws a standard-normal sample via the Marsaglia polar method.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u: f32 = self.inner.gen_range(-1.0f32..1.0);
            let v: f32 = self.inner.gen_range(-1.0f32..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * m);
                return u * m;
            }
        }
    }

    /// Draws a sample uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// Draws an integer uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Draws a boolean that is `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TensorRng::seed_from(11);
        let mut b = TensorRng::seed_from(11);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.index(10), b.index(10));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = TensorRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn uniform_bad_bounds_panics() {
        let mut rng = TensorRng::seed_from(1);
        let _ = rng.uniform(3.0, 2.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = TensorRng::seed_from(2);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(rng.bernoulli(2.0));
    }
}
