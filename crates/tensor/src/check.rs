//! A minimal in-repo property-check harness.
//!
//! The workspace must build and test with no network access, so the
//! property tests that previously used an external framework run on this
//! helper instead: seeded case generation plus a shrink-free assertion
//! loop. Each case gets a deterministic seed derived from the case index;
//! a failure reports the property label, case number, and seed so the
//! exact case can be replayed by running the test again (generation is
//! fully deterministic run-to-run).
//!
//! # Example
//!
//! ```
//! use edge_llm_tensor::check::run_cases;
//!
//! run_cases("addition commutes", 32, |g| {
//!     let a = g.f32_in(-10.0, 10.0);
//!     let b = g.f32_in(-10.0, 10.0);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::TensorRng;

/// Per-case value source handed to the property closure.
pub struct Gen {
    rng: TensorRng,
}

impl Gen {
    /// A generator seeded for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: TensorRng::seed_from(seed),
        }
    }

    /// A uniformly random 64-bit value (e.g. to seed a nested generator).
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in bounds must satisfy lo < hi");
        lo + self.rng.index(hi - lo)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.uniform(lo, hi)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.rng.index(options.len())]
    }

    /// Direct access to the underlying generator for richer draws.
    pub fn rng(&mut self) -> &mut TensorRng {
        &mut self.rng
    }
}

/// Runs `f` against `cases` deterministically seeded inputs, panicking
/// with the property label, case index, and seed on the first failure.
///
/// # Panics
///
/// Re-panics with diagnostic context when any case's assertions fail.
pub fn run_cases<F: FnMut(&mut Gen)>(label: &str, cases: usize, mut f: F) {
    for case in 0..cases {
        let seed = 0xedb88320u64 ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        let mut g = Gen::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut g)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{label}` failed at case {case}/{cases} (seed {seed:#018x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run_cases("collect", 5, |g| first.push((g.u64(), g.usize_in(0, 10))));
        let mut second = Vec::new();
        run_cases("collect", 5, |g| second.push((g.u64(), g.usize_in(0, 10))));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn failure_reports_label_and_case() {
        let caught = std::panic::catch_unwind(|| {
            run_cases("always-fails", 3, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always-fails"), "{msg}");
        assert!(msg.contains("case 0"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn bounds_are_respected() {
        run_cases("bounds", 64, |g| {
            let x = g.usize_in(3, 9);
            assert!((3..9).contains(&x));
            let y = g.f32_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
            let c = *g.choose(&[1, 2, 3]);
            assert!([1, 2, 3].contains(&c));
        });
    }
}
