use std::error::Error;
use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible public function in this crate returns
/// `Result<_, TensorError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries the operation name and the offending `(rows, cols)` pairs.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// A constructor was handed a buffer whose length does not match the
    /// requested shape.
    LengthMismatch {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// An index was out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// A dimension argument was zero where a positive value is required.
    ZeroDimension {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape ({expected} elements expected)"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (len {bound})")
            }
            TensorError::ZeroDimension { op } => {
                write!(f, "zero-sized dimension passed to {op}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5,
            },
            TensorError::IndexOutOfBounds { index: 9, bound: 4 },
            TensorError::ZeroDimension { op: "zeros" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
