use crate::error::TensorError;
use crate::rng::TensorRng;
use std::fmt;

/// A dense, row-major, two-dimensional `f32` tensor.
///
/// All model parameters, activations, and gradients in the Edge-LLM
/// reproduction are `Tensor`s. Batched three-dimensional quantities
/// (batch x seq x dim) are stored flattened as `(batch * seq) x dim`,
/// mirroring how training kernels treat tokens as rows.
///
/// # Example
///
/// ```
/// use edge_llm_tensor::Tensor;
///
/// # fn main() -> Result<(), edge_llm_tensor::TensorError> {
/// let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get(1, 0), 3.0);
/// assert_eq!(t.transpose().get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// A zero-sized tensor (`rows == 0` or `cols == 0`) is permitted and
    /// behaves as an empty operand.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a tensor from an existing buffer in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Creates a tensor with elements drawn from a normal distribution
    /// `N(0, std^2)` using the given deterministic RNG.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut TensorRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Tensor { rows, cols, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut TensorRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Kaiming/He initialization for a weight of shape `fan_in x fan_out`.
    pub fn kaiming(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(fan_in, fan_out, std, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transposed tensor (owned copy).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Element-wise addition, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a new tensor with every element scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// In-place scaling by `alpha`.
    pub fn scale_in_place(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Returns a new tensor by applying `f` element-wise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns `true` when every pairwise difference is at most `tol`.
    ///
    /// Shapes must match for the comparison to hold; mismatched shapes
    /// return `false`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        op: &'static str,
        f: F,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{}", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, ", {:?}", self.data)?;
        } else {
            write!(f, ", first4 {:?}..", &self.data[..4])?;
        }
        write!(f, ")")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 7.5);
        assert_eq!(t.get(1, 2), 7.5);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let t = Tensor::zeros(2, 2);
        let _ = t.get(2, 0);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = TensorRng::seed_from(1);
        let t = Tensor::randn(3, 5, 1.0, &mut rng);
        assert!(t.transpose().transpose().approx_eq(&t, 0.0));
    }

    #[test]
    fn transpose_swaps_indices() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), (3, 2));
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(t.get(r, c), tt.get(c, r));
            }
        }
    }

    #[test]
    fn add_sub_inverse() {
        let mut rng = TensorRng::seed_from(2);
        let a = Tensor::randn(4, 4, 1.0, &mut rng);
        let b = Tensor::randn(4, 4, 1.0, &mut rng);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.approx_eq(&a, 1e-6));
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(3, 2);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(2, 2);
        let b = Tensor::full(2, 2, 3.0);
        a.axpy(0.5, &b).unwrap();
        assert!(a.approx_eq(&Tensor::full(2, 2, 2.5), 1e-7));
    }

    #[test]
    fn scale_and_map_agree() {
        let t = Tensor::from_vec(1, 3, vec![1.0, -2.0, 4.0]).unwrap();
        assert!(t.scale(2.0).approx_eq(&t.map(|x| 2.0 * x), 0.0));
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]).unwrap();
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h.as_slice(), &[4., 10., 18.]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = TensorRng::seed_from(9);
        let mut r2 = TensorRng::seed_from(9);
        let a = Tensor::randn(4, 4, 1.0, &mut r1);
        let b = Tensor::randn(4, 4, 1.0, &mut r2);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = Tensor::uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn row_views() {
        let mut t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1), &[4., 5., 6.]);
        t.row_mut(0)[2] = 9.0;
        assert_eq!(t.get(0, 2), 9.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(1, 1);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(10, 10);
        assert!(format!("{big:?}").contains("first4"));
    }

    #[test]
    fn zero_sized_tensor_is_empty() {
        let t = Tensor::zeros(0, 5);
        assert!(t.is_empty());
        assert_eq!(t.sum(), 0.0);
    }
}
